//! Property-based tests for the tenant economics subsystem: ledger
//! conservation under arbitrary charge/pay/settle interleavings, legal
//! lifecycle transition order, and status/balance coherence after a
//! settle — across random plans and operation streams.

use proptest::prelude::*;
use udc_economics::{AccountStatus, LifecycleEvent, PlanSpec, TenantAccount};
use udc_spec::ResourceVector;

/// A random but meaningful plan: short windows so renewals actually
/// fire, and degrade/suspend thresholds that escalation can cross.
fn arb_plan() -> impl Strategy<Value = PlanSpec> {
    (1u64..50, 0u64..120, 1u64..30, 0u64..60).prop_map(
        |(window_us, credit_per_window, degrade_after_us, extra)| PlanSpec {
            name: "prop".to_string(),
            window_us,
            credit_per_window,
            quota: ResourceVector::new(),
            degrade_after_us,
            suspend_after_us: degrade_after_us + extra,
        },
    )
}

/// One step of the op stream: advance time by `dt`, then charge, pay,
/// or settle.
type Op = (u8, u64, u64); // (op selector, amount, dt)

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..3, 0u64..200, 0u64..25), 1..120)
}

/// Validates that a stream of lifecycle events only ever takes legal
/// transitions: overdue from active, degrade after overdue, suspend
/// after degrade, reinstate only from a non-active state.
fn check_transitions(events: &[LifecycleEvent]) -> Result<(), String> {
    #[derive(PartialEq, Clone, Copy, Debug)]
    enum S {
        Active,
        Overdue,
        Degraded,
        Suspended,
    }
    let mut s = S::Active;
    for ev in events {
        s = match (s, ev) {
            (_, LifecycleEvent::Renewed { .. }) => s,
            (S::Active, LifecycleEvent::BecameOverdue { .. }) => S::Overdue,
            (S::Overdue, LifecycleEvent::Degraded { .. }) => S::Degraded,
            (S::Degraded, LifecycleEvent::Suspended { .. }) => S::Suspended,
            (S::Overdue, LifecycleEvent::Reinstated { .. })
            | (S::Degraded, LifecycleEvent::Reinstated { .. })
            | (S::Suspended, LifecycleEvent::Reinstated { .. }) => S::Active,
            (from, ev) => return Err(format!("illegal transition {from:?} -> {ev:?}")),
        };
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation holds across every interleaving: debits + balance
    /// equals credits, sequence numbers stay dense, and the status the
    /// account lands on after a final settle agrees with its balance.
    #[test]
    fn ledger_conserves_under_random_lifecycle(
        plan in arb_plan(),
        ops in arb_ops(),
    ) {
        let mut acct = TenantAccount::open("t", plan, 0);
        let mut now = 0u64;
        let mut events: Vec<LifecycleEvent> = Vec::new();
        for (op, amount, dt) in ops {
            now += dt;
            match op {
                0 => acct.charge(now, amount, Some("m"), "usage"),
                1 => acct.pay(now, amount),
                _ => events.extend(acct.settle(now)),
            }
            // Conservation is an invariant, not a postcondition: it
            // must hold after every single operation.
            prop_assert!(acct.ledger.conservation_holds());
        }
        events.extend(acct.settle(now + 1));

        prop_assert!(acct.ledger.conservation_holds());
        let credits = acct.ledger.total_credits() as i128;
        let debits = acct.ledger.total_debits() as i128;
        prop_assert_eq!(credits - debits, acct.ledger.balance_microdollars() as i128);

        // Lifecycle transitions happened in a legal order.
        if let Err(e) = check_transitions(&events) {
            prop_assert!(false, "{}", e);
        }

        // After a settle, status and balance must agree.
        if acct.ledger.balance_microdollars() >= 0 {
            prop_assert_eq!(acct.status.as_str(), "active");
        } else {
            prop_assert!(acct.status != AccountStatus::Active,
                "negative balance cannot settle to active");
        }
    }

    /// Payment always reinstates: whatever hole the account dug, one
    /// sufficiently large payment followed by a settle lands on Active.
    #[test]
    fn payment_always_reinstates(
        plan in arb_plan(),
        ops in arb_ops(),
    ) {
        let mut acct = TenantAccount::open("t", plan, 0);
        let mut now = 0u64;
        for (op, amount, dt) in ops {
            now += dt;
            match op {
                0 => acct.charge(now, amount, None, "usage"),
                1 => acct.pay(now, amount),
                _ => { acct.settle(now); }
            }
        }
        let deficit = acct.ledger.balance_microdollars().min(0).unsigned_abs();
        acct.pay(now + 1, deficit + 1);
        acct.settle(now + 2);
        prop_assert_eq!(acct.status.as_str(), "active");
        prop_assert!(!acct.is_suspended());
        prop_assert!(acct.ledger.conservation_holds());
    }
}
