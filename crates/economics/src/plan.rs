//! Plans, tenant accounts, and the overdue → degrade → suspend →
//! reinstate lifecycle.
//!
//! A **plan** is the commercial contract behind §4's win-win argument:
//! it grants an entitlement credit every accounting window and caps how
//! much capacity the tenant may hold at once (the quota). A **tenant
//! account** binds a plan to a [`UsageLedger`] and a lifecycle status.
//! Everything is driven from the simulated clock via [`TenantAccount::settle`]
//! so the control plane (and the experiments) replay identically at any
//! thread count.

use serde::{Deserialize, Serialize};
use udc_spec::ResourceVector;

use crate::ledger::UsageLedger;

/// The commercial terms a tenant signed up for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Human-readable plan name, e.g. `"starter"`.
    pub name: String,
    /// Accounting window length; the entitlement credit renews once per
    /// window (micro-seconds of simulated time).
    pub window_us: u64,
    /// Micro-dollars credited at each window renewal.
    pub credit_per_window: u64,
    /// Admission cap on resources held concurrently. An **empty vector
    /// means unlimited** — only kinds with a non-zero limit are
    /// enforced, so the seed admission path is the unlimited plan.
    pub quota: ResourceVector,
    /// How long an account may stay overdue (balance < 0) before its
    /// modules are marked degraded.
    pub degrade_after_us: u64,
    /// How long after going overdue the account is suspended and its
    /// modules evicted. Must be ≥ `degrade_after_us` to be meaningful.
    pub suspend_after_us: u64,
}

impl PlanSpec {
    /// A plan with no quota and no renewals: admission behaves exactly
    /// like the ungated seed path (basis of the equivalence proptest).
    pub fn unlimited(name: &str) -> Self {
        Self {
            name: name.to_string(),
            window_us: u64::MAX,
            credit_per_window: 0,
            quota: ResourceVector::new(),
            degrade_after_us: u64::MAX,
            suspend_after_us: u64::MAX,
        }
    }
}

/// Where an account sits in the payment lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountStatus {
    /// Balance ≥ 0: full service.
    Active,
    /// Balance went negative at `since_us`; grace period running.
    Overdue {
        /// When the balance first went negative.
        since_us: u64,
    },
    /// Overdue past the plan's degrade threshold: modules keep running
    /// but are marked degraded (reusing the repair-loop state).
    Degraded {
        /// When the balance first went negative.
        since_us: u64,
    },
    /// Overdue past the suspend threshold: modules are evicted and new
    /// admissions denied until payment clears the balance.
    Suspended {
        /// When the balance first went negative.
        since_us: u64,
    },
}

impl AccountStatus {
    /// Stable lower-snake name for exports and decision details.
    pub fn as_str(&self) -> &'static str {
        match self {
            AccountStatus::Active => "active",
            AccountStatus::Overdue { .. } => "overdue",
            AccountStatus::Degraded { .. } => "degraded",
            AccountStatus::Suspended { .. } => "suspended",
        }
    }
}

/// What changed during a [`TenantAccount::settle`] call, in order.
/// The control plane acts on these (evicting or re-placing modules);
/// the account itself only tracks money and status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// An entitlement window elapsed and its credit was posted.
    Renewed {
        /// Window boundary the credit was posted at.
        at_us: u64,
        /// Micro-dollars credited.
        credited: u64,
    },
    /// Balance went negative.
    BecameOverdue {
        /// Settle time the overdue state was detected.
        at_us: u64,
    },
    /// Overdue past the degrade threshold.
    Degraded {
        /// Settle time of the transition.
        at_us: u64,
    },
    /// Overdue past the suspend threshold.
    Suspended {
        /// Settle time of the transition.
        at_us: u64,
    },
    /// Payment (or renewal) restored a non-negative balance.
    Reinstated {
        /// Settle time of the transition.
        at_us: u64,
    },
}

/// One tenant's economic state: plan, ledger, status, and the resources
/// currently held against the quota.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAccount {
    /// Tenant name (matches the scheduler's tenant label).
    pub tenant: String,
    /// The signed plan.
    pub plan: PlanSpec,
    /// The append-only system of record.
    pub ledger: UsageLedger,
    /// Lifecycle status, updated by [`TenantAccount::settle`].
    pub status: AccountStatus,
    /// Start of the current entitlement window.
    pub window_start_us: u64,
    /// Resources currently admitted (committed at placement, released
    /// at teardown). Suspension does **not** release usage — the tenant
    /// still owns the reservation until it pays or tears down.
    pub in_use: ResourceVector,
}

impl TenantAccount {
    /// Opens an account at `now` with the opening credit already posted
    /// (the first window's entitlement).
    pub fn open(tenant: &str, plan: PlanSpec, now_us: u64) -> Self {
        let mut ledger = UsageLedger::new();
        if plan.credit_per_window > 0 {
            ledger.credit(now_us, plan.credit_per_window, "entitlement");
        }
        Self {
            tenant: tenant.to_string(),
            plan,
            ledger,
            status: AccountStatus::Active,
            window_start_us: now_us,
            in_use: ResourceVector::new(),
        }
    }

    /// Posts a usage debit (e.g. a module holding window priced by the
    /// control plane's billing model).
    pub fn charge(&mut self, at_us: u64, amount: u64, module: Option<&str>, memo: &str) {
        self.ledger.debit(at_us, amount, module, memo);
    }

    /// Posts an out-of-band payment.
    pub fn pay(&mut self, at_us: u64, amount: u64) {
        self.ledger.credit(at_us, amount, "payment");
    }

    /// Advances the account to `now`: renews any elapsed entitlement
    /// windows, then walks the status machine on the resulting balance.
    /// Returns the transitions in the order they happened so the caller
    /// can mirror them onto placements (degrade / evict / re-place).
    pub fn settle(&mut self, now_us: u64) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();

        // 1. Window renewals, posted at their window boundaries so the
        // ledger timeline is exact regardless of settle cadence.
        if self.plan.credit_per_window > 0 && self.plan.window_us > 0 {
            while now_us.saturating_sub(self.window_start_us) >= self.plan.window_us {
                self.window_start_us += self.plan.window_us;
                self.ledger.credit(
                    self.window_start_us,
                    self.plan.credit_per_window,
                    "entitlement",
                );
                events.push(LifecycleEvent::Renewed {
                    at_us: self.window_start_us,
                    credited: self.plan.credit_per_window,
                });
            }
        }

        // 2. Status machine on the settled balance.
        if self.ledger.balance_microdollars() >= 0 {
            if self.status != AccountStatus::Active {
                self.status = AccountStatus::Active;
                events.push(LifecycleEvent::Reinstated { at_us: now_us });
            }
            return events;
        }
        match self.status {
            AccountStatus::Active => {
                self.status = AccountStatus::Overdue { since_us: now_us };
                events.push(LifecycleEvent::BecameOverdue { at_us: now_us });
                // A long gap can cross both thresholds in one settle.
                events.extend(self.escalate(now_us));
            }
            AccountStatus::Overdue { .. } | AccountStatus::Degraded { .. } => {
                events.extend(self.escalate(now_us));
            }
            AccountStatus::Suspended { .. } => {}
        }
        events
    }

    /// Escalates an overdue account through degrade and suspend as the
    /// grace periods expire. Separate from `settle` so a single call
    /// can emit both transitions when the clock jumped far.
    fn escalate(&mut self, now_us: u64) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();
        let since_us = match self.status {
            AccountStatus::Overdue { since_us } | AccountStatus::Degraded { since_us } => since_us,
            _ => return events,
        };
        let overdue_for = now_us.saturating_sub(since_us);
        if matches!(self.status, AccountStatus::Overdue { .. })
            && overdue_for >= self.plan.degrade_after_us
        {
            self.status = AccountStatus::Degraded { since_us };
            events.push(LifecycleEvent::Degraded { at_us: now_us });
        }
        if matches!(self.status, AccountStatus::Degraded { .. })
            && overdue_for >= self.plan.suspend_after_us
        {
            self.status = AccountStatus::Suspended { since_us };
            events.push(LifecycleEvent::Suspended { at_us: now_us });
        }
        events
    }

    /// Whether the account is currently suspended.
    pub fn is_suspended(&self) -> bool {
        matches!(self.status, AccountStatus::Suspended { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanSpec {
        PlanSpec {
            name: "starter".into(),
            window_us: 1_000,
            credit_per_window: 100,
            quota: ResourceVector::new(),
            degrade_after_us: 500,
            suspend_after_us: 2_000,
        }
    }

    #[test]
    fn windows_renew_at_boundaries() {
        let mut a = TenantAccount::open("acme", plan(), 0);
        assert_eq!(a.ledger.balance_microdollars(), 100, "opening credit");
        let ev = a.settle(3_250);
        assert_eq!(
            ev,
            vec![
                LifecycleEvent::Renewed {
                    at_us: 1_000,
                    credited: 100
                },
                LifecycleEvent::Renewed {
                    at_us: 2_000,
                    credited: 100
                },
                LifecycleEvent::Renewed {
                    at_us: 3_000,
                    credited: 100
                },
            ]
        );
        assert_eq!(a.ledger.balance_microdollars(), 400);
        assert_eq!(a.window_start_us, 3_000);
        assert!(a.ledger.conservation_holds());
    }

    #[test]
    fn overdue_escalates_to_degraded_then_suspended() {
        let mut a = TenantAccount::open("acme", plan(), 0);
        a.charge(10, 350, Some("m"), "usage window");
        // Balance 100 - 350 = -250 → overdue at first settle.
        assert_eq!(
            a.settle(20),
            vec![LifecycleEvent::BecameOverdue { at_us: 20 }]
        );
        assert_eq!(a.status, AccountStatus::Overdue { since_us: 20 });
        // Not yet past the degrade grace (and the 1000-us renewal has
        // not happened), so nothing changes.
        assert!(a.settle(400).is_empty());
        // Past degrade_after. (Renewal at 1000 credits 100 but the
        // balance stays negative: -250 + 100 = -150.)
        let ev = a.settle(1_100);
        assert_eq!(
            ev,
            vec![
                LifecycleEvent::Renewed {
                    at_us: 1_000,
                    credited: 100
                },
                LifecycleEvent::Degraded { at_us: 1_100 },
            ]
        );
        // Keep it overdue past suspend_after (renewals would clear the
        // 150 debt at t=3000, so charge more first).
        a.charge(1_200, 1_000, Some("m"), "usage window");
        let ev = a.settle(2_500);
        assert!(ev.contains(&LifecycleEvent::Suspended { at_us: 2_500 }));
        assert!(a.is_suspended());
        // Payment reinstates at the next settle.
        a.pay(2_600, 5_000);
        assert_eq!(
            a.settle(2_700),
            vec![LifecycleEvent::Reinstated { at_us: 2_700 }]
        );
        assert_eq!(a.status, AccountStatus::Active);
        assert!(a.ledger.conservation_holds());
    }

    #[test]
    fn one_long_gap_can_cross_both_thresholds() {
        let mut a = TenantAccount::open("acme", plan(), 0);
        // No renewals can save it: debt exceeds all future credits in range.
        a.charge(10, 100_000, Some("m"), "usage window");
        let ev = a.settle(10_000);
        assert!(ev.contains(&LifecycleEvent::BecameOverdue { at_us: 10_000 }));
        // Degrade/suspend grace is measured from overdue detection, so
        // they need further settles.
        let ev = a.settle(12_500);
        assert_eq!(
            ev,
            vec![
                LifecycleEvent::Renewed {
                    at_us: 11_000,
                    credited: 100
                },
                LifecycleEvent::Renewed {
                    at_us: 12_000,
                    credited: 100
                },
                LifecycleEvent::Degraded { at_us: 12_500 },
                LifecycleEvent::Suspended { at_us: 12_500 },
            ]
        );
        assert!(a.is_suspended());
    }

    #[test]
    fn unlimited_plan_never_leaves_active() {
        let mut a = TenantAccount::open("acme", PlanSpec::unlimited("free"), 0);
        a.charge(5, 10, Some("m"), "usage window");
        // Balance is negative but the thresholds are u64::MAX.
        let ev = a.settle(1 << 40);
        assert_eq!(ev, vec![LifecycleEvent::BecameOverdue { at_us: 1 << 40 }]);
        assert_eq!(a.settle(u64::MAX - 1), vec![]);
        assert!(!a.is_suspended());
    }
}
