//! Quota-gated admission: the `QuotaGate` the scheduler consults before
//! placing an application.
//!
//! The gate tracks, per tenant, the resources currently admitted
//! against the plan's quota. Admission is a pure check; the caller
//! commits usage only after placement succeeds and releases it at
//! teardown, so a failed placement never leaks quota. Tenants without
//! an account on file are admitted unconditionally (the ungated seed
//! path), and so are tenants on an empty-quota plan — the equivalence
//! the property suite pins down.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use udc_spec::{AppSpec, ModuleKind, ResourceKind, ResourceVector};

use crate::plan::{LifecycleEvent, PlanSpec, TenantAccount};

/// Outcome of an admission check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The request fits (or the tenant is unknown / unlimited).
    Admit,
    /// A quota dimension cannot cover the request.
    QuotaExceeded {
        /// The first (canonical-order) dimension that failed.
        kind: ResourceKind,
        /// Units requested on that dimension.
        requested: u64,
        /// Units already admitted on that dimension.
        in_use: u64,
        /// The plan's limit on that dimension.
        limit: u64,
    },
    /// The account is suspended; nothing is admitted until payment.
    Suspended,
}

impl AdmissionVerdict {
    /// Whether the verdict admits the request.
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit)
    }
}

/// Estimates the admission footprint of an application: the sum of
/// every module's explicit demand (scaled by replication), plus one CPU
/// core per task that declared no compute demand, plus the byte size of
/// data modules with no storage demand (MiB, rounded up). This is an
/// *admission estimate* — the scheduler still places real demands — but
/// it is deterministic and monotone, which is all a quota needs.
pub fn demand_of_app(app: &AppSpec) -> ResourceVector {
    let mut total = ResourceVector::new();
    for m in app.modules.values() {
        let mut d = m.resource.demand.clone();
        let has_compute = d.iter().any(|(k, v)| k.is_compute() && v > 0);
        let has_storage = d.iter().any(|(k, v)| !k.is_compute() && v > 0);
        if m.kind == ModuleKind::Task && !has_compute {
            d.set(ResourceKind::Cpu, d.get(ResourceKind::Cpu) + 1);
        }
        if m.kind == ModuleKind::Data && !has_storage {
            let mib = m.bytes.unwrap_or(0).div_ceil(1 << 20).max(1);
            d.set(ResourceKind::Ssd, mib);
        }
        total.saturating_add_assign(&d.scaled(m.dist.replication.max(1) as u64));
    }
    total
}

/// Per-tenant accounts plus the admission bookkeeping over them.
#[derive(Debug, Default)]
pub struct QuotaGate {
    accounts: BTreeMap<String, TenantAccount>,
}

impl QuotaGate {
    /// An empty gate: every tenant is unknown, everything admits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens an account (replacing any existing one for the tenant).
    pub fn open_account(&mut self, tenant: &str, plan: PlanSpec, now_us: u64) {
        self.accounts.insert(
            tenant.to_string(),
            TenantAccount::open(tenant, plan, now_us),
        );
    }

    /// The account on file for `tenant`, if any.
    pub fn account(&self, tenant: &str) -> Option<&TenantAccount> {
        self.accounts.get(tenant)
    }

    /// Mutable account access (payments, charges).
    pub fn account_mut(&mut self, tenant: &str) -> Option<&mut TenantAccount> {
        self.accounts.get_mut(tenant)
    }

    /// All tenants with accounts, in name order (deterministic).
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.accounts.keys().map(String::as_str)
    }

    /// Checks whether `requested` fits the tenant's remaining quota.
    /// Pure: commits nothing.
    pub fn admit(&self, tenant: &str, requested: &ResourceVector) -> AdmissionVerdict {
        let Some(acct) = self.accounts.get(tenant) else {
            return AdmissionVerdict::Admit;
        };
        if acct.is_suspended() {
            return AdmissionVerdict::Suspended;
        }
        // Only dimensions the plan actually caps are enforced; an empty
        // quota vector is the unlimited plan.
        for (kind, limit) in acct.plan.quota.iter() {
            if limit == 0 {
                continue;
            }
            let in_use = acct.in_use.get(kind);
            let req = requested.get(kind);
            if in_use.saturating_add(req) > limit {
                return AdmissionVerdict::QuotaExceeded {
                    kind,
                    requested: req,
                    in_use,
                    limit,
                };
            }
        }
        AdmissionVerdict::Admit
    }

    /// Records `requested` as admitted (call after placement succeeds).
    pub fn commit(&mut self, tenant: &str, requested: &ResourceVector) {
        if let Some(acct) = self.accounts.get_mut(tenant) {
            acct.in_use.saturating_add_assign(requested);
        }
    }

    /// Returns `requested` to the quota (call at teardown).
    pub fn release(&mut self, tenant: &str, requested: &ResourceVector) {
        if let Some(acct) = self.accounts.get_mut(tenant) {
            acct.in_use.saturating_sub_assign(requested);
        }
    }

    /// Settles every account to `now`, returning `(tenant, events)` in
    /// tenant-name order for deterministic downstream handling.
    pub fn settle_all(&mut self, now_us: u64) -> Vec<(String, Vec<LifecycleEvent>)> {
        self.accounts
            .iter_mut()
            .map(|(t, a)| (t.clone(), a.settle(now_us)))
            .filter(|(_, ev)| !ev.is_empty())
            .collect()
    }
}

/// The gate as shared by `UdcCloud` (lifecycle) and the `Scheduler`
/// (admission): `Mutex` rather than `RefCell` keeps the scheduler
/// `Send`, which the parallel experiment harness requires.
pub type SharedQuotaGate = Arc<Mutex<QuotaGate>>;

/// Convenience constructor for the shared form.
pub fn shared(gate: QuotaGate) -> SharedQuotaGate {
    Arc::new(Mutex::new(gate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::{DataSpec, ResourceAspect, TaskSpec};

    fn app() -> AppSpec {
        let mut app = AppSpec::new("shop");
        app.add_module(
            TaskSpec::new("web")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4))
                .build(),
        );
        app.add_module(TaskSpec::new("cron").build()); // implicit 1 cpu
        app.add_module(DataSpec::new("db").with_bytes(3 << 20).build()); // 3 MiB ssd
        app
    }

    fn quota(cpu: u64, ssd: u64) -> PlanSpec {
        PlanSpec {
            quota: ResourceVector::new()
                .with(ResourceKind::Cpu, cpu)
                .with(ResourceKind::Ssd, ssd),
            ..PlanSpec::unlimited("capped")
        }
    }

    #[test]
    fn demand_estimate_covers_implicit_modules() {
        let d = demand_of_app(&app());
        assert_eq!(d.get(ResourceKind::Cpu), 5, "explicit 4 + implicit 1");
        assert_eq!(d.get(ResourceKind::Ssd), 3, "3 MiB data footprint");
    }

    #[test]
    fn unknown_tenant_and_empty_quota_always_admit() {
        let mut g = QuotaGate::new();
        let d = demand_of_app(&app());
        assert!(g.admit("ghost", &d).is_admit());
        g.open_account("acme", PlanSpec::unlimited("free"), 0);
        assert!(g.admit("acme", &d).is_admit());
    }

    #[test]
    fn quota_rejects_with_the_failing_dimension() {
        let mut g = QuotaGate::new();
        g.open_account("acme", quota(8, 100), 0);
        let d = demand_of_app(&app());
        assert!(g.admit("acme", &d).is_admit());
        g.commit("acme", &d);
        // Second copy: 5 + 5 > 8 on cpu.
        assert_eq!(
            g.admit("acme", &d),
            AdmissionVerdict::QuotaExceeded {
                kind: ResourceKind::Cpu,
                requested: 5,
                in_use: 5,
                limit: 8,
            }
        );
        // Release frees the head-room again.
        g.release("acme", &d);
        assert!(g.admit("acme", &d).is_admit());
    }

    #[test]
    fn suspended_accounts_are_refused_outright() {
        let mut g = QuotaGate::new();
        let plan = PlanSpec {
            degrade_after_us: 0,
            suspend_after_us: 0,
            ..quota(100, 100)
        };
        g.open_account("acme", plan, 0);
        g.account_mut("acme").unwrap().charge(1, 10, None, "usage");
        let events = g.settle_all(5);
        assert_eq!(events.len(), 1, "acme transitioned");
        assert!(g.account("acme").unwrap().is_suspended());
        let d = demand_of_app(&app());
        assert_eq!(g.admit("acme", &d), AdmissionVerdict::Suspended);
        // Payment → reinstate → admission works again.
        g.account_mut("acme").unwrap().pay(6, 100);
        g.settle_all(7);
        assert!(g.admit("acme", &d).is_admit());
    }
}
