//! The seeded second-price spot market for surplus capacity.
//!
//! Each accounting epoch the provider offers a **lot** of surplus
//! capacity (a resource kind and unit count with a reserve price) and
//! tenants bid through their own **extension-VM bidding policies** —
//! gas-metered programs whose only view of the market is the host
//! functions below (Design Principles 1–2 applied to economics: the
//! tenant programs the provider's market, safely). The auction is
//! sealed-bid second price (Vickrey): the highest bidder wins but pays
//! `max(second bid, reserve)`, which makes truthful bidding the
//! dominant strategy — and makes the shaded/aggressive canned policies
//! below produce a measurable price of anarchy for `exp_15`.
//!
//! Determinism: bidders are evaluated in the caller-supplied order but
//! ranked by `(bid desc, tenant name asc)`, every input comes from the
//! gate or the seeded experiment, and the VM is deterministic, so the
//! same seed yields byte-identical auction telemetry at any thread
//! count.

use udc_extvm::{Host, Program, Vm, VmLimits};
use udc_spec::ResourceKind;
use udc_telemetry::{Decision, Labels, ReasonCode, Telemetry};

use crate::gate::QuotaGate;

/// Host-function indices a bidding policy may call (all niladic).
pub mod hostfn {
    /// Tenant's current ledger balance, µ$ (negative when overdue).
    pub const BALANCE: u8 = 0;
    /// Units of capacity in the lot on offer.
    pub const LOT_UNITS: u8 = 1;
    /// Clearing price of the previous epoch's auction (0 at first).
    pub const LAST_PRICE: u8 = 2;
    /// Provider utilization, percent 0–100.
    pub const UTILIZATION: u8 = 3;
    /// The lot's reserve price, µ$ per unit.
    pub const RESERVE: u8 = 4;
    /// The tenant's private per-unit valuation, µ$.
    pub const VALUATION: u8 = 5;
}

/// Bids its true valuation — the dominant strategy under second price.
pub const TRUTHFUL_BIDDER: &str = "
    hostcall 5.0
    ret
";

/// Shades to 4/5 of valuation (rational under *first*-price intuition;
/// under-bids here and loses lots it values most — anarchy source #1).
pub const SHADED_BIDDER: &str = "
    hostcall 5.0
    push 4
    mul
    push 5
    div
    ret
";

/// Over-bids at 6/5 of valuation, chasing utilization spikes — wins
/// lots it values less than it pays for (anarchy source #2).
pub const AGGRESSIVE_BIDDER: &str = "
    hostcall 5.0
    push 6
    mul
    push 5
    div
    ret
";

/// Truthful but capped by what the balance can afford per unit:
/// `min(valuation, balance / units)`.
pub const BUDGET_BIDDER: &str = "
    hostcall 5.0
    hostcall 0.0
    hostcall 1.0
    div
    min
    push 0
    max
    ret
";

/// A lot of surplus capacity on offer for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lot {
    /// What is being sold.
    pub kind: ResourceKind,
    /// How many units.
    pub units: u64,
    /// Minimum acceptable per-unit price, µ$.
    pub reserve_price: u64,
}

/// One tenant's bidding policy: a compiled extension-VM program plus
/// the private per-unit valuation the [`hostfn::VALUATION`] call
/// exposes to it (drawn by the seeded experiment, never shared between
/// bidders).
#[derive(Debug, Clone)]
pub struct BidderPolicy {
    /// Tenant the policy bids for (must match a gate account to win).
    pub tenant: String,
    /// The compiled bidding program.
    pub program: Program,
    /// Private valuation, µ$ per unit.
    pub valuation: u64,
}

/// One evaluated bid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BidRecord {
    /// Bidding tenant.
    pub tenant: String,
    /// The bid, µ$ per unit (0 when the policy trapped).
    pub bid: u64,
    /// Gas the policy burned.
    pub gas_used: u64,
    /// Whether the policy trapped (gas, stack, or host error).
    pub trapped: bool,
}

/// The outcome of one epoch's auction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuctionOutcome {
    /// The lot that was offered.
    pub lot: Lot,
    /// Winning tenant, when any bid met the reserve.
    pub winner: Option<String>,
    /// Per-unit price the winner pays: `max(second bid, reserve)`.
    pub clearing_price: u64,
    /// Total µ$ the auction raised (`clearing_price × units`).
    pub revenue: u64,
    /// Welfare achieved: the winner's true valuation × units.
    pub achieved_welfare: u64,
    /// Welfare an omniscient allocation would achieve: the highest
    /// eligible valuation × units. `optimal / achieved` is the price
    /// of anarchy `exp_15` sweeps.
    pub optimal_welfare: u64,
    /// Every evaluated bid, in ranked order.
    pub bids: Vec<BidRecord>,
}

/// The market host: a read-only window onto one tenant's view of the
/// auction. Unknown indices or any arguments trap the policy.
struct MarketHost {
    balance: i64,
    lot_units: u64,
    last_price: u64,
    utilization_pct: u64,
    reserve: u64,
    valuation: u64,
}

impl Host for MarketHost {
    fn call(&mut self, idx: u8, args: &[i64]) -> Result<i64, String> {
        if !args.is_empty() {
            return Err(format!("market host fn {idx} takes no arguments"));
        }
        match idx {
            hostfn::BALANCE => Ok(self.balance),
            hostfn::LOT_UNITS => Ok(self.lot_units.min(i64::MAX as u64) as i64),
            hostfn::LAST_PRICE => Ok(self.last_price.min(i64::MAX as u64) as i64),
            hostfn::UTILIZATION => Ok(self.utilization_pct.min(100) as i64),
            hostfn::RESERVE => Ok(self.reserve.min(i64::MAX as u64) as i64),
            hostfn::VALUATION => Ok(self.valuation.min(i64::MAX as u64) as i64),
            _ => Err(format!("unknown market host fn {idx}")),
        }
    }
}

/// The provider-side market: runs one sealed-bid second-price auction
/// per accounting epoch and carries the last clearing price forward so
/// policies can react to it.
#[derive(Debug)]
pub struct SpotMarket {
    limits: VmLimits,
    last_clearing_price: u64,
    epoch: u64,
}

impl Default for SpotMarket {
    fn default() -> Self {
        Self::new(VmLimits::default())
    }
}

impl SpotMarket {
    /// A market enforcing `limits` on every bidding policy.
    pub fn new(limits: VmLimits) -> Self {
        Self {
            limits,
            last_clearing_price: 0,
            epoch: 0,
        }
    }

    /// The clearing price of the most recent auction that sold.
    pub fn last_clearing_price(&self) -> u64 {
        self.last_clearing_price
    }

    /// Runs one epoch's auction over `lot`.
    ///
    /// Suspended accounts are skipped (recorded with a `Suspended`
    /// decision); every other bidder's policy runs gas-metered against
    /// its private [`MarketHost`] view. The winner is debited
    /// `clearing_price × units` on its ledger; losers get `Outbid`
    /// decisions so `udc-trace --explain` can audit why a tenant did
    /// not receive surplus capacity.
    pub fn run_epoch(
        &mut self,
        now_us: u64,
        lot: &Lot,
        bidders: &[BidderPolicy],
        utilization_pct: u64,
        gate: &mut QuotaGate,
        tel: &Telemetry,
    ) -> AuctionOutcome {
        self.epoch += 1;
        let lot_name = format!("lot:{}", lot.kind.name());
        let mut records: Vec<BidRecord> = Vec::new();
        let mut skipped: Vec<&str> = Vec::new();

        for b in bidders {
            if gate.account(&b.tenant).is_some_and(|a| a.is_suspended()) {
                skipped.push(&b.tenant);
                tel.decide(Decision {
                    ctx: None,
                    stage: "market.auction",
                    module: &lot_name,
                    candidate: &b.tenant,
                    accepted: false,
                    reason: ReasonCode::Suspended,
                    score: None,
                    detail: "account suspended; bid not evaluated".into(),
                });
                continue;
            }
            let balance = gate
                .account(&b.tenant)
                .map(|a| a.ledger.balance_microdollars())
                .unwrap_or(0);
            let mut host = MarketHost {
                balance,
                lot_units: lot.units,
                last_price: self.last_clearing_price,
                utilization_pct,
                reserve: lot.reserve_price,
                valuation: b.valuation,
            };
            let mut vm = Vm::new(self.limits);
            let (bid, trapped) = match vm.run(&b.program, &[], &mut host) {
                Ok(v) => (v.max(0) as u64, false),
                Err(_) => {
                    tel.incr("market.traps", Labels::tenant(&b.tenant), 1);
                    (0, true)
                }
            };
            records.push(BidRecord {
                tenant: b.tenant.clone(),
                bid,
                gas_used: vm.last_gas_used(),
                trapped,
            });
        }

        // Rank: highest bid first, tenant name breaks ties — total
        // order independent of input order.
        records.sort_by(|a, b| b.bid.cmp(&a.bid).then_with(|| a.tenant.cmp(&b.tenant)));

        let qualifying = records
            .iter()
            .filter(|r| r.bid >= lot.reserve_price)
            .count();
        let (winner, clearing_price) = if qualifying == 0 {
            (None, 0)
        } else {
            let second = records.get(1).map(|r| r.bid).unwrap_or(0);
            (
                Some(records[0].tenant.clone()),
                second.max(lot.reserve_price),
            )
        };
        let revenue = clearing_price.saturating_mul(lot.units);

        // Decisions + the winner's ledger debit.
        for (rank, r) in records.iter().enumerate() {
            let won = winner.as_deref() == Some(r.tenant.as_str());
            tel.decide(Decision {
                ctx: None,
                stage: "market.auction",
                module: &lot_name,
                candidate: &r.tenant,
                accepted: won,
                reason: if won {
                    ReasonCode::Accepted
                } else {
                    ReasonCode::Outbid
                },
                score: Some(r.bid.min(i64::MAX as u64) as i64),
                detail: if won {
                    format!("pays {clearing_price} µ$/unit × {} units", lot.units)
                } else if r.bid < lot.reserve_price {
                    format!("bid {} below reserve {}", r.bid, lot.reserve_price)
                } else {
                    format!("ranked #{}", rank + 1)
                },
            });
        }
        if let Some(w) = &winner {
            if let Some(acct) = gate.account_mut(w) {
                acct.charge(
                    now_us,
                    revenue,
                    None,
                    &format!("spot market: {} × {}", lot.units, lot.kind.name()),
                );
            }
            self.last_clearing_price = clearing_price;
        }

        // Welfare accounting for the price-of-anarchy sweep: optimal
        // assigns the lot to the highest *valuation* among evaluated
        // (non-suspended) bidders; achieved is the actual winner's.
        let valuation_of = |t: &str| {
            bidders
                .iter()
                .find(|b| b.tenant == t)
                .map(|b| b.valuation)
                .unwrap_or(0)
        };
        let optimal_welfare = records
            .iter()
            .map(|r| valuation_of(&r.tenant))
            .max()
            .unwrap_or(0)
            .saturating_mul(lot.units);
        let achieved_welfare = winner
            .as_deref()
            .map(valuation_of)
            .unwrap_or(0)
            .saturating_mul(lot.units);

        tel.incr("market.lots", Labels::none(), 1);
        tel.incr("market.revenue_microdollars", Labels::none(), revenue);
        if winner.is_some() {
            tel.observe("market.clearing_price", Labels::none(), clearing_price);
        } else {
            tel.incr("market.unsold_lots", Labels::none(), 1);
        }
        tel.observe("market.utilization_pct", Labels::none(), utilization_pct);

        AuctionOutcome {
            lot: lot.clone(),
            winner,
            clearing_price,
            revenue,
            achieved_welfare,
            optimal_welfare,
            bids: records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanSpec;
    use udc_extvm::assemble;

    fn bidder(tenant: &str, asm: &str, valuation: u64) -> BidderPolicy {
        BidderPolicy {
            tenant: tenant.to_string(),
            program: assemble(asm).expect("canned policy assembles"),
            valuation,
        }
    }

    fn lot() -> Lot {
        Lot {
            kind: ResourceKind::Cpu,
            units: 10,
            reserve_price: 5,
        }
    }

    fn gate_with(tenants: &[&str]) -> QuotaGate {
        let mut g = QuotaGate::new();
        for t in tenants {
            g.open_account(t, PlanSpec::unlimited("spot"), 0);
            g.account_mut(t).unwrap().pay(0, 10_000);
        }
        g
    }

    #[test]
    fn winner_pays_second_price_and_is_debited() {
        let mut g = gate_with(&["alice", "bob"]);
        let tel = Telemetry::enabled();
        let mut m = SpotMarket::default();
        let out = m.run_epoch(
            100,
            &lot(),
            &[
                bidder("alice", TRUTHFUL_BIDDER, 40),
                bidder("bob", TRUTHFUL_BIDDER, 25),
            ],
            50,
            &mut g,
            &tel,
        );
        assert_eq!(out.winner.as_deref(), Some("alice"));
        assert_eq!(out.clearing_price, 25, "second price, not own bid");
        assert_eq!(out.revenue, 250);
        assert_eq!(out.achieved_welfare, 400);
        assert_eq!(out.optimal_welfare, 400, "truthful bidding is efficient");
        assert_eq!(
            g.account("alice").unwrap().ledger.balance_microdollars(),
            10_000 - 250
        );
        assert_eq!(m.last_clearing_price(), 25);
        // Bob's loss is auditable.
        let outbid: Vec<_> = tel
            .decisions()
            .into_iter()
            .filter(|d| d.reason == ReasonCode::Outbid)
            .collect();
        assert_eq!(outbid.len(), 1);
        assert_eq!(outbid[0].candidate, "bob");
    }

    #[test]
    fn shading_loses_lots_it_values_most() {
        let mut g = gate_with(&["shady", "modest"]);
        let tel = Telemetry::enabled();
        let mut m = SpotMarket::default();
        // Shady values the lot at 50 but bids 40; modest truthfully
        // bids 45 — inefficient allocation, price of anarchy > 1.
        let out = m.run_epoch(
            100,
            &lot(),
            &[
                bidder("shady", SHADED_BIDDER, 50),
                bidder("modest", TRUTHFUL_BIDDER, 45),
            ],
            50,
            &mut g,
            &tel,
        );
        assert_eq!(out.winner.as_deref(), Some("modest"));
        assert_eq!(out.achieved_welfare, 450);
        assert_eq!(out.optimal_welfare, 500);
        assert!(out.optimal_welfare > out.achieved_welfare);
    }

    #[test]
    fn reserve_and_suspension_are_enforced() {
        let mut g = gate_with(&["alice", "bob"]);
        // Suspend bob outright.
        let plan = PlanSpec {
            degrade_after_us: 0,
            suspend_after_us: 0,
            ..PlanSpec::unlimited("strict")
        };
        g.open_account("bob", plan, 0);
        g.account_mut("bob").unwrap().charge(1, 10, None, "debt");
        g.settle_all(2);
        assert!(g.account("bob").unwrap().is_suspended());

        let tel = Telemetry::enabled();
        let mut m = SpotMarket::default();
        // Alice's valuation (3) is below the reserve (5): lot unsold.
        let out = m.run_epoch(
            100,
            &lot(),
            &[
                bidder("alice", TRUTHFUL_BIDDER, 3),
                bidder("bob", TRUTHFUL_BIDDER, 100),
            ],
            50,
            &mut g,
            &tel,
        );
        assert_eq!(out.winner, None);
        assert_eq!(out.revenue, 0);
        assert_eq!(out.bids.len(), 1, "suspended bob never evaluated");
        assert!(tel
            .decisions()
            .iter()
            .any(|d| d.candidate == "bob" && d.reason == ReasonCode::Suspended));
        assert_eq!(tel.counter("market.unsold_lots", &Labels::none()), 1);
    }

    #[test]
    fn budget_bidder_caps_at_affordable_price_and_traps_are_bid_zero() {
        let mut g = gate_with(&["poor", "rich"]);
        // poor's balance is 100 → can afford 10 µ$/unit on a 10-unit
        // lot despite valuing it at 90.
        g.account_mut("poor")
            .unwrap()
            .charge(1, 9_900, None, "spend");
        let tel = Telemetry::enabled();
        let mut m = SpotMarket::default();
        let bad = BidderPolicy {
            tenant: "rich".into(),
            // Calls an unknown host fn → traps → bid 0.
            program: assemble("hostcall 9.0\nret").unwrap(),
            valuation: 80,
        };
        let out = m.run_epoch(
            100,
            &lot(),
            &[bidder("poor", BUDGET_BIDDER, 90), bad],
            50,
            &mut g,
            &tel,
        );
        assert_eq!(out.winner.as_deref(), Some("poor"));
        assert_eq!(out.bids[0].bid, 10, "capped by balance/units");
        assert!(out.bids[1].trapped);
        assert_eq!(out.bids[1].bid, 0);
        assert_eq!(tel.counter("market.traps", &Labels::tenant("rich")), 1);
    }

    #[test]
    fn auction_is_order_independent() {
        let run = |order: &[(&str, u64)]| {
            let mut g = gate_with(&["a", "b", "c"]);
            let tel = Telemetry::enabled();
            let mut m = SpotMarket::default();
            let bidders: Vec<_> = order
                .iter()
                .map(|(t, v)| bidder(t, TRUTHFUL_BIDDER, *v))
                .collect();
            let out = m.run_epoch(100, &lot(), &bidders, 50, &mut g, &tel);
            (out.winner, out.clearing_price, out.bids)
        };
        let fwd = run(&[("a", 30), ("b", 30), ("c", 20)]);
        let rev = run(&[("c", 20), ("b", 30), ("a", 30)]);
        assert_eq!(fwd, rev, "ranked order ignores input order");
        assert_eq!(fwd.0.as_deref(), Some("a"), "ties break by name");
    }
}
