//! # udc-economics — the tenant economics subsystem
//!
//! §4 of the paper argues UDC adoption on economics: tenants pay only
//! for the capacity their aspects actually need, and the provider can
//! raise unit prices inside a win-win region while selling surplus
//! disaggregated capacity. The seed repo reproduced the *one-shot* half
//! of that argument (`BillingModel::price` plus the win-win sweep);
//! this crate adds the **ongoing** economic state that governs a
//! running control plane:
//!
//! - [`UsageLedger`] — an append-only per-tenant debit/credit ledger
//!   with a conservation invariant (`credits == debits + balance`),
//!   the auditable system of record billing reconciliation checks
//!   against;
//! - [`PlanSpec`] / [`TenantAccount`] — entitlement windows that renew
//!   on the simulated clock, quotas, and the overdue → degrade →
//!   suspend → reinstate lifecycle ([`TenantAccount::settle`]);
//! - [`QuotaGate`] — admission control the scheduler consults before
//!   placing an application, with denial reasons recorded in the
//!   decision log exactly like capacity rejections;
//! - [`SpotMarket`] — a seeded sealed-bid second-price auction where
//!   tenant *extension-VM bidding policies* (gas-metered `udc-extvm`
//!   programs) bid for surplus capacity each accounting epoch.
//!
//! The crate depends only on `udc-spec`, `udc-extvm`, and
//! `udc-telemetry`; pricing stays in `udc-core`'s `BillingModel` and
//! flows in as micro-dollar amounts, which keeps the dependency graph
//! acyclic and the ledger currency-agnostic. Everything is driven by
//! the simulated clock and seeded inputs — no wall-clock, no ambient
//! randomness — so economic trajectories replay byte-identically at
//! any `--threads N`.

pub mod gate;
pub mod ledger;
pub mod market;
pub mod plan;

pub use gate::{demand_of_app, shared, AdmissionVerdict, QuotaGate, SharedQuotaGate};
pub use ledger::{EntryKind, LedgerEntry, UsageLedger};
pub use market::{
    hostfn, AuctionOutcome, BidRecord, BidderPolicy, Lot, SpotMarket, AGGRESSIVE_BIDDER,
    BUDGET_BIDDER, SHADED_BIDDER, TRUTHFUL_BIDDER,
};
pub use plan::{AccountStatus, LifecycleEvent, PlanSpec, TenantAccount};
