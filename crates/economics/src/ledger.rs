//! The per-tenant usage ledger: the economic system of record.
//!
//! §4's trust argument extended to money over time: every charge and
//! every payment is one **append-only** entry, so the tenant (or an
//! auditor) can replay the account's entire history and recompute the
//! balance from scratch. The conservation invariant —
//! `credits == debits + balance` — is checkable at any moment and is
//! enforced by the property suite under arbitrary operation sequences.
//!
//! Amounts are micro-dollars, priced by the caller (the control plane
//! prices module holding windows with the `BillingModel` agreed at
//! submit); the ledger itself never invents a price, which is exactly
//! what makes it usable as the reconciliation oracle in
//! `verify_deployment`.

use serde::{Deserialize, Serialize};

/// Whether an entry adds to or draws from the balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// Money in: entitlement renewal, payment, market refund.
    Credit,
    /// Money out: metered usage, suspension fees, market purchases.
    Debit,
}

/// One immutable ledger line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Append order (0-based, dense).
    pub seq: u64,
    /// Sim-clock time the entry was recorded.
    pub at_us: u64,
    /// Credit or debit.
    pub kind: EntryKind,
    /// Magnitude in micro-dollars (always non-negative).
    pub amount_microdollars: u64,
    /// The module the charge meters, when it meters one.
    pub module: Option<String>,
    /// Human-readable cause, e.g. `"usage window"` or `"entitlement"`.
    pub memo: String,
}

/// An append-only account ledger with a running balance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageLedger {
    entries: Vec<LedgerEntry>,
    /// Running balance in micro-dollars (may go negative — that is the
    /// overdue signal the lifecycle acts on).
    balance: i64,
}

impl UsageLedger {
    /// An empty ledger at balance zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn append(
        &mut self,
        at_us: u64,
        kind: EntryKind,
        amount: u64,
        module: Option<&str>,
        memo: impl Into<String>,
    ) -> &LedgerEntry {
        let seq = self.entries.len() as u64;
        match kind {
            EntryKind::Credit => self.balance = self.balance.saturating_add_unsigned(amount),
            EntryKind::Debit => self.balance = self.balance.saturating_sub_unsigned(amount),
        }
        self.entries.push(LedgerEntry {
            seq,
            at_us,
            kind,
            amount_microdollars: amount,
            module: module.map(str::to_string),
            memo: memo.into(),
        });
        self.entries.last().expect("just pushed")
    }

    /// Records a credit (payment, entitlement, refund).
    pub fn credit(&mut self, at_us: u64, amount: u64, memo: impl Into<String>) {
        self.append(at_us, EntryKind::Credit, amount, None, memo);
    }

    /// Records a debit, optionally metered against a module.
    pub fn debit(
        &mut self,
        at_us: u64,
        amount: u64,
        module: Option<&str>,
        memo: impl Into<String>,
    ) {
        self.append(at_us, EntryKind::Debit, amount, module, memo);
    }

    /// Current balance in micro-dollars (negative = owing).
    pub fn balance_microdollars(&self) -> i64 {
        self.balance
    }

    /// Sum of all credits ever recorded.
    pub fn total_credits(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Credit)
            .map(|e| e.amount_microdollars)
            .sum()
    }

    /// Sum of all debits ever recorded.
    pub fn total_debits(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Debit)
            .map(|e| e.amount_microdollars)
            .sum()
    }

    /// Sum of debits metered against `module` — the tenant-side number
    /// billing reconciliation compares the provider's counters against.
    pub fn debits_for_module(&self, module: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Debit && e.module.as_deref() == Some(module))
            .map(|e| e.amount_microdollars)
            .sum()
    }

    /// The full history, in append order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Replays the whole history and checks it against the running
    /// balance: `credits == debits + balance` (in i128 so no operation
    /// sequence can overflow the check itself), and entry sequence
    /// numbers are dense and ordered. This is the auditability claim as
    /// a predicate.
    pub fn conservation_holds(&self) -> bool {
        let credits = self.total_credits() as i128;
        let debits = self.total_debits() as i128;
        let dense = self
            .entries
            .iter()
            .enumerate()
            .all(|(i, e)| e.seq == i as u64);
        dense && credits == debits + self.balance as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_tracks_entries_and_conserves() {
        let mut l = UsageLedger::new();
        l.credit(0, 1_000, "entitlement");
        l.debit(5, 300, Some("A1"), "usage window");
        l.debit(9, 900, Some("A2"), "usage window");
        assert_eq!(l.balance_microdollars(), -200, "overdue is representable");
        assert_eq!(l.total_credits(), 1_000);
        assert_eq!(l.total_debits(), 1_200);
        assert_eq!(l.debits_for_module("A1"), 300);
        assert_eq!(l.debits_for_module("A2"), 900);
        assert_eq!(l.debits_for_module("A3"), 0);
        assert!(l.conservation_holds());
        assert_eq!(l.entries().len(), 3);
        assert_eq!(l.entries()[2].seq, 2);
    }

    #[test]
    fn ledger_serializes_round_trip() {
        let mut l = UsageLedger::new();
        l.credit(1, 50, "seed");
        l.debit(2, 20, Some("m"), "use");
        let json = serde_json::to_string(&l).unwrap();
        let back: UsageLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        assert!(back.conservation_holds());
    }
}
