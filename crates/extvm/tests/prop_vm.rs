//! Safety properties of the extension VM: arbitrary bytecode never
//! panics, always terminates within the gas budget, and never observes
//! state from a previous run.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use udc_extvm::isa::{Instr, Program};
use udc_extvm::{Host, NullHost, Vm, VmLimits};

fn arb_instr(prog_len: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::Push),
        Just(Instr::Pop),
        Just(Instr::Dup),
        Just(Instr::Swap),
        (0u8..4).prop_map(Instr::Arg),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Div),
        Just(Instr::Mod),
        Just(Instr::Neg),
        Just(Instr::Min),
        Just(Instr::Max),
        Just(Instr::Eq),
        Just(Instr::Lt),
        Just(Instr::Gt),
        Just(Instr::And),
        Just(Instr::Or),
        Just(Instr::Not),
        (0..prog_len).prop_map(Instr::Jmp),
        (0..prog_len).prop_map(Instr::Jz),
        (0..prog_len).prop_map(Instr::Jnz),
        (0u8..255).prop_map(Instr::Load),
        (0u8..255).prop_map(Instr::Store),
        Just(Instr::MemLoad),
        Just(Instr::MemStore),
        (0u8..4, 0u8..4).prop_map(|(idx, argc)| Instr::HostCall { idx, argc }),
        Just(Instr::Ret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary (valid-jump) bytecode never panics and always
    /// terminates, successfully or with a trap, within the gas budget.
    #[test]
    fn arbitrary_bytecode_is_safe(
        len in 1u32..64,
        seed_args in prop::collection::vec(any::<i64>(), 0..4),
    ) {
        // Build a program of exactly `len` instructions with jump targets
        // inside range.
        let strategy = prop::collection::vec(arb_instr(len), len as usize..=len as usize);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let instrs = strategy.new_tree(&mut runner).unwrap().current();
        let program = Program::new(instrs).unwrap();
        let mut vm = Vm::new(VmLimits {
            max_gas: 10_000,
            ..Default::default()
        });
        // Must not panic; result may be Ok or any Err.
        let _ = vm.run(&program, &seed_args, &mut NullHost);
        prop_assert!(vm.last_gas_used() <= 10_000 + 10, "gas bound respected");
    }

    /// A hostile host (always erroring) cannot crash the VM.
    #[test]
    fn hostile_host_contained(len in 1u32..32) {
        struct Hostile;
        impl Host for Hostile {
            fn call(&mut self, _idx: u8, _args: &[i64]) -> Result<i64, String> {
                Err("boom".to_string())
            }
        }
        let strategy = prop::collection::vec(arb_instr(len), len as usize..=len as usize);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let instrs = strategy.new_tree(&mut runner).unwrap().current();
        let program = Program::new(instrs).unwrap();
        let _ = Vm::new(VmLimits::default()).run(&program, &[], &mut Hostile);
    }

    /// Deterministic: the same program and arguments produce the same
    /// result and gas usage.
    #[test]
    fn execution_deterministic(
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let program = Program::new(vec![
            Instr::Arg(0),
            Instr::Arg(1),
            Instr::Add,
            Instr::Arg(0),
            Instr::Mul,
            Instr::Ret,
        ]).unwrap();
        let mut vm1 = Vm::new(VmLimits::default());
        let mut vm2 = Vm::new(VmLimits::default());
        let r1 = vm1.run(&program, &[a, b], &mut NullHost);
        let r2 = vm2.run(&program, &[a, b], &mut NullHost);
        prop_assert_eq!(r1.clone(), r2);
        prop_assert_eq!(vm1.last_gas_used(), vm2.last_gas_used());
        prop_assert_eq!(r1, Ok(a.wrapping_add(b).wrapping_mul(a)));
    }

    /// Memory is zeroed between runs: no cross-tenant leakage through a
    /// reused VM.
    #[test]
    fn no_state_leakage(value in 1i64..1000, addr in 0i64..1024) {
        let store = Program::new(vec![
            Instr::Push(addr),
            Instr::Push(value),
            Instr::MemStore,
            Instr::Push(0),
            Instr::Ret,
        ]).unwrap();
        let load = Program::new(vec![
            Instr::Push(addr),
            Instr::MemLoad,
            Instr::Ret,
        ]).unwrap();
        let mut vm = Vm::new(VmLimits::default());
        vm.run(&store, &[], &mut NullHost).unwrap();
        prop_assert_eq!(vm.run(&load, &[], &mut NullHost), Ok(0));
    }
}
