//! # udc-extvm — the tenant-extension virtual machine
//!
//! UDC's defining property is that *users* program the control plane:
//! they define how their modules are placed, admitted, and scaled
//! (Design Principles 1–2). Running untrusted tenant policy code inside
//! the provider's control plane requires a sandbox with three hard
//! guarantees:
//!
//! 1. **Termination** — every execution is bounded by a gas budget;
//! 2. **Memory safety** — a fixed-size value stack and linear memory,
//!    bounds-checked on every access;
//! 3. **No ambient authority** — the only view of the world is a set of
//!    host functions the embedder explicitly provides.
//!
//! The VM is a small stack machine with a 64-bit integer word, an
//! assembler for a readable text format, and a [`Host`] trait the
//! scheduler implements to expose policy context (device capacities,
//! racks, module demands). This substitutes for the WASM/eBPF runtimes
//! the paper's ecosystem would use (see DESIGN.md §5): what matters for
//! the reproduction is safe, bounded, embedder-mediated execution of
//! tenant code, which this VM provides with zero heavyweight
//! dependencies.
//!
//! # Examples
//!
//! ```
//! use udc_extvm::{assemble, Vm, VmLimits, NullHost};
//!
//! // A policy that scores a candidate as 100 - 2*x (x = arg 0).
//! let program = assemble(r#"
//!     push 100
//!     arg 0
//!     push 2
//!     mul
//!     sub
//!     ret
//! "#).unwrap();
//! let mut vm = Vm::new(VmLimits::default());
//! let score = vm.run(&program, &[7], &mut NullHost).unwrap();
//! assert_eq!(score, 86);
//! ```

pub mod asm;
pub mod isa;
pub mod policies;
pub mod vm;

pub use asm::{assemble, AsmError};
pub use isa::{Instr, Program};
pub use policies::{BEST_FIT, HALF_EMPTY_ONLY, RACK_AFFINITY, WORST_FIT};
pub use vm::{Host, NullHost, Vm, VmError, VmLimits};
