//! The interpreter: gas-metered, memory-safe, panic-free.

use crate::isa::{Instr, Program};
use std::fmt;

/// Resource limits for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmLimits {
    /// Maximum instructions executed (gas). Hostile infinite loops hit
    /// this bound and trap.
    pub max_gas: u64,
    /// Maximum operand-stack depth.
    pub max_stack: usize,
    /// Local variable slots available.
    pub locals: usize,
    /// Linear-memory cells available.
    pub memory_cells: usize,
}

impl Default for VmLimits {
    fn default() -> Self {
        Self {
            max_gas: 100_000,
            max_stack: 256,
            locals: 64,
            memory_cells: 1024,
        }
    }
}

/// Trap reasons. Every failure mode is a value, never a panic — hostile
/// extensions cannot take down the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Gas exhausted: the program ran too long.
    OutOfGas,
    /// Operand-stack overflow.
    StackOverflow,
    /// Pop/peek on an empty (or too-shallow) stack.
    StackUnderflow,
    /// Division or remainder by zero (or i64::MIN / -1).
    DivideByZero,
    /// Local-slot index out of range.
    BadLocal(u8),
    /// Linear-memory address out of range.
    BadAddress(i64),
    /// Invocation-argument index out of range.
    BadArg(u8),
    /// The host function index is not provided by the embedder.
    UnknownHostFn(u8),
    /// The host function itself failed.
    HostError(String),
    /// Execution fell off the end of the program without `ret`.
    NoReturn,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfGas => f.write_str("gas exhausted"),
            VmError::StackOverflow => f.write_str("stack overflow"),
            VmError::StackUnderflow => f.write_str("stack underflow"),
            VmError::DivideByZero => f.write_str("division by zero"),
            VmError::BadLocal(i) => write!(f, "local slot {i} out of range"),
            VmError::BadAddress(a) => write!(f, "memory address {a} out of range"),
            VmError::BadArg(i) => write!(f, "argument {i} out of range"),
            VmError::UnknownHostFn(i) => write!(f, "unknown host function {i}"),
            VmError::HostError(m) => write!(f, "host error: {m}"),
            VmError::NoReturn => f.write_str("program ended without ret"),
        }
    }
}

impl std::error::Error for VmError {}

/// The embedder-provided view of the world.
///
/// The scheduler implements this to expose policy context (device free
/// capacity, rack ids, module demand, ...). Host functions receive the
/// popped arguments oldest-first and return a single value.
pub trait Host {
    /// Invokes host function `idx` with `args`.
    fn call(&mut self, idx: u8, args: &[i64]) -> Result<i64, String>;
}

/// A host providing no functions: any `hostcall` traps.
pub struct NullHost;

impl Host for NullHost {
    fn call(&mut self, idx: u8, _args: &[i64]) -> Result<i64, String> {
        Err(format!("no host function {idx}"))
    }
}

/// The virtual machine. Reusable across runs; each [`Vm::run`] starts
/// from a clean state.
#[derive(Debug, Clone)]
pub struct Vm {
    limits: VmLimits,
    /// Gas consumed by the most recent run (telemetry for E14).
    last_gas_used: u64,
}

impl Vm {
    /// Creates a VM with the given limits.
    pub fn new(limits: VmLimits) -> Self {
        Self {
            limits,
            last_gas_used: 0,
        }
    }

    /// Gas consumed by the most recent `run`.
    pub fn last_gas_used(&self) -> u64 {
        self.last_gas_used
    }

    /// Executes `program` with invocation `args` against `host`,
    /// returning the program's result value.
    pub fn run(
        &mut self,
        program: &Program,
        args: &[i64],
        host: &mut dyn Host,
    ) -> Result<i64, VmError> {
        let instrs = program.instrs();
        let mut stack: Vec<i64> = Vec::with_capacity(self.limits.max_stack.min(64));
        let mut locals = vec![0i64; self.limits.locals];
        let mut memory = vec![0i64; self.limits.memory_cells];
        let mut pc: usize = 0;
        let mut gas: u64 = 0;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow)?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= self.limits.max_stack {
                    self.last_gas_used = gas;
                    return Err(VmError::StackOverflow);
                }
                stack.push($v);
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!();
                let a = pop!();
                push!($f(a, b));
            }};
        }

        while pc < instrs.len() {
            gas += 1;
            if gas > self.limits.max_gas {
                self.last_gas_used = gas;
                return Err(VmError::OutOfGas);
            }
            let instr = instrs[pc];
            pc += 1;
            match instr {
                Instr::Push(v) => push!(v),
                Instr::Pop => {
                    pop!();
                }
                Instr::Dup => {
                    let v = *stack.last().ok_or(VmError::StackUnderflow)?;
                    push!(v);
                }
                Instr::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Instr::Arg(i) => {
                    let v = *args.get(i as usize).ok_or(VmError::BadArg(i))?;
                    push!(v);
                }
                Instr::Add => binop!(|a: i64, b: i64| a.wrapping_add(b)),
                Instr::Sub => binop!(|a: i64, b: i64| a.wrapping_sub(b)),
                Instr::Mul => binop!(|a: i64, b: i64| a.wrapping_mul(b)),
                Instr::Div => {
                    let b = pop!();
                    let a = pop!();
                    let v = a.checked_div(b).ok_or(VmError::DivideByZero)?;
                    push!(v);
                }
                Instr::Mod => {
                    let b = pop!();
                    let a = pop!();
                    let v = a.checked_rem(b).ok_or(VmError::DivideByZero)?;
                    push!(v);
                }
                Instr::Neg => {
                    let a = pop!();
                    push!(a.wrapping_neg());
                }
                Instr::Min => binop!(|a: i64, b: i64| a.min(b)),
                Instr::Max => binop!(|a: i64, b: i64| a.max(b)),
                Instr::Eq => binop!(|a, b| i64::from(a == b)),
                Instr::Ne => binop!(|a, b| i64::from(a != b)),
                Instr::Lt => binop!(|a, b| i64::from(a < b)),
                Instr::Le => binop!(|a, b| i64::from(a <= b)),
                Instr::Gt => binop!(|a, b| i64::from(a > b)),
                Instr::Ge => binop!(|a, b| i64::from(a >= b)),
                Instr::And => binop!(|a, b| i64::from(a != 0 && b != 0)),
                Instr::Or => binop!(|a, b| i64::from(a != 0 || b != 0)),
                Instr::Not => {
                    let a = pop!();
                    push!(i64::from(a == 0));
                }
                Instr::Jmp(t) => pc = t as usize,
                Instr::Jz(t) => {
                    if pop!() == 0 {
                        pc = t as usize;
                    }
                }
                Instr::Jnz(t) => {
                    if pop!() != 0 {
                        pc = t as usize;
                    }
                }
                Instr::Load(i) => {
                    let v = *locals.get(i as usize).ok_or(VmError::BadLocal(i))?;
                    push!(v);
                }
                Instr::Store(i) => {
                    let v = pop!();
                    *locals.get_mut(i as usize).ok_or(VmError::BadLocal(i))? = v;
                }
                Instr::MemLoad => {
                    let addr = pop!();
                    let v = usize::try_from(addr)
                        .ok()
                        .and_then(|a| memory.get(a).copied())
                        .ok_or(VmError::BadAddress(addr))?;
                    push!(v);
                }
                Instr::MemStore => {
                    let value = pop!();
                    let addr = pop!();
                    let cell = usize::try_from(addr)
                        .ok()
                        .and_then(|a| memory.get_mut(a))
                        .ok_or(VmError::BadAddress(addr))?;
                    *cell = value;
                }
                Instr::HostCall { idx, argc } => {
                    // Gas-charge host calls more heavily: crossing the
                    // boundary is the expensive part.
                    gas += 9;
                    let argc = argc as usize;
                    if stack.len() < argc {
                        self.last_gas_used = gas;
                        return Err(VmError::StackUnderflow);
                    }
                    let split = stack.len() - argc;
                    let call_args: Vec<i64> = stack.split_off(split);
                    match host.call(idx, &call_args) {
                        Ok(v) => push!(v),
                        Err(m) => {
                            self.last_gas_used = gas;
                            return Err(if m.starts_with("no host function") {
                                VmError::UnknownHostFn(idx)
                            } else {
                                VmError::HostError(m)
                            });
                        }
                    }
                }
                Instr::Ret => {
                    self.last_gas_used = gas;
                    return stack.pop().ok_or(VmError::StackUnderflow);
                }
            }
        }
        self.last_gas_used = gas;
        Err(VmError::NoReturn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr::*;

    fn run(instrs: Vec<Instr>, args: &[i64]) -> Result<i64, VmError> {
        let p = Program::new(instrs).unwrap();
        Vm::new(VmLimits::default()).run(&p, args, &mut NullHost)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run(vec![Push(2), Push(3), Add, Ret], &[]), Ok(5));
        assert_eq!(run(vec![Push(10), Push(3), Sub, Ret], &[]), Ok(7));
        assert_eq!(run(vec![Push(6), Push(7), Mul, Ret], &[]), Ok(42));
        assert_eq!(run(vec![Push(7), Push(2), Div, Ret], &[]), Ok(3));
        assert_eq!(run(vec![Push(7), Push(2), Mod, Ret], &[]), Ok(1));
        assert_eq!(run(vec![Push(5), Neg, Ret], &[]), Ok(-5));
        assert_eq!(run(vec![Push(3), Push(9), Min, Ret], &[]), Ok(3));
        assert_eq!(run(vec![Push(3), Push(9), Max, Ret], &[]), Ok(9));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run(vec![Push(1), Push(1), Eq, Ret], &[]), Ok(1));
        assert_eq!(run(vec![Push(1), Push(2), Lt, Ret], &[]), Ok(1));
        assert_eq!(run(vec![Push(2), Push(1), Le, Ret], &[]), Ok(0));
        assert_eq!(run(vec![Push(1), Push(0), And, Ret], &[]), Ok(0));
        assert_eq!(run(vec![Push(1), Push(0), Or, Ret], &[]), Ok(1));
        assert_eq!(run(vec![Push(0), Not, Ret], &[]), Ok(1));
    }

    #[test]
    fn args_and_locals() {
        assert_eq!(run(vec![Arg(0), Arg(1), Add, Ret], &[40, 2]), Ok(42));
        assert_eq!(
            run(vec![Push(9), Store(3), Load(3), Dup, Add, Ret], &[]),
            Ok(18)
        );
        assert_eq!(run(vec![Arg(5), Ret], &[1]), Err(VmError::BadArg(5)));
    }

    #[test]
    fn memory_bounds_checked() {
        assert_eq!(
            run(
                vec![Push(0), Push(99), MemStore, Push(0), MemLoad, Ret],
                &[]
            ),
            Ok(99)
        );
        assert_eq!(
            run(vec![Push(-1), MemLoad, Ret], &[]),
            Err(VmError::BadAddress(-1))
        );
        assert_eq!(
            run(vec![Push(1 << 40), Push(0), MemStore, Push(0), Ret], &[]),
            Err(VmError::BadAddress(1 << 40))
        );
    }

    #[test]
    fn infinite_loop_traps_on_gas() {
        // 0: jmp 0.
        let p = Program::new(vec![Jmp(0)]).unwrap();
        let mut vm = Vm::new(VmLimits {
            max_gas: 1_000,
            ..Default::default()
        });
        assert_eq!(vm.run(&p, &[], &mut NullHost), Err(VmError::OutOfGas));
        assert!(vm.last_gas_used() >= 1_000);
    }

    #[test]
    fn stack_bomb_traps_on_overflow() {
        // 0: push 1; 1: jmp 0 — grows the stack forever.
        let p = Program::new(vec![Push(1), Jmp(0)]).unwrap();
        let mut vm = Vm::new(VmLimits {
            max_stack: 32,
            ..Default::default()
        });
        assert_eq!(vm.run(&p, &[], &mut NullHost), Err(VmError::StackOverflow));
    }

    #[test]
    fn underflow_trapped() {
        assert_eq!(run(vec![Add, Ret], &[]), Err(VmError::StackUnderflow));
        assert_eq!(run(vec![Ret], &[]), Err(VmError::StackUnderflow));
        assert_eq!(run(vec![Pop, Ret], &[]), Err(VmError::StackUnderflow));
    }

    #[test]
    fn divide_by_zero_trapped() {
        assert_eq!(
            run(vec![Push(1), Push(0), Div, Ret], &[]),
            Err(VmError::DivideByZero)
        );
        assert_eq!(
            run(vec![Push(1), Push(0), Mod, Ret], &[]),
            Err(VmError::DivideByZero)
        );
        // i64::MIN / -1 overflows; checked_div catches it.
        assert_eq!(
            run(vec![Push(i64::MIN), Push(-1), Div, Ret], &[]),
            Err(VmError::DivideByZero)
        );
    }

    #[test]
    fn no_return_trapped() {
        assert_eq!(run(vec![Push(1)], &[]), Err(VmError::NoReturn));
    }

    #[test]
    fn loops_compute() {
        // sum 1..=n with n = arg0:
        // local0 = acc, local1 = i.
        // 0: arg0; 1: store 1        (i = n)
        // 2: load 1; 3: jz 12        (while i != 0)
        // 4: load 0; 5: load 1; 6: add; 7: store 0   (acc += i)
        // 8: load 1; 9: push 1; 10: sub; 11: store 1 (i -= 1)
        // -> loop is missing a jump back; insert jmp 2 and shift.
        let p = Program::new(vec![
            Arg(0),   // 0
            Store(1), // 1
            Load(1),  // 2
            Jz(13),   // 3
            Load(0),  // 4
            Load(1),  // 5
            Add,      // 6
            Store(0), // 7
            Load(1),  // 8
            Push(1),  // 9
            Sub,      // 10
            Store(1), // 11
            Jmp(2),   // 12
            Load(0),  // 13
            Ret,      // 14
        ])
        .unwrap();
        let mut vm = Vm::new(VmLimits::default());
        assert_eq!(vm.run(&p, &[10], &mut NullHost), Ok(55));
        assert_eq!(vm.run(&p, &[0], &mut NullHost), Ok(0));
        assert_eq!(vm.run(&p, &[100], &mut NullHost), Ok(5050));
    }

    #[test]
    fn host_calls_work() {
        struct Doubler;
        impl Host for Doubler {
            fn call(&mut self, idx: u8, args: &[i64]) -> Result<i64, String> {
                match idx {
                    0 => Ok(args.iter().sum::<i64>() * 2),
                    _ => Err(format!("no host function {idx}")),
                }
            }
        }
        let p = Program::new(vec![Push(3), Push(4), HostCall { idx: 0, argc: 2 }, Ret]).unwrap();
        let mut vm = Vm::new(VmLimits::default());
        assert_eq!(vm.run(&p, &[], &mut Doubler), Ok(14));

        let bad = Program::new(vec![HostCall { idx: 9, argc: 0 }, Ret]).unwrap();
        assert_eq!(
            vm.run(&bad, &[], &mut Doubler),
            Err(VmError::UnknownHostFn(9))
        );
    }

    #[test]
    fn host_errors_propagate() {
        struct Failing;
        impl Host for Failing {
            fn call(&mut self, _idx: u8, _args: &[i64]) -> Result<i64, String> {
                Err("backend unavailable".to_string())
            }
        }
        let p = Program::new(vec![HostCall { idx: 0, argc: 0 }, Ret]).unwrap();
        let r = Vm::new(VmLimits::default()).run(&p, &[], &mut Failing);
        assert!(matches!(r, Err(VmError::HostError(m)) if m.contains("backend")));
    }

    #[test]
    fn runs_are_independent() {
        // Locals and memory must not leak between runs.
        let store = Program::new(vec![Push(0), Push(77), MemStore, Push(1), Ret]).unwrap();
        let load = Program::new(vec![Push(0), MemLoad, Ret]).unwrap();
        let mut vm = Vm::new(VmLimits::default());
        assert_eq!(vm.run(&store, &[], &mut NullHost), Ok(1));
        assert_eq!(
            vm.run(&load, &[], &mut NullHost),
            Ok(0),
            "fresh memory per run"
        );
    }

    #[test]
    fn gas_accounting_reported() {
        let p = Program::new(vec![Push(1), Push(2), Add, Ret]).unwrap();
        let mut vm = Vm::new(VmLimits::default());
        vm.run(&p, &[], &mut NullHost).unwrap();
        assert_eq!(vm.last_gas_used(), 4);
    }
}
