//! A small library of ready-made tenant policies, in assembly source.
//!
//! These are the "starter pack" a provider would document for tenants:
//! each returns a score for one placement candidate given the standard
//! argument layout the scheduler passes
//! (`arg 0` = free units, `arg 1` = device capacity, `arg 2` = device
//! rack, `arg 3` = preferred rack or −1, `arg 4` = demand).

use crate::asm::{assemble, AsmError};
use crate::isa::Program;

/// Best-fit: prefer the snuggest device (the provider default, expressed
/// as a tenant program).
pub const BEST_FIT: &str = "
    ; score = capacity - (free - demand)  (less leftover is better)
    arg 1
    arg 0
    arg 4
    sub
    sub
    ret
";

/// Worst-fit: prefer the emptiest device (noisy-neighbour avoidance).
pub const WORST_FIT: &str = "
    ; score = free - demand
    arg 0
    arg 4
    sub
    ret
";

/// Rack affinity: a large bonus for the hinted rack, best-fit otherwise.
pub const RACK_AFFINITY: &str = "
    ; if preferred < 0 { best-fit } else { bonus for matching rack }
        arg 3
        push 0
        lt
        jnz nopref
        arg 2
        arg 3
        eq
        push 100000
        mul             ; 100000 if rack matches, else 0
        arg 1
        arg 0
        arg 4
        sub
        sub
        add
        ret
    nopref:
        arg 1
        arg 0
        arg 4
        sub
        sub
        ret
";

/// Packing-phobic: veto any device that is already more than half full
/// (tail-latency isolation), best-fit among the rest.
pub const HALF_EMPTY_ONLY: &str = "
    ; if free * 2 < capacity { veto } else { best-fit }
        arg 0
        push 2
        mul
        arg 1
        lt
        jnz veto
        arg 1
        arg 0
        arg 4
        sub
        sub
        ret
    veto:
        push -1
        ret
";

/// Assembles one of the canned policies.
pub fn canned(source: &str) -> Result<Program, AsmError> {
    assemble(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{NullHost, Vm, VmLimits};

    fn score(
        src: &str,
        free: i64,
        cap: i64,
        rack: i64,
        pref: i64,
        demand: i64,
    ) -> Result<i64, crate::vm::VmError> {
        let p = canned(src).expect("canned policy assembles");
        Vm::new(VmLimits::default()).run(&p, &[free, cap, rack, pref, demand], &mut NullHost)
    }

    #[test]
    fn all_canned_policies_assemble() {
        for src in [BEST_FIT, WORST_FIT, RACK_AFFINITY, HALF_EMPTY_ONLY] {
            canned(src).unwrap();
        }
    }

    #[test]
    fn best_fit_prefers_snug() {
        let snug = score(BEST_FIT, 5, 64, 0, -1, 4).unwrap();
        let loose = score(BEST_FIT, 60, 64, 0, -1, 4).unwrap();
        assert!(snug > loose);
    }

    #[test]
    fn worst_fit_prefers_empty() {
        let snug = score(WORST_FIT, 5, 64, 0, -1, 4).unwrap();
        let loose = score(WORST_FIT, 60, 64, 0, -1, 4).unwrap();
        assert!(loose > snug);
    }

    #[test]
    fn rack_affinity_bonus() {
        let matching = score(RACK_AFFINITY, 32, 64, 3, 3, 4).unwrap();
        let elsewhere = score(RACK_AFFINITY, 32, 64, 5, 3, 4).unwrap();
        assert!(matching > elsewhere + 50_000);
        // With no preference it degrades to best-fit.
        let a = score(RACK_AFFINITY, 5, 64, 0, -1, 4).unwrap();
        let b = score(RACK_AFFINITY, 60, 64, 0, -1, 4).unwrap();
        assert!(a > b);
    }

    #[test]
    fn half_empty_only_vetoes_crowded() {
        let crowded = score(HALF_EMPTY_ONLY, 10, 64, 0, -1, 4).unwrap();
        assert!(crowded < 0, "crowded device vetoed (negative score)");
        let empty = score(HALF_EMPTY_ONLY, 60, 64, 0, -1, 4).unwrap();
        assert!(empty >= 0);
    }
}
