//! The extension-VM instruction set.
//!
//! A compact stack ISA over 64-bit signed integers. Control flow uses
//! absolute instruction indices (the assembler resolves labels). All
//! arithmetic is wrapping; division and modulo by zero are trapped
//! errors rather than panics.

use serde::{Deserialize, Serialize};

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Push an immediate.
    Push(i64),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two top stack slots.
    Swap,
    /// Push a copy of invocation argument `n` (trap if out of range).
    Arg(u8),

    /// Wrapping addition: `a b -- a+b`.
    Add,
    /// Wrapping subtraction: `a b -- a-b`.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on divide-by-zero and MIN/-1 overflow).
    Div,
    /// Signed remainder (same traps as Div).
    Mod,
    /// Arithmetic negation.
    Neg,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,

    /// Comparison: pushes 1 or 0.
    Eq,
    /// Not-equal comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical and (non-zero = true).
    And,
    /// Logical or.
    Or,
    /// Logical not.
    Not,

    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Jump if top of stack is zero (pops it).
    Jz(u32),
    /// Jump if top of stack is non-zero (pops it).
    Jnz(u32),

    /// Load local variable slot.
    Load(u8),
    /// Store top of stack into local slot (pops it).
    Store(u8),
    /// Load linear-memory cell at the address on the stack.
    MemLoad,
    /// Store value at address: `addr value --`.
    MemStore,

    /// Call host function `idx` with `argc` stack operands (popped,
    /// left-to-right order restored); pushes the i64 result.
    HostCall {
        /// Host function index.
        idx: u8,
        /// Number of arguments popped from the stack.
        argc: u8,
    },

    /// Stop with the top of stack as result.
    Ret,
}

/// A validated program: a bounded sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

/// Maximum instructions per program — extensions are policies, not
/// applications.
pub const MAX_PROGRAM_LEN: usize = 4096;

impl Program {
    /// Wraps instructions, validating program size and jump targets.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        if instrs.len() > MAX_PROGRAM_LEN {
            return Err(ProgramError::TooLong(instrs.len()));
        }
        let len = instrs.len() as u32;
        for (pc, i) in instrs.iter().enumerate() {
            if let Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) = i {
                if *t >= len {
                    return Err(ProgramError::BadJump { pc, target: *t });
                }
            }
        }
        Ok(Self { instrs })
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Program length.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false: construction rejects empty programs.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Static validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no instructions.
    Empty,
    /// The program exceeds [`MAX_PROGRAM_LEN`].
    TooLong(usize),
    /// A jump targets an out-of-range instruction index.
    BadJump {
        /// Instruction index of the jump.
        pc: usize,
        /// The invalid target.
        target: u32,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Empty => f.write_str("empty program"),
            ProgramError::TooLong(n) => write!(f, "program too long: {n} > {MAX_PROGRAM_LEN}"),
            ProgramError::BadJump { pc, target } => {
                write!(f, "instruction {pc} jumps to invalid target {target}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_oversized() {
        let instrs = vec![Instr::Push(0); MAX_PROGRAM_LEN + 1];
        assert!(matches!(
            Program::new(instrs),
            Err(ProgramError::TooLong(_))
        ));
    }

    #[test]
    fn rejects_bad_jump() {
        let p = Program::new(vec![Instr::Jmp(5), Instr::Ret]);
        assert!(matches!(p, Err(ProgramError::BadJump { pc: 0, target: 5 })));
    }

    #[test]
    fn accepts_valid() {
        let p = Program::new(vec![Instr::Push(1), Instr::Jz(0), Instr::Ret]).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let p = Program::new(vec![
            Instr::Push(42),
            Instr::HostCall { idx: 1, argc: 1 },
            Instr::Ret,
        ])
        .unwrap();
        let js = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&js).unwrap();
        assert_eq!(back, p);
    }
}
