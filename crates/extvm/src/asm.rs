//! A line-oriented assembler for extension programs.
//!
//! Syntax: one instruction per line; `;` or `#` starts a comment;
//! `label:` defines a jump target. Mnemonics are lower-case; immediates
//! are decimal (optionally negative).
//!
//! ```text
//! ; score = 100 - 2 * distance
//!     push 100
//!     arg 0
//!     push 2
//!     mul
//!     sub
//!     ret
//! ```

use crate::isa::{Instr, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Assembly errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic.
    UnknownInstr {
        /// Line number.
        line: usize,
        /// The offending word.
        word: String,
    },
    /// An operand failed to parse or was missing.
    BadOperand {
        /// Line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A jump references an undefined label.
    UnknownLabel {
        /// Line number.
        line: usize,
        /// The label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// Line number of the second definition.
        line: usize,
        /// The label.
        label: String,
    },
    /// The assembled program failed static validation.
    Invalid(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownInstr { line, word } => {
                write!(f, "line {line}: unknown instruction `{word}`")
            }
            AsmError::BadOperand { line, message } => write!(f, "line {line}: {message}"),
            AsmError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::Invalid(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for AsmError {}

enum PendingInstr {
    Done(Instr),
    Jump {
        kind: JumpKind,
        label: String,
        line: usize,
    },
}

enum JumpKind {
    Jmp,
    Jz,
    Jnz,
}

/// Assembles source text into a validated [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<PendingInstr> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Possibly several `label:` prefixes before an instruction.
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_string(), pending.len() as u32)
                .is_some()
            {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: label.to_string(),
                });
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut words = rest.split_whitespace();
        let mnemonic = words.next().expect("non-empty");
        let operand = words.next();
        if words.next().is_some() {
            return Err(AsmError::BadOperand {
                line,
                message: "too many operands".into(),
            });
        }

        let need_i64 = |op: Option<&str>| -> Result<i64, AsmError> {
            op.ok_or_else(|| AsmError::BadOperand {
                line,
                message: format!("`{mnemonic}` needs an operand"),
            })?
            .parse()
            .map_err(|_| AsmError::BadOperand {
                line,
                message: format!("bad integer operand for `{mnemonic}`"),
            })
        };
        let need_u8 = |op: Option<&str>| -> Result<u8, AsmError> {
            op.ok_or_else(|| AsmError::BadOperand {
                line,
                message: format!("`{mnemonic}` needs an operand"),
            })?
            .parse()
            .map_err(|_| AsmError::BadOperand {
                line,
                message: format!("bad index operand for `{mnemonic}`"),
            })
        };
        let need_label = |op: Option<&str>| -> Result<String, AsmError> {
            op.map(str::to_string).ok_or_else(|| AsmError::BadOperand {
                line,
                message: format!("`{mnemonic}` needs a label"),
            })
        };

        let instr = match mnemonic {
            "push" => PendingInstr::Done(Instr::Push(need_i64(operand)?)),
            "pop" => PendingInstr::Done(Instr::Pop),
            "dup" => PendingInstr::Done(Instr::Dup),
            "swap" => PendingInstr::Done(Instr::Swap),
            "arg" => PendingInstr::Done(Instr::Arg(need_u8(operand)?)),
            "add" => PendingInstr::Done(Instr::Add),
            "sub" => PendingInstr::Done(Instr::Sub),
            "mul" => PendingInstr::Done(Instr::Mul),
            "div" => PendingInstr::Done(Instr::Div),
            "mod" => PendingInstr::Done(Instr::Mod),
            "neg" => PendingInstr::Done(Instr::Neg),
            "min" => PendingInstr::Done(Instr::Min),
            "max" => PendingInstr::Done(Instr::Max),
            "eq" => PendingInstr::Done(Instr::Eq),
            "ne" => PendingInstr::Done(Instr::Ne),
            "lt" => PendingInstr::Done(Instr::Lt),
            "le" => PendingInstr::Done(Instr::Le),
            "gt" => PendingInstr::Done(Instr::Gt),
            "ge" => PendingInstr::Done(Instr::Ge),
            "and" => PendingInstr::Done(Instr::And),
            "or" => PendingInstr::Done(Instr::Or),
            "not" => PendingInstr::Done(Instr::Not),
            "jmp" => PendingInstr::Jump {
                kind: JumpKind::Jmp,
                label: need_label(operand)?,
                line,
            },
            "jz" => PendingInstr::Jump {
                kind: JumpKind::Jz,
                label: need_label(operand)?,
                line,
            },
            "jnz" => PendingInstr::Jump {
                kind: JumpKind::Jnz,
                label: need_label(operand)?,
                line,
            },
            "load" => PendingInstr::Done(Instr::Load(need_u8(operand)?)),
            "store" => PendingInstr::Done(Instr::Store(need_u8(operand)?)),
            "memload" => PendingInstr::Done(Instr::MemLoad),
            "memstore" => PendingInstr::Done(Instr::MemStore),
            "hostcall" => {
                // hostcall idx.argc, e.g. `hostcall 2.1`.
                let op = operand.ok_or_else(|| AsmError::BadOperand {
                    line,
                    message: "`hostcall` needs idx.argc".into(),
                })?;
                let (idx_s, argc_s) = op.split_once('.').ok_or_else(|| AsmError::BadOperand {
                    line,
                    message: "`hostcall` operand must be idx.argc".into(),
                })?;
                let idx: u8 = idx_s.parse().map_err(|_| AsmError::BadOperand {
                    line,
                    message: "bad hostcall index".into(),
                })?;
                let argc: u8 = argc_s.parse().map_err(|_| AsmError::BadOperand {
                    line,
                    message: "bad hostcall argc".into(),
                })?;
                PendingInstr::Done(Instr::HostCall { idx, argc })
            }
            "ret" => PendingInstr::Done(Instr::Ret),
            other => {
                return Err(AsmError::UnknownInstr {
                    line,
                    word: other.to_string(),
                })
            }
        };
        pending.push(instr);
    }

    let mut instrs = Vec::with_capacity(pending.len());
    for p in pending {
        match p {
            PendingInstr::Done(i) => instrs.push(i),
            PendingInstr::Jump { kind, label, line } => {
                let target = *labels.get(&label).ok_or(AsmError::UnknownLabel {
                    line,
                    label: label.clone(),
                })?;
                instrs.push(match kind {
                    JumpKind::Jmp => Instr::Jmp(target),
                    JumpKind::Jz => Instr::Jz(target),
                    JumpKind::Jnz => Instr::Jnz(target),
                });
            }
        }
    }
    Program::new(instrs).map_err(|e| AsmError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{NullHost, Vm, VmLimits};

    fn eval(src: &str, args: &[i64]) -> i64 {
        let p = assemble(src).unwrap();
        Vm::new(VmLimits::default())
            .run(&p, args, &mut NullHost)
            .unwrap()
    }

    #[test]
    fn simple_expression() {
        assert_eq!(eval("push 2\npush 3\nadd\nret", &[]), 5);
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "
            ; compute 6*7
            push 6   # six
            push 7
            mul
            ret
        ";
        assert_eq!(eval(src, &[]), 42);
    }

    #[test]
    fn labels_and_loops() {
        // sum 1..=n.
        let src = "
                arg 0
                store 1
            loop:
                load 1
                jz done
                load 0
                load 1
                add
                store 0
                load 1
                push 1
                sub
                store 1
                jmp loop
            done:
                load 0
                ret
        ";
        assert_eq!(eval(src, &[10]), 55);
    }

    #[test]
    fn forward_references_resolve() {
        let src = "
                arg 0
                jnz yes
                push 0
                ret
            yes:
                push 1
                ret
        ";
        assert_eq!(eval(src, &[5]), 1);
        assert_eq!(eval(src, &[0]), 0);
    }

    #[test]
    fn hostcall_syntax() {
        let p = assemble("push 1\npush 2\nhostcall 3.2\nret").unwrap();
        assert_eq!(p.instrs()[2], Instr::HostCall { idx: 3, argc: 2 });
    }

    #[test]
    fn unknown_instruction_reported_with_line() {
        let err = assemble("push 1\nfly\nret").unwrap_err();
        assert!(matches!(err, AsmError::UnknownInstr { line: 2, .. }));
    }

    #[test]
    fn unknown_label_reported() {
        let err = assemble("jmp nowhere\nret").unwrap_err();
        assert!(matches!(err, AsmError::UnknownLabel { .. }));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\npush 1\na:\nret").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { .. }));
    }

    #[test]
    fn missing_operand_rejected() {
        assert!(matches!(
            assemble("push\nret"),
            Err(AsmError::BadOperand { line: 1, .. })
        ));
        assert!(matches!(
            assemble("hostcall 3\nret"),
            Err(AsmError::BadOperand { .. })
        ));
    }

    #[test]
    fn empty_source_invalid() {
        assert!(matches!(assemble("; nothing"), Err(AsmError::Invalid(_))));
    }

    #[test]
    fn label_on_same_line_as_instr() {
        assert_eq!(eval("start: push 7\nret", &[]), 7);
    }
}
