//! # udc-baseline — today's provider-dictated clouds
//!
//! The comparison side of every UDC experiment: the paper's Fig. 1 shows
//! three incumbent schemes (local datacenter, VM/container IaaS/CaaS,
//! serverless FaaS). This crate models the cloud-side ones plus the
//! provider's engineering-cost structure:
//!
//! - [`catalog::Catalog`] — an EC2-like instance catalog (including the
//!   `p3.16xlarge` / `p3dn.24xlarge` shapes §1 names) with on-demand
//!   pricing; quantization to these shapes is where the "35 % paid but
//!   unused" waste comes from;
//! - [`iaas::IaasProvisioner`] — one instance per module (classic IaaS);
//! - [`iaas::CaasProvisioner`] — containers bin-packed onto a fleet
//!   (CaaS/Kubernetes-style);
//! - [`faas::FaasRuntime`] — serverless with fixed memory sizes,
//!   per-request pricing, **no GPUs** (§1: "no cloud provider has yet
//!   supported GPU in their serverless computing offerings");
//! - [`matrix::DevOpsMatrix`] — the "cloud DevOps matrix from hell":
//!   M services × N features integration cost versus UDC's decoupled
//!   M + N.

pub mod catalog;
pub mod faas;
pub mod iaas;
pub mod matrix;

pub use catalog::{Catalog, InstanceType};
pub use faas::{FaasOutcome, FaasRuntime, FaasSize};
pub use iaas::{CaasProvisioner, IaasOutcome, IaasProvisioner};
pub use matrix::{simulate_rollout as simulate_rollout_report, DevOpsMatrix, RolloutReport};
