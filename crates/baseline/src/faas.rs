//! Serverless (FaaS) baseline.
//!
//! Lambda-style: functions pick a memory size from a fixed ladder, CPU
//! scales with memory, billing is per-request plus GB-seconds — and
//! there are **no GPUs** (§1: event-triggered ML inference "could
//! benefit from serverless computing and GPU acceleration. Despite the
//! high demand ... no cloud provider has yet supported GPU in their
//! serverless computing offerings").

use serde::{Deserialize, Serialize};
use udc_spec::{ResourceKind, ResourceVector};

/// A FaaS memory size (the provider's fixed ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaasSize {
    /// Memory in MiB.
    pub memory_mib: u64,
    /// vCPU fraction ×1000 (Lambda allocates CPU proportional to
    /// memory: 1769 MiB = 1 vCPU).
    pub milli_vcpu: u64,
}

/// The FaaS runtime model.
#[derive(Debug, Clone)]
pub struct FaasRuntime {
    sizes: Vec<FaasSize>,
    /// Price per GB-second in micro-dollars (Lambda 2021:
    /// $0.0000166667/GB-s).
    pub micro_dollars_per_gb_s: f64,
    /// Price per million requests in micro-dollars ($0.20/M).
    pub micro_dollars_per_request: f64,
    /// Cold-start latency (sandboxed container class).
    pub cold_start_us: u64,
}

impl Default for FaasRuntime {
    fn default() -> Self {
        let ladder = [128u64, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192, 10240];
        Self {
            sizes: ladder
                .iter()
                .map(|&m| FaasSize {
                    memory_mib: m,
                    milli_vcpu: m * 1000 / 1769,
                })
                .collect(),
            micro_dollars_per_gb_s: 16.6667,
            micro_dollars_per_request: 0.2,
            cold_start_us: 400_000,
        }
    }
}

/// The outcome of running one module as a function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaasOutcome {
    /// The chosen memory size.
    pub size: FaasSize,
    /// Execution time per invocation (microseconds) — inflated when the
    /// module wanted a GPU it cannot have.
    pub exec_us: u64,
    /// Cost per invocation in micro-dollars.
    pub cost_per_invocation: f64,
    /// True when the module wanted an accelerator and had to run
    /// CPU-only.
    pub degraded: bool,
}

impl FaasRuntime {
    /// All ladder sizes.
    pub fn sizes(&self) -> &[FaasSize] {
        &self.sizes
    }

    /// Runs a module demanding `demand` with `work_units` of compute per
    /// invocation. GPU/FPGA demands are *degraded* to CPU execution at
    /// the accelerator-to-CPU speed ratio (25× slower for GPU work in
    /// the HAL profiles).
    ///
    /// Returns `None` when the demand's memory exceeds the ladder.
    pub fn run(&self, demand: &ResourceVector, work_units: u64) -> Option<FaasOutcome> {
        let mem_needed = demand.get(ResourceKind::Dram).max(128);
        let size = *self.sizes.iter().find(|s| s.memory_mib >= mem_needed)?;
        let wants_accel = demand.get(ResourceKind::Gpu) > 0 || demand.get(ResourceKind::Fpga) > 0;
        // CPU work rate: 100 wu/s per vCPU (matching HAL's CPU profile).
        let vcpus = size.milli_vcpu as f64 / 1000.0;
        let rate = 100.0 * vcpus.max(0.05);
        // Accelerator work on CPUs runs at the CPU's rate — i.e. 25×
        // slower than the GPU that was asked for.
        let exec_s = work_units as f64 / rate;
        let exec_us = (exec_s * 1_000_000.0).ceil() as u64;
        let gb = size.memory_mib as f64 / 1024.0;
        let cost = gb * exec_s * self.micro_dollars_per_gb_s + self.micro_dollars_per_request;
        Some(FaasOutcome {
            size,
            exec_us,
            cost_per_invocation: cost,
            degraded: wants_accel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(dram_mib: u64, gpu: u64) -> ResourceVector {
        let mut v = ResourceVector::new();
        v.set(ResourceKind::Dram, dram_mib);
        v.set(ResourceKind::Gpu, gpu);
        v
    }

    #[test]
    fn picks_smallest_fitting_size() {
        let f = FaasRuntime::default();
        let out = f.run(&demand(900, 0), 100).unwrap();
        assert_eq!(out.size.memory_mib, 1024);
        assert!(!out.degraded);
    }

    #[test]
    fn oversized_memory_unplaceable() {
        let f = FaasRuntime::default();
        assert!(f.run(&demand(20 * 1024, 0), 100).is_none());
    }

    #[test]
    fn gpu_demand_degraded_not_refused() {
        let f = FaasRuntime::default();
        let gpu_out = f.run(&demand(2048, 1), 10_000).unwrap();
        assert!(gpu_out.degraded);
        // The same work on a real GPU (2500 wu/s) would take 4 s; the
        // degraded CPU run is dramatically slower.
        let gpu_time_us = (10_000f64 / 2_500.0 * 1e6) as u64;
        assert!(
            gpu_out.exec_us > 10 * gpu_time_us,
            "{} vs {gpu_time_us}",
            gpu_out.exec_us
        );
    }

    #[test]
    fn cost_scales_with_memory_and_time() {
        let f = FaasRuntime::default();
        let small = f.run(&demand(128, 0), 1000).unwrap();
        let large = f.run(&demand(8192, 0), 1000).unwrap();
        // Bigger memory = more vCPU = faster, but the GB-s product still
        // differs; both must be positive.
        assert!(small.cost_per_invocation > 0.0);
        assert!(large.cost_per_invocation > 0.0);
        // More work costs more at the same size.
        let more_work = f.run(&demand(128, 0), 10_000).unwrap();
        assert!(more_work.cost_per_invocation > small.cost_per_invocation);
    }

    #[test]
    fn cpu_scales_with_memory() {
        let f = FaasRuntime::default();
        let sizes = f.sizes();
        for w in sizes.windows(2) {
            assert!(w[0].milli_vcpu <= w[1].milli_vcpu);
        }
        let small = f.run(&demand(128, 0), 10_000).unwrap();
        let large = f.run(&demand(10_000, 0), 10_000).unwrap();
        assert!(
            large.exec_us < small.exec_us,
            "more memory = more CPU = faster"
        );
    }
}
