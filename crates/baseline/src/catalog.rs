//! The EC2-like instance catalog.
//!
//! §1's motivating numbers come from shape quantization: "to use 8 GPUs
//! in a VM to run a big machine-learning workload, AWS users must select
//! an EC2 p3.16xlarge or p3dn.24xlarge instance, which come with 64 and
//! 96 vCPUs, respectively, even if they need only a small number of
//! vCPUs to run the GPU orchestration software." The catalog reproduces
//! those shapes and 2021-era on-demand prices (micro-dollars per hour).

use serde::{Deserialize, Serialize};
use udc_spec::{ResourceKind, ResourceVector};

/// One instance type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Name, e.g. `m5.xlarge`.
    pub name: &'static str,
    /// vCPUs.
    pub vcpus: u64,
    /// Memory in MiB.
    pub memory_mib: u64,
    /// GPUs.
    pub gpus: u64,
    /// Local storage in MiB.
    pub storage_mib: u64,
    /// On-demand price, micro-dollars per hour.
    pub hourly_micro_dollars: u64,
}

impl InstanceType {
    /// The instance's capacity as a resource vector.
    pub fn capacity(&self) -> ResourceVector {
        let mut v = ResourceVector::new()
            .with(ResourceKind::Cpu, self.vcpus)
            .with(ResourceKind::Dram, self.memory_mib);
        if self.gpus > 0 {
            v.set(ResourceKind::Gpu, self.gpus);
        }
        if self.storage_mib > 0 {
            v.set(ResourceKind::Ssd, self.storage_mib);
        }
        v
    }

    /// Whether this instance covers `demand` in every dimension the
    /// catalog models (CPU, DRAM, GPU, SSD).
    pub fn covers(&self, demand: &ResourceVector) -> bool {
        demand.get(ResourceKind::Cpu) <= self.vcpus
            && demand.get(ResourceKind::Dram) <= self.memory_mib
            && demand.get(ResourceKind::Gpu) <= self.gpus
            && demand.get(ResourceKind::Ssd) <= self.storage_mib
            // Kinds the catalog cannot provide at all.
            && demand.get(ResourceKind::Fpga) == 0
            && demand.get(ResourceKind::Nvm) == 0
            && demand.get(ResourceKind::Hdd) == 0
            && demand.get(ResourceKind::Soc) == 0
    }

    /// Paid-but-unused fraction when running `demand` on this instance:
    /// the price-weighted share of capacity the tenant pays for but does
    /// not use. Dimensions are weighted by their contribution to the
    /// instance price (approximated by the UDC unit-price profile).
    pub fn waste_fraction(&self, demand: &ResourceVector) -> f64 {
        let dims = [
            (ResourceKind::Cpu, self.vcpus, 40_000.0),
            (ResourceKind::Dram, self.memory_mib, 5.0),
            (ResourceKind::Gpu, self.gpus, 3_000_000.0),
            (ResourceKind::Ssd, self.storage_mib, 1.0),
        ];
        let mut paid = 0.0;
        let mut wasted = 0.0;
        for (kind, cap, unit_price) in dims {
            if cap == 0 {
                continue;
            }
            let value = cap as f64 * unit_price;
            let used = demand.get(kind).min(cap) as f64 * unit_price;
            paid += value;
            wasted += value - used;
        }
        if paid == 0.0 {
            0.0
        } else {
            wasted / paid
        }
    }
}

/// The catalog: a fixed set of provider-defined shapes.
#[derive(Debug, Clone)]
pub struct Catalog {
    types: Vec<InstanceType>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::aws_2021()
    }
}

impl Catalog {
    /// A 2021-era AWS-like on-demand catalog (us-east-1 prices).
    pub fn aws_2021() -> Self {
        let t = |name, vcpus, mem_gib: u64, gpus, storage_gib: u64, dollars_h: f64| InstanceType {
            name,
            vcpus,
            memory_mib: mem_gib * 1024,
            gpus,
            storage_mib: storage_gib * 1024,
            hourly_micro_dollars: (dollars_h * 1_000_000.0) as u64,
        };
        Self {
            types: vec![
                t("t3.medium", 2, 4, 0, 0, 0.0416),
                t("m5.large", 2, 8, 0, 0, 0.096),
                t("m5.xlarge", 4, 16, 0, 0, 0.192),
                t("m5.2xlarge", 8, 32, 0, 0, 0.384),
                t("m5.4xlarge", 16, 64, 0, 0, 0.768),
                t("m5.12xlarge", 48, 192, 0, 0, 2.304),
                t("m5.24xlarge", 96, 384, 0, 0, 4.608),
                t("c5.2xlarge", 8, 16, 0, 0, 0.34),
                t("r5.2xlarge", 8, 64, 0, 0, 0.504),
                t("i3.2xlarge", 8, 61, 0, 1900, 0.624),
                t("p3.2xlarge", 8, 61, 1, 0, 3.06),
                t("p3.8xlarge", 32, 244, 4, 0, 12.24),
                t("p3.16xlarge", 64, 488, 8, 0, 24.48),
                t("p3dn.24xlarge", 96, 768, 8, 1800, 31.212),
            ],
        }
    }

    /// All types.
    pub fn types(&self) -> &[InstanceType] {
        &self.types
    }

    /// The cheapest instance that covers `demand`, or `None` when no
    /// shape fits (the paper's "niche domain users are unable to run
    /// their workloads as desired").
    pub fn cheapest_fitting(&self, demand: &ResourceVector) -> Option<&InstanceType> {
        self.types
            .iter()
            .filter(|t| t.covers(demand))
            .min_by_key(|t| t.hourly_micro_dollars)
    }

    /// Looks up a type by name.
    pub fn by_name(&self, name: &str) -> Option<&InstanceType> {
        self.types.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: u64, dram_mib: u64, gpu: u64) -> ResourceVector {
        let mut v = ResourceVector::new();
        v.set(ResourceKind::Cpu, cpu);
        v.set(ResourceKind::Dram, dram_mib);
        v.set(ResourceKind::Gpu, gpu);
        v
    }

    #[test]
    fn papers_8_gpu_example() {
        // 8 GPUs + 4 vCPUs of orchestration: the only fitting shapes are
        // p3.16xlarge (64 vCPU) and p3dn.24xlarge (96 vCPU).
        let c = Catalog::aws_2021();
        let d = demand(4, 32 * 1024, 8);
        let chosen = c.cheapest_fitting(&d).unwrap();
        assert_eq!(chosen.name, "p3.16xlarge");
        // The tenant pays for 64 vCPUs but uses 4 — waste is large.
        let waste = chosen.waste_fraction(&d);
        assert!(waste > 0.1, "waste = {waste}");
    }

    #[test]
    fn small_demand_gets_small_instance() {
        let c = Catalog::aws_2021();
        let d = demand(2, 3 * 1024, 0);
        assert_eq!(c.cheapest_fitting(&d).unwrap().name, "t3.medium");
    }

    #[test]
    fn fpga_demand_unfittable() {
        // No catalog shape offers FPGAs: the niche-user problem.
        let c = Catalog::aws_2021();
        let mut d = demand(2, 1024, 0);
        d.set(ResourceKind::Fpga, 1);
        assert!(c.cheapest_fitting(&d).is_none());
    }

    #[test]
    fn oversized_demand_unfittable() {
        let c = Catalog::aws_2021();
        assert!(c.cheapest_fitting(&demand(200, 1024, 0)).is_none());
    }

    #[test]
    fn exact_fit_wastes_nothing() {
        let c = Catalog::aws_2021();
        let t = c.by_name("m5.xlarge").unwrap();
        let exact = demand(4, 16 * 1024, 0);
        assert!(t.waste_fraction(&exact) < 1e-9);
    }

    #[test]
    fn waste_decreases_with_utilization() {
        let c = Catalog::aws_2021();
        let t = c.by_name("m5.2xlarge").unwrap();
        let low = t.waste_fraction(&demand(1, 1024, 0));
        let high = t.waste_fraction(&demand(7, 28 * 1024, 0));
        assert!(low > high);
    }

    #[test]
    fn catalog_prices_monotone_in_family() {
        let c = Catalog::aws_2021();
        let m5: Vec<&InstanceType> = c
            .types()
            .iter()
            .filter(|t| t.name.starts_with("m5."))
            .collect();
        for w in m5.windows(2) {
            assert!(w[0].hourly_micro_dollars < w[1].hourly_micro_dollars);
        }
    }

    #[test]
    fn capacity_vector_round_trip() {
        let c = Catalog::aws_2021();
        let t = c.by_name("p3.2xlarge").unwrap();
        let cap = t.capacity();
        assert_eq!(cap.get(ResourceKind::Gpu), 1);
        assert_eq!(cap.get(ResourceKind::Cpu), 8);
        assert!(t.covers(&cap));
    }
}
