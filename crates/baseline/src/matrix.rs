//! The "cloud DevOps matrix from hell" (§1).
//!
//! "When there is new hardware to deploy or a security feature to add,
//! the cloud provider needs to integrate them into every single one of
//! its existing services. ... launching a new service dictates that the
//! service must be compatible with different types of hardware, system
//! software, and security features. ... Every time a change is about to
//! be made on the cloud, the provider must go through this matrix from
//! hell, incurring exceedingly high development costs and slowing down
//! the time to market."
//!
//! Model: the provider-dictated cloud pays `services × features`
//! integration cells; UDC decouples the layers (Design Principle 2), so
//! a new feature is integrated once and a new service composes existing
//! features: `services + features` cells. A bounded engineering capacity
//! turns cumulative cells into time-to-market.

use serde::{Deserialize, Serialize};

/// The integration-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevOpsMatrix {
    /// Current number of services (provider-dictated) or composable
    /// service templates (UDC).
    pub services: u32,
    /// Current number of hardware/software/security features.
    pub features: u32,
    /// Engineer-weeks to integrate one (service, feature) cell.
    pub weeks_per_cell: f64,
}

impl DevOpsMatrix {
    /// Creates a model at an initial scale.
    pub fn new(services: u32, features: u32) -> Self {
        Self {
            services,
            features,
            weeks_per_cell: 2.0,
        }
    }

    /// Integration cells to add one feature, provider-dictated: the
    /// feature touches every service.
    pub fn coupled_feature_cost(&self) -> u64 {
        self.services as u64
    }

    /// Integration cells to add one service, provider-dictated: the
    /// service must support every feature.
    pub fn coupled_service_cost(&self) -> u64 {
        self.features as u64
    }

    /// UDC: a feature integrates once into its (decoupled) layer.
    pub fn decoupled_feature_cost(&self) -> u64 {
        1
    }

    /// UDC: a service is a composition; one integration with the
    /// composable substrate.
    pub fn decoupled_service_cost(&self) -> u64 {
        1
    }

    /// Full-matrix size (the provider's standing compatibility surface).
    pub fn matrix_cells(&self) -> u64 {
        self.services as u64 * self.features as u64
    }
}

/// A multi-year rollout simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutReport {
    /// Year-by-year: (year, coupled cumulative cells, decoupled
    /// cumulative cells).
    pub by_year: Vec<(u32, u64, u64)>,
    /// Mean time-to-market for a feature in weeks, coupled.
    pub coupled_ttm_weeks: f64,
    /// Mean time-to-market for a feature in weeks, decoupled (UDC).
    pub decoupled_ttm_weeks: f64,
}

/// Simulates `years` of evolution: each year the provider adds
/// `services_per_year` services and `features_per_year` features, with
/// `eng_capacity_cells_per_week` of integration throughput. Queueing
/// beyond capacity delays time-to-market.
pub fn simulate_rollout(
    mut matrix: DevOpsMatrix,
    years: u32,
    services_per_year: u32,
    features_per_year: u32,
    eng_capacity_cells_per_week: f64,
) -> RolloutReport {
    let mut by_year = Vec::new();
    let (mut coupled_total, mut decoupled_total) = (0u64, 0u64);
    let mut coupled_ttm = Vec::new();
    let mut decoupled_ttm = Vec::new();
    let mut coupled_backlog = 0.0f64;
    let mut decoupled_backlog = 0.0f64;
    let weeks_per_year = 52.0;

    for year in 1..=years {
        for _ in 0..features_per_year {
            let c = matrix.coupled_feature_cost();
            let d = matrix.decoupled_feature_cost();
            coupled_total += c;
            decoupled_total += d;
            coupled_backlog += c as f64 * matrix.weeks_per_cell;
            decoupled_backlog += d as f64 * matrix.weeks_per_cell;
            // Time to market = backlog / capacity at enqueue time.
            coupled_ttm.push(coupled_backlog / eng_capacity_cells_per_week);
            decoupled_ttm.push(decoupled_backlog / eng_capacity_cells_per_week);
            matrix.features += 1;
        }
        for _ in 0..services_per_year {
            let c = matrix.coupled_service_cost();
            let d = matrix.decoupled_service_cost();
            coupled_total += c;
            decoupled_total += d;
            coupled_backlog += c as f64 * matrix.weeks_per_cell;
            decoupled_backlog += d as f64 * matrix.weeks_per_cell;
            matrix.services += 1;
        }
        // Capacity drains backlog over the year.
        let drain = eng_capacity_cells_per_week * weeks_per_year;
        coupled_backlog = (coupled_backlog - drain).max(0.0);
        decoupled_backlog = (decoupled_backlog - drain).max(0.0);
        by_year.push((year, coupled_total, decoupled_total));
    }

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    RolloutReport {
        by_year,
        coupled_ttm_weeks: mean(&coupled_ttm),
        decoupled_ttm_weeks: mean(&decoupled_ttm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_costs_scale_with_matrix() {
        let m = DevOpsMatrix::new(200, 40);
        assert_eq!(m.coupled_feature_cost(), 200);
        assert_eq!(m.coupled_service_cost(), 40);
        assert_eq!(m.decoupled_feature_cost(), 1);
        assert_eq!(m.matrix_cells(), 8000);
    }

    #[test]
    fn rollout_gap_grows_superlinearly() {
        let report = simulate_rollout(DevOpsMatrix::new(50, 10), 5, 20, 8, 100.0);
        let (_, c1, d1) = report.by_year[0];
        let (_, c5, d5) = report.by_year[4];
        let early_ratio = c1 as f64 / d1 as f64;
        let late_ratio = c5 as f64 / d5 as f64;
        assert!(late_ratio > early_ratio, "{early_ratio} vs {late_ratio}");
        assert!(
            late_ratio > 10.0,
            "matrix-from-hell is order(s) of magnitude"
        );
    }

    #[test]
    fn decoupled_ttm_faster() {
        let report = simulate_rollout(DevOpsMatrix::new(100, 20), 5, 10, 10, 50.0);
        assert!(report.decoupled_ttm_weeks < report.coupled_ttm_weeks);
    }

    #[test]
    fn cumulative_totals_monotone() {
        let report = simulate_rollout(DevOpsMatrix::new(10, 5), 6, 5, 5, 100.0);
        for w in report.by_year.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
    }

    #[test]
    fn zero_years_empty_report() {
        let report = simulate_rollout(DevOpsMatrix::new(10, 5), 0, 5, 5, 100.0);
        assert!(report.by_year.is_empty());
        assert_eq!(report.coupled_ttm_weeks, 0.0);
    }
}
