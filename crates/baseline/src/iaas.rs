//! IaaS and CaaS provisioning against the instance catalog.

use crate::catalog::{Catalog, InstanceType};
use serde::{Deserialize, Serialize};
use udc_sched::{PackAlgo, ServerCluster, ServerShape};
use udc_spec::ResourceVector;

/// The outcome of provisioning a workload the IaaS/CaaS way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IaasOutcome {
    /// Instances launched (name, count).
    pub instances: Vec<(String, usize)>,
    /// Total hourly cost in micro-dollars.
    pub hourly_cost: u64,
    /// Demands no catalog shape could satisfy.
    pub unplaceable: usize,
    /// Mean paid-but-unused fraction across placed demands.
    pub mean_waste: f64,
}

/// Classic IaaS: one instance per module demand, smallest shape that
/// covers it.
#[derive(Debug, Clone, Default)]
pub struct IaasProvisioner {
    catalog: Catalog,
}

impl IaasProvisioner {
    /// Uses the default 2021 catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// With a custom catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// Provisions every demand on its own instance.
    pub fn provision(&self, demands: &[ResourceVector]) -> IaasOutcome {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        let mut hourly_cost = 0u64;
        let mut unplaceable = 0usize;
        let mut waste_sum = 0.0;
        let mut placed = 0usize;
        for d in demands {
            match self.catalog.cheapest_fitting(d) {
                Some(t) => {
                    *counts.entry(t.name).or_insert(0) += 1;
                    hourly_cost += t.hourly_micro_dollars;
                    waste_sum += t.waste_fraction(d);
                    placed += 1;
                }
                None => unplaceable += 1,
            }
        }
        IaasOutcome {
            instances: counts
                .into_iter()
                .map(|(n, c)| (n.to_string(), c))
                .collect(),
            hourly_cost,
            unplaceable,
            mean_waste: if placed == 0 {
                0.0
            } else {
                waste_sum / placed as f64
            },
        }
    }
}

/// CaaS: containers bin-packed onto a homogeneous fleet of one instance
/// type (the Kubernetes node-group pattern). Better packing than IaaS,
/// but still bounded by the node shape.
#[derive(Debug, Clone)]
pub struct CaasProvisioner {
    node_type: InstanceType,
}

impl CaasProvisioner {
    /// Uses `node_type` as the cluster's node shape.
    pub fn new(node_type: InstanceType) -> Self {
        Self { node_type }
    }

    /// Packs the demands, returning (nodes used, hourly cost,
    /// unplaceable count, mean node utilization).
    pub fn provision(&self, demands: &[ResourceVector]) -> IaasOutcome {
        let shape = ServerShape {
            capacity: self.node_type.capacity(),
        };
        let mut cluster = ServerCluster::new(shape);
        let outcome = cluster.pack_all(demands, PackAlgo::FirstFitDecreasing);
        let hourly_cost = self.node_type.hourly_micro_dollars * outcome.servers_used as u64;
        IaasOutcome {
            instances: vec![(self.node_type.name.to_string(), outcome.servers_used)],
            hourly_cost,
            unplaceable: outcome.unplaceable,
            mean_waste: 1.0 - outcome.mean_utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::ResourceKind;

    fn demand(cpu: u64, dram_mib: u64) -> ResourceVector {
        ResourceVector::new()
            .with(ResourceKind::Cpu, cpu)
            .with(ResourceKind::Dram, dram_mib)
    }

    #[test]
    fn iaas_one_instance_per_demand() {
        let p = IaasProvisioner::new();
        let out = p.provision(&[demand(2, 4096), demand(2, 4096), demand(16, 65536)]);
        let total: usize = out.instances.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
        assert_eq!(out.unplaceable, 0);
        assert!(out.hourly_cost > 0);
    }

    #[test]
    fn iaas_waste_positive_for_odd_shapes() {
        let p = IaasProvisioner::new();
        // 3 vCPU / 5 GiB fits nothing exactly.
        let out = p.provision(&[demand(3, 5 * 1024)]);
        assert!(out.mean_waste > 0.2, "{}", out.mean_waste);
    }

    #[test]
    fn iaas_counts_unplaceable() {
        let p = IaasProvisioner::new();
        let mut d = demand(2, 1024);
        d.set(ResourceKind::Soc, 1);
        let out = p.provision(&[d]);
        assert_eq!(out.unplaceable, 1);
        assert_eq!(out.hourly_cost, 0);
    }

    #[test]
    fn caas_packs_denser_than_iaas() {
        let iaas = IaasProvisioner::new();
        let caas = CaasProvisioner::new(Catalog::aws_2021().by_name("m5.4xlarge").unwrap().clone());
        // 16 small containers.
        let demands: Vec<ResourceVector> = (0..16).map(|_| demand(1, 2048)).collect();
        let iaas_out = iaas.provision(&demands);
        let caas_out = caas.provision(&demands);
        let caas_nodes: usize = caas_out.instances.iter().map(|(_, c)| c).sum();
        assert!(caas_nodes < 16, "CaaS shares nodes: {caas_nodes}");
        assert!(caas_out.hourly_cost < iaas_out.hourly_cost * 2);
    }

    #[test]
    fn caas_unplaceable_when_bigger_than_node() {
        let caas = CaasProvisioner::new(Catalog::aws_2021().by_name("m5.large").unwrap().clone());
        let out = caas.provision(&[demand(8, 1024)]);
        assert_eq!(out.unplaceable, 1);
    }
}
