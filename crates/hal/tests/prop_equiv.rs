//! Observable-equivalence proof for the indexed allocator: the seed's
//! linear scan/sort allocator (`LinearPool`, kept verbatim) and the
//! indexed `ResourcePool` run side by side over random
//! allocate/release/fail/repair traces with every constraint knob in
//! play. At every step they must return the *same* results — identical
//! slices, identical errors, identical `available_for` answers, and
//! identical accounting — so the index is a pure speedup, never a
//! behavior change.

use proptest::prelude::*;
use udc_hal::linear::LinearPool;
use udc_hal::pool::AllocConstraints;
use udc_hal::{Device, DeviceId, ResourcePool};
use udc_spec::ResourceKind;

const DEVICES: u32 = 12;
const TENANTS: [&str; 3] = ["acme", "globex", "initech"];

/// Builds the identical device set in both implementations: varied
/// capacities so the worst-fit order is nontrivial, spread over racks.
fn twin_pools() -> (LinearPool, ResourcePool) {
    let mut linear = LinearPool::new(ResourceKind::Cpu);
    let mut indexed = ResourcePool::new(ResourceKind::Cpu);
    for i in 0..DEVICES {
        let d = Device::new(
            DeviceId(i),
            ResourceKind::Cpu,
            4 + (i as u64 * 7) % 17,
            i % 3,
        );
        linear.add_device(d.clone());
        indexed.add_device(d);
    }
    (linear, indexed)
}

/// One generated step of the trace, decoded from tuple inputs.
#[derive(Debug)]
enum Op {
    Allocate {
        tenant: &'static str,
        units: u64,
        constraints: AllocConstraints,
    },
    ReleaseOldest,
    ToggleDevice(DeviceId),
}

#[allow(clippy::too_many_arguments)]
fn decode(
    op: u8,
    units: u64,
    dev: u32,
    tenant: u8,
    exclusive: bool,
    single: bool,
    rack: Option<u32>,
    avoid_mask: u16,
) -> Op {
    match op {
        0 | 1 => Op::Allocate {
            tenant: TENANTS[tenant as usize % TENANTS.len()],
            units,
            constraints: AllocConstraints {
                exclusive,
                single_device: single,
                prefer_rack: rack,
                // Derived (not an extra tuple slot): occasionally pin,
                // so the require_device error paths get traffic too.
                require_device: units.is_multiple_of(5).then_some(DeviceId(dev % DEVICES)),
                avoid: (0..DEVICES)
                    .filter(|i| avoid_mask & (1 << (i % 16)) != 0)
                    .map(DeviceId)
                    .collect(),
            },
        },
        2 => Op::ReleaseOldest,
        _ => Op::ToggleDevice(DeviceId(dev % DEVICES)),
    }
}

proptest! {
    /// Every step of every trace is observably identical between the
    /// seed allocator and the indexed one.
    #[test]
    fn indexed_pool_matches_seed_allocator(
        steps in prop::collection::vec(
            (
                0u8..4,
                1u64..24,
                0u32..DEVICES,
                0u8..3,
                any::<bool>(),
                any::<bool>(),
                prop_oneof![Just(None), Just(Some(0u32)), Just(Some(2u32))],
                0u16..64,
            ),
            1..80,
        ),
    ) {
        let (mut linear, mut indexed) = twin_pools();
        let mut held = Vec::new();
        for (op, units, dev, tenant, exclusive, single, rack, avoid_mask) in steps {
            match decode(op, units, dev, tenant, exclusive, single, rack, avoid_mask) {
                Op::Allocate { tenant, units, constraints } => {
                    // The headline answer: same slices or same error.
                    let a = linear.allocate(tenant, units, &constraints);
                    let b = indexed.allocate(tenant, units, &constraints);
                    prop_assert_eq!(&a, &b, "allocate diverged");
                    // And the advisory answer agrees for every tenant.
                    for t in TENANTS {
                        prop_assert_eq!(
                            linear.available_for(t, &constraints),
                            indexed.available_for(t, &constraints),
                            "available_for diverged"
                        );
                    }
                    if let Ok(alloc) = a {
                        held.push(alloc);
                    }
                }
                Op::ReleaseOldest => {
                    if !held.is_empty() {
                        let alloc = held.remove(0);
                        linear.release(&alloc);
                        indexed.release(&alloc);
                    }
                }
                Op::ToggleDevice(id) => {
                    let failed = indexed.device(id).unwrap().state
                        == udc_hal::DeviceState::Failed;
                    {
                        let mut d = indexed.device_mut(id).unwrap();
                        if failed { d.repair() } else { let _ = d.fail(); }
                    }
                    let d = linear.device_mut(id).unwrap();
                    if failed { d.repair() } else { let _ = d.fail(); }
                }
            }
            // Accounting is identical after every step.
            prop_assert_eq!(linear.total_capacity(), indexed.total_capacity());
            prop_assert_eq!(linear.total_used(), indexed.total_used());
            prop_assert_eq!(linear.utilization(), indexed.utilization());
        }
        // Draining everything leaves both pristine.
        for alloc in &held {
            linear.release(alloc);
            indexed.release(alloc);
        }
        prop_assert_eq!(linear.total_used(), 0);
        prop_assert_eq!(indexed.total_used(), 0);
    }
}
