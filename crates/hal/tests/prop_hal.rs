//! Property-based tests for the hardware substrate: the allocator never
//! over-commits, release restores capacity exactly, and exclusive
//! placements never share devices.

use proptest::prelude::*;
use udc_hal::pool::AllocConstraints;
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_spec::{ResourceKind, ResourceVector};

fn dc(cpu_devices: usize, cap: u64) -> Datacenter {
    Datacenter::new(DatacenterConfig {
        pools: vec![PoolConfig {
            kind: ResourceKind::Cpu,
            devices: cpu_devices,
            capacity_per_device: cap,
        }],
        racks: 4,
        fabric: FabricConfig::default(),
    })
}

proptest! {
    /// Whatever sequence of allocations and releases happens, no device
    /// ever exceeds its capacity and pool accounting stays consistent.
    #[test]
    fn allocator_never_overcommits(
        requests in prop::collection::vec((1u64..40, any::<bool>()), 1..60),
    ) {
        let mut dc = dc(4, 16);
        let total_cap = 4 * 16u64;
        let mut held = Vec::new();
        for (i, (units, release_oldest)) in requests.into_iter().enumerate() {
            let tenant = format!("t{}", i % 3);
            let demand = ResourceVector::new().with(ResourceKind::Cpu, units);
            if let Ok(allocs) = dc.allocate_vector(&tenant, &demand, &AllocConstraints::default()) {
                held.extend(allocs);
            }
            if release_oldest && !held.is_empty() {
                let a = held.remove(0);
                dc.release(&a);
            }
            let pool = dc.pool(ResourceKind::Cpu).unwrap();
            prop_assert!(pool.total_used() <= total_cap);
            let held_sum: u64 = held.iter().map(|a| a.total_units()).sum();
            prop_assert_eq!(pool.total_used(), held_sum, "accounting must match held slices");
            for d in pool.devices() {
                prop_assert!(d.used() <= d.capacity);
            }
        }
        // Releasing everything restores a pristine pool.
        for a in &held {
            dc.release(a);
        }
        prop_assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().total_used(), 0);
    }

    /// Exclusive allocations never share a device with another tenant.
    #[test]
    fn exclusive_never_shared(
        plan in prop::collection::vec((1u64..8, any::<bool>()), 1..40),
    ) {
        let mut dc = dc(6, 8);
        let mut held = Vec::new();
        for (i, (units, exclusive)) in plan.into_iter().enumerate() {
            let tenant = format!("t{i}");
            let demand = ResourceVector::new().with(ResourceKind::Cpu, units);
            let constraints = AllocConstraints { exclusive, ..Default::default() };
            if let Ok(allocs) = dc.allocate_vector(&tenant, &demand, &constraints) {
                held.extend(allocs);
            }
        }
        let pool = dc.pool(ResourceKind::Cpu).unwrap();
        for d in pool.devices() {
            if d.is_exclusive() {
                prop_assert!(d.tenants().count() <= 1, "exclusive device shared");
            }
        }
    }

    /// allocate_vector is all-or-nothing: on error, usage is unchanged.
    #[test]
    fn vector_alloc_atomic(cpu in 1u64..200, gpu in 1u64..200) {
        let mut dc = Datacenter::new(DatacenterConfig {
            pools: vec![
                PoolConfig { kind: ResourceKind::Cpu, devices: 2, capacity_per_device: 32 },
                PoolConfig { kind: ResourceKind::Gpu, devices: 1, capacity_per_device: 8 },
            ],
            racks: 4,
            fabric: FabricConfig::default(),
        });
        let before_cpu = dc.pool(ResourceKind::Cpu).unwrap().total_used();
        let before_gpu = dc.pool(ResourceKind::Gpu).unwrap().total_used();
        let demand = ResourceVector::new()
            .with(ResourceKind::Cpu, cpu)
            .with(ResourceKind::Gpu, gpu);
        let res = dc.allocate_vector("t", &demand, &AllocConstraints::default());
        let after_cpu = dc.pool(ResourceKind::Cpu).unwrap().total_used();
        let after_gpu = dc.pool(ResourceKind::Gpu).unwrap().total_used();
        match res {
            Ok(_) => {
                prop_assert_eq!(after_cpu - before_cpu, cpu);
                prop_assert_eq!(after_gpu - before_gpu, gpu);
            }
            Err(_) => {
                prop_assert_eq!(after_cpu, before_cpu);
                prop_assert_eq!(after_gpu, before_gpu);
            }
        }
    }

    /// Fabric transfers: time is monotone in payload size and cross-rack
    /// never beats intra-rack for the same payload.
    #[test]
    fn fabric_monotone(bytes_a in 0u64..1_000_000, bytes_b in 0u64..1_000_000) {
        let dc = Datacenter::new(DatacenterConfig {
            pools: vec![PoolConfig { kind: ResourceKind::Cpu, devices: 8, capacity_per_device: 4 }],
            racks: 4,
            fabric: FabricConfig::default(),
        });
        let f = dc.fabric();
        use udc_hal::DeviceId;
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let intra_small = f.transfer_us(DeviceId(0), DeviceId(1), small);
        let intra_large = f.transfer_us(DeviceId(0), DeviceId(1), large);
        prop_assert!(intra_small <= intra_large);
        let cross = f.transfer_us(DeviceId(0), DeviceId(5), small);
        prop_assert!(cross >= intra_small);
    }
}
