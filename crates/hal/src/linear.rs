//! The seed linear-scan allocator, retained verbatim as a reference
//! implementation.
//!
//! [`LinearPool`] is the pre-index `ResourcePool` algorithm: every
//! `allocate` collects and sorts all devices, every `available_for` and
//! `total_*` walks the whole map. It exists so the indexed fast path in
//! [`crate::pool::ResourcePool`] can be *proven* observably identical —
//! the equivalence property tests in `tests/prop_equiv.rs` drive both
//! over random traces — and so `bench_control_plane` can measure the
//! speedup against the real before-code rather than a strawman.
//!
//! Not part of the supported API surface; use [`crate::pool`].

use crate::device::{Device, DeviceId, DeviceState};
use crate::pool::{AllocConstraints, AllocError, Allocation, Slice};
use std::collections::BTreeMap;
use udc_spec::ResourceKind;

/// The seed `ResourcePool`: same observable behavior, linear scans.
#[derive(Debug, Clone)]
pub struct LinearPool {
    kind: ResourceKind,
    devices: BTreeMap<DeviceId, Device>,
}

impl LinearPool {
    /// Creates an empty pool for `kind`.
    pub fn new(kind: ResourceKind) -> Self {
        Self {
            kind,
            devices: BTreeMap::new(),
        }
    }

    /// Adds a device (panics on kind mismatch or duplicate id, like the
    /// indexed pool).
    pub fn add_device(&mut self, device: Device) {
        assert_eq!(device.kind, self.kind, "device kind must match pool kind");
        let prev = self.devices.insert(device.id, device);
        assert!(prev.is_none(), "duplicate device id in pool");
    }

    /// Total capacity of healthy devices.
    pub fn total_capacity(&self) -> u64 {
        self.devices
            .values()
            .filter(|d| d.state == DeviceState::Healthy)
            .map(|d| d.capacity)
            .sum()
    }

    /// Units currently allocated across healthy devices.
    pub fn total_used(&self) -> u64 {
        self.devices
            .values()
            .filter(|d| d.state == DeviceState::Healthy)
            .map(|d| d.used())
            .sum()
    }

    /// Utilization in \[0, 1\] (0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            0.0
        } else {
            self.total_used() as f64 / cap as f64
        }
    }

    /// Units free for `tenant` under `constraints`.
    pub fn available_for(&self, tenant: &str, constraints: &AllocConstraints) -> u64 {
        if constraints.exclusive || constraints.single_device {
            self.devices
                .values()
                .filter(|d| !constraints.exclusive || d.vacant_except(tenant))
                .map(|d| d.free_for(tenant))
                .max()
                .unwrap_or(0)
        } else {
            self.devices.values().map(|d| d.free_for(tenant)).sum()
        }
    }

    /// Allocates exactly `units` for `tenant` — the seed scan-and-sort.
    pub fn allocate(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        if units == 0 {
            return Err(AllocError::ZeroRequest);
        }
        if constraints.exclusive
            || constraints.single_device
            || constraints.require_device.is_some()
        {
            return self.allocate_single_device(tenant, units, constraints);
        }

        // Plan first (immutable), commit after: never leave a partial
        // allocation behind.
        let mut remaining = units;
        let mut plan: Vec<(DeviceId, u64)> = Vec::new();
        let mut candidates: Vec<&Device> = self
            .devices
            .values()
            .filter(|d| d.free_for(tenant) > 0 && !constraints.avoid.contains(&d.id))
            .collect();
        // Preferred rack first, then largest free first (fewest slices).
        candidates.sort_by_key(|d| {
            let rack_penalty = match constraints.prefer_rack {
                Some(r) if d.rack == r => 0u8,
                Some(_) => 1,
                None => 0,
            };
            (rack_penalty, std::cmp::Reverse(d.free_for(tenant)), d.id)
        });
        for d in candidates {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(d.free_for(tenant));
            if take > 0 {
                plan.push((d.id, take));
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(AllocError::Insufficient {
                kind: self.kind,
                requested: units,
                available: units - remaining,
            });
        }
        let mut slices = Vec::with_capacity(plan.len());
        for (id, take) in plan {
            let d = self.devices.get_mut(&id).expect("planned device exists");
            let ok = d.allocate(tenant, take, false);
            debug_assert!(ok, "planned allocation must succeed");
            slices.push(Slice {
                device: id,
                units: take,
                exclusive: false,
            });
        }
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices,
        })
    }

    fn allocate_single_device(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        // Best-fit: the smallest device slot that satisfies the request,
        // preferring the requested rack.
        let mut best: Option<(u8, u64, DeviceId)> = None;
        for d in self.devices.values() {
            if let Some(req) = constraints.require_device {
                if d.id != req {
                    continue;
                }
            }
            if constraints.avoid.contains(&d.id) {
                continue;
            }
            if constraints.exclusive && !d.vacant_except(tenant) {
                continue;
            }
            let free = d.free_for(tenant);
            if free < units {
                continue;
            }
            let rack_penalty = match constraints.prefer_rack {
                Some(r) if d.rack == r => 0u8,
                Some(_) => 1,
                None => 0,
            };
            let key = (rack_penalty, free, d.id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, id)) = best else {
            return Err(if constraints.exclusive {
                AllocError::NoExclusiveDevice {
                    kind: self.kind,
                    requested: units,
                }
            } else {
                AllocError::Insufficient {
                    kind: self.kind,
                    requested: units,
                    available: self.available_for(tenant, constraints),
                }
            });
        };
        let d = self.devices.get_mut(&id).expect("chosen device exists");
        let ok = d.allocate(tenant, units, constraints.exclusive);
        debug_assert!(ok, "chosen device must accept the allocation");
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices: vec![Slice {
                device: id,
                units,
                exclusive: constraints.exclusive,
            }],
        })
    }

    /// Releases an allocation (idempotent per slice; unknown devices are
    /// ignored).
    pub fn release(&mut self, alloc: &Allocation) {
        for s in &alloc.slices {
            if let Some(d) = self.devices.get_mut(&s.device) {
                d.release(&alloc.tenant, s.units);
            }
        }
    }

    /// Mutable access to a device (failure injection in traces).
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(&id)
    }

    /// Iterates devices in id order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }
}
