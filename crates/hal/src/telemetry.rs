//! Runtime telemetry (§3.2).
//!
//! "UDC would perform fine tuning (enlarging or shrinking the amount of
//! resources for a module, migrating modules across hardware units,
//! etc.) based on telemetry data collected at the run time." This module
//! is that data plane: named counters, utilization samples per module,
//! and an exponentially-weighted usage estimator the fine-tuning
//! controller in `udc-sched` consumes.

use crate::clock::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One utilization observation for a module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Virtual time of the sample.
    pub at_us: Micros,
    /// Fraction of the module's *allocated* resources actually used,
    /// in [0, +inf) — above 1.0 means the allocation is saturated and
    /// the module is starved.
    pub used_fraction: f64,
}

/// EWMA smoothing factor for usage estimation.
const EWMA_ALPHA: f64 = 0.3;

/// Per-module usage estimator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageEstimator {
    samples: Vec<UtilizationSample>,
    ewma: Option<f64>,
}

impl UsageEstimator {
    /// Records a sample and updates the EWMA.
    pub fn record(&mut self, sample: UtilizationSample) {
        self.ewma = Some(match self.ewma {
            None => sample.used_fraction,
            Some(prev) => EWMA_ALPHA * sample.used_fraction + (1.0 - EWMA_ALPHA) * prev,
        });
        self.samples.push(sample);
    }

    /// Smoothed usage estimate (None before any sample).
    pub fn estimate(&self) -> Option<f64> {
        self.ewma
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples (oldest first).
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }
}

/// The datacenter-wide telemetry sink.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Telemetry {
    counters: BTreeMap<String, u64>,
    usage: BTreeMap<String, UsageEstimator>,
}

impl Telemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a named counter by `delta`.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a utilization sample for `module`.
    pub fn sample_usage(&mut self, module: &str, at_us: Micros, used_fraction: f64) {
        self.usage
            .entry(module.to_string())
            .or_default()
            .record(UtilizationSample {
                at_us,
                used_fraction,
            });
    }

    /// Smoothed usage estimate for `module`.
    pub fn usage_estimate(&self, module: &str) -> Option<f64> {
        self.usage.get(module).and_then(|e| e.estimate())
    }

    /// Full estimator for `module` (for tests and reports).
    pub fn estimator(&self, module: &str) -> Option<&UsageEstimator> {
        self.usage.get(module)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Telemetry::new();
        t.incr("placements", 1);
        t.incr("placements", 2);
        assert_eq!(t.counter("placements"), 3);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn ewma_converges_toward_signal() {
        let mut e = UsageEstimator::default();
        for i in 0..50 {
            e.record(UtilizationSample {
                at_us: i,
                used_fraction: 0.8,
            });
        }
        let est = e.estimate().unwrap();
        assert!((est - 0.8).abs() < 1e-6, "{est}");
    }

    #[test]
    fn ewma_smooths_noise() {
        let mut e = UsageEstimator::default();
        // Alternating 0.0 / 1.0 should estimate near 0.5, not the last value.
        for i in 0..100 {
            e.record(UtilizationSample {
                at_us: i,
                used_fraction: (i % 2) as f64,
            });
        }
        let est = e.estimate().unwrap();
        assert!(est > 0.3 && est < 0.7, "{est}");
    }

    #[test]
    fn first_sample_sets_estimate() {
        let mut e = UsageEstimator::default();
        assert!(e.estimate().is_none());
        e.record(UtilizationSample {
            at_us: 0,
            used_fraction: 0.42,
        });
        assert_eq!(e.estimate(), Some(0.42));
    }

    #[test]
    fn per_module_isolation() {
        let mut t = Telemetry::new();
        t.sample_usage("A1", 0, 0.1);
        t.sample_usage("A2", 0, 0.9);
        assert!(t.usage_estimate("A1").unwrap() < t.usage_estimate("A2").unwrap());
        assert!(t.usage_estimate("A3").is_none());
    }
}
