//! Discrete-event virtual time.
//!
//! All simulator components share one [`SimClock`]; time only moves when
//! `advance`/`advance_to` is called, which makes every experiment fully
//! deterministic and lets a laptop simulate hours of datacenter time in
//! milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual time in microseconds since simulation start.
pub type Micros = u64;

/// One microsecond.
pub const US: Micros = 1;
/// One millisecond in microseconds.
pub const MS: Micros = 1_000;
/// One second in microseconds.
pub const SEC: Micros = 1_000_000;

/// A shared, cheaply clonable virtual clock.
///
/// Cloning yields a handle onto the *same* clock (interior `Arc`), so a
/// datacenter and its pools all observe one timeline. The atomic cell
/// makes handles `Send + Sync`, which lets the clock double as the
/// timestamp source for `udc-telemetry` spans; the simulator itself is
/// still single-threaded by design — determinism, not parallelism, is
/// the goal.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances time by `delta` microseconds and returns the new time.
    pub fn advance(&self, delta: Micros) -> Micros {
        let t = self.now().saturating_add(delta);
        self.now.store(t, Ordering::Relaxed);
        t
    }

    /// Advances time to an absolute instant. Time never goes backwards;
    /// an earlier target leaves the clock unchanged.
    pub fn advance_to(&self, t: Micros) -> Micros {
        let cur = self.now();
        if t > cur {
            self.now.store(t, Ordering::Relaxed);
            t
        } else {
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(5 * MS);
        c.advance(SEC);
        assert_eq!(c.now(), 1_005_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(10);
        assert_eq!(b.now(), 10);
        b.advance(5);
        assert_eq!(a.now(), 15);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance_to(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn advance_saturates() {
        let c = SimClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
    }
}
