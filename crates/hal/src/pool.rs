//! Resource pools: the unit of disaggregated allocation (§3.2).
//!
//! "Fulfilling users' resource demands would then simply be allocating
//! the exact amount from the corresponding resource pools." A pool holds
//! every device of one [`ResourceKind`]; allocation carves *exact*
//! amounts out of one or more devices — no instance shapes, no rounding
//! up, which is precisely where UDC's waste savings (experiment E3) come
//! from.

use crate::device::{Device, DeviceId, DeviceState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use udc_spec::ResourceKind;

/// A slice of one device held by an allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Device the slice lives on.
    pub device: DeviceId,
    /// Units held.
    pub units: u64,
    /// Whether the device is held single-tenant.
    pub exclusive: bool,
}

/// A successful allocation: one or more slices totalling the requested
/// amount, all of one resource kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Resource kind.
    pub kind: ResourceKind,
    /// Owning tenant tag.
    pub tenant: String,
    /// The slices (non-empty).
    pub slices: Vec<Slice>,
}

impl Allocation {
    /// Total units across slices.
    pub fn total_units(&self) -> u64 {
        self.slices.iter().map(|s| s.units).sum()
    }

    /// Devices touched by this allocation.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.slices.iter().map(|s| s.device)
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The pool cannot currently satisfy the request.
    Insufficient {
        /// Kind requested.
        kind: ResourceKind,
        /// Units requested.
        requested: u64,
        /// Units currently free (under the given constraints).
        available: u64,
    },
    /// A zero-unit request.
    ZeroRequest,
    /// Single-tenant placement requested but no vacant device is large
    /// enough to host the request exclusively.
    NoExclusiveDevice {
        /// Kind requested.
        kind: ResourceKind,
        /// Units requested.
        requested: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Insufficient {
                kind,
                requested,
                available,
            } => write!(
                f,
                "insufficient {kind}: requested {requested}, available {available}"
            ),
            AllocError::ZeroRequest => f.write_str("zero-unit allocation request"),
            AllocError::NoExclusiveDevice { kind, requested } => write!(
                f,
                "no vacant {kind} device can host {requested} units single-tenant"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Placement constraints for a pool allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocConstraints {
    /// Reserve the hosting device(s) single-tenant (§3.3). Exclusive
    /// allocations never span devices: the whole request must fit in one
    /// vacant device (physical isolation is per-device).
    pub exclusive: bool,
    /// Prefer devices in this rack (locality hint from the scheduler);
    /// soft constraint.
    pub prefer_rack: Option<u32>,
    /// Require the allocation to stay within a single device (needed by
    /// modules that cannot shard).
    pub single_device: bool,
    /// Hard-pin the allocation to one device (set by placement policies
    /// that already ranked candidates).
    pub require_device: Option<DeviceId>,
    /// Devices that must not be used (replica anti-affinity, §3.4:
    /// replicas are only useful on independent hardware).
    pub avoid: Vec<DeviceId>,
}

/// A pool of devices of one resource kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourcePool {
    kind: ResourceKind,
    devices: BTreeMap<DeviceId, Device>,
}

impl ResourcePool {
    /// Creates an empty pool for `kind`.
    pub fn new(kind: ResourceKind) -> Self {
        Self {
            kind,
            devices: BTreeMap::new(),
        }
    }

    /// The pool's resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Adds a device.
    ///
    /// # Panics
    ///
    /// Panics when the device's kind differs from the pool's, or when the
    /// id is already present — both are construction bugs, not runtime
    /// conditions.
    pub fn add_device(&mut self, device: Device) {
        assert_eq!(device.kind, self.kind, "device kind must match pool kind");
        let prev = self.devices.insert(device.id, device);
        assert!(prev.is_none(), "duplicate device id in pool");
    }

    /// Number of devices (any state).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total capacity of healthy devices.
    pub fn total_capacity(&self) -> u64 {
        self.devices
            .values()
            .filter(|d| d.state == DeviceState::Healthy)
            .map(|d| d.capacity)
            .sum()
    }

    /// Units currently allocated across healthy devices.
    pub fn total_used(&self) -> u64 {
        self.devices
            .values()
            .filter(|d| d.state == DeviceState::Healthy)
            .map(|d| d.used())
            .sum()
    }

    /// Utilization in \[0, 1\] (0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            0.0
        } else {
            self.total_used() as f64 / cap as f64
        }
    }

    /// Units free for `tenant` under `constraints`.
    pub fn available_for(&self, tenant: &str, constraints: &AllocConstraints) -> u64 {
        if constraints.exclusive || constraints.single_device {
            self.devices
                .values()
                .filter(|d| !constraints.exclusive || d.vacant_except(tenant))
                .map(|d| d.free_for(tenant))
                .max()
                .unwrap_or(0)
        } else {
            self.devices.values().map(|d| d.free_for(tenant)).sum()
        }
    }

    /// Allocates exactly `units` for `tenant`.
    ///
    /// Strategy: best-fit within the preferred rack first, then best-fit
    /// anywhere; spills across devices unless `single_device` or
    /// `exclusive` is set. Best-fit (smallest sufficient free block)
    /// keeps large holes available for large future requests.
    pub fn allocate(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        if units == 0 {
            return Err(AllocError::ZeroRequest);
        }
        if constraints.exclusive
            || constraints.single_device
            || constraints.require_device.is_some()
        {
            return self.allocate_single_device(tenant, units, constraints);
        }

        // Plan first (immutable), commit after: never leave a partial
        // allocation behind.
        let mut remaining = units;
        let mut plan: Vec<(DeviceId, u64)> = Vec::new();
        let mut candidates: Vec<&Device> = self
            .devices
            .values()
            .filter(|d| d.free_for(tenant) > 0 && !constraints.avoid.contains(&d.id))
            .collect();
        // Preferred rack first, then largest free first (fewest slices).
        candidates.sort_by_key(|d| {
            let rack_penalty = match constraints.prefer_rack {
                Some(r) if d.rack == r => 0u8,
                Some(_) => 1,
                None => 0,
            };
            (rack_penalty, std::cmp::Reverse(d.free_for(tenant)), d.id)
        });
        for d in candidates {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(d.free_for(tenant));
            if take > 0 {
                plan.push((d.id, take));
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(AllocError::Insufficient {
                kind: self.kind,
                requested: units,
                available: units - remaining,
            });
        }
        let mut slices = Vec::with_capacity(plan.len());
        for (id, take) in plan {
            let d = self.devices.get_mut(&id).expect("planned device exists");
            let ok = d.allocate(tenant, take, false);
            debug_assert!(ok, "planned allocation must succeed");
            slices.push(Slice {
                device: id,
                units: take,
                exclusive: false,
            });
        }
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices,
        })
    }

    fn allocate_single_device(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        // Best-fit: the smallest device slot that satisfies the request,
        // preferring the requested rack.
        let mut best: Option<(u8, u64, DeviceId)> = None;
        for d in self.devices.values() {
            if let Some(req) = constraints.require_device {
                if d.id != req {
                    continue;
                }
            }
            if constraints.avoid.contains(&d.id) {
                continue;
            }
            if constraints.exclusive && !d.vacant_except(tenant) {
                continue;
            }
            let free = d.free_for(tenant);
            if free < units {
                continue;
            }
            let rack_penalty = match constraints.prefer_rack {
                Some(r) if d.rack == r => 0u8,
                Some(_) => 1,
                None => 0,
            };
            let key = (rack_penalty, free, d.id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, id)) = best else {
            return Err(if constraints.exclusive {
                AllocError::NoExclusiveDevice {
                    kind: self.kind,
                    requested: units,
                }
            } else {
                AllocError::Insufficient {
                    kind: self.kind,
                    requested: units,
                    available: self.available_for(tenant, constraints),
                }
            });
        };
        let d = self.devices.get_mut(&id).expect("chosen device exists");
        let ok = d.allocate(tenant, units, constraints.exclusive);
        debug_assert!(ok, "chosen device must accept the allocation");
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices: vec![Slice {
                device: id,
                units,
                exclusive: constraints.exclusive,
            }],
        })
    }

    /// Releases an allocation (idempotent per slice; unknown devices are
    /// ignored, which makes release safe after failures).
    pub fn release(&mut self, alloc: &Allocation) {
        for s in &alloc.slices {
            if let Some(d) = self.devices.get_mut(&s.device) {
                d.release(&alloc.tenant, s.units);
            }
        }
    }

    /// Access a device by id.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(&id)
    }

    /// Mutable access to a device (failure injection, repair).
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(&id)
    }

    /// Iterates devices in id order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Count of devices held exclusively (single-tenant waste metric,
    /// experiment E7).
    pub fn exclusive_devices(&self) -> usize {
        self.devices.values().filter(|d| d.is_exclusive()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(device_caps: &[u64]) -> ResourcePool {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        for (i, &cap) in device_caps.iter().enumerate() {
            p.add_device(Device::new(
                DeviceId(i as u32),
                ResourceKind::Cpu,
                cap,
                (i / 4) as u32,
            ));
        }
        p
    }

    #[test]
    fn exact_fit_single_device() {
        let mut p = pool(&[64, 64]);
        let a = p.allocate("t", 10, &AllocConstraints::default()).unwrap();
        assert_eq!(a.total_units(), 10);
        assert_eq!(a.slices.len(), 1);
        assert_eq!(p.total_used(), 10);
    }

    #[test]
    fn spills_across_devices() {
        let mut p = pool(&[8, 8, 8]);
        let a = p.allocate("t", 20, &AllocConstraints::default()).unwrap();
        assert_eq!(a.total_units(), 20);
        assert_eq!(a.slices.len(), 3);
    }

    #[test]
    fn insufficient_reports_available_and_rolls_back() {
        let mut p = pool(&[8, 8]);
        let err = p
            .allocate("t", 20, &AllocConstraints::default())
            .unwrap_err();
        assert!(matches!(
            err,
            AllocError::Insufficient { available: 16, .. }
        ));
        assert_eq!(p.total_used(), 0, "failed allocation must not leak");
    }

    #[test]
    fn zero_request_rejected() {
        let mut p = pool(&[8]);
        assert_eq!(
            p.allocate("t", 0, &AllocConstraints::default()),
            Err(AllocError::ZeroRequest)
        );
    }

    #[test]
    fn release_returns_capacity() {
        let mut p = pool(&[16]);
        let a = p.allocate("t", 16, &AllocConstraints::default()).unwrap();
        assert_eq!(p.available_for("t", &AllocConstraints::default()), 0);
        p.release(&a);
        assert_eq!(p.available_for("t", &AllocConstraints::default()), 16);
    }

    #[test]
    fn exclusive_takes_whole_device() {
        let mut p = pool(&[16, 16]);
        let a = p
            .allocate(
                "t1",
                4,
                &AllocConstraints {
                    exclusive: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(a.slices[0].exclusive);
        let dev = a.slices[0].device;
        // Another tenant cannot use the exclusive device.
        assert_eq!(p.device(dev).unwrap().free_for("t2"), 0);
        // But the other device remains available.
        assert!(p.allocate("t2", 8, &AllocConstraints::default()).is_ok());
    }

    #[test]
    fn exclusive_fails_when_all_devices_occupied() {
        let mut p = pool(&[16]);
        p.allocate("t1", 1, &AllocConstraints::default()).unwrap();
        let err = p
            .allocate(
                "t2",
                1,
                &AllocConstraints {
                    exclusive: true,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, AllocError::NoExclusiveDevice { .. }));
    }

    #[test]
    fn single_device_constraint() {
        let mut p = pool(&[8, 8]);
        let err = p
            .allocate(
                "t",
                12,
                &AllocConstraints {
                    single_device: true,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert!(p
            .allocate(
                "t",
                8,
                &AllocConstraints {
                    single_device: true,
                    ..Default::default()
                },
            )
            .is_ok());
    }

    #[test]
    fn rack_preference_honored() {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Cpu, 64, 0));
        p.add_device(Device::new(DeviceId(1), ResourceKind::Cpu, 64, 1));
        let a = p
            .allocate(
                "t",
                4,
                &AllocConstraints {
                    prefer_rack: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(p.device(a.slices[0].device).unwrap().rack, 1);
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut p = pool(&[50, 50]);
        assert_eq!(p.utilization(), 0.0);
        let a = p.allocate("t", 25, &AllocConstraints::default()).unwrap();
        assert!((p.utilization() - 0.25).abs() < 1e-9);
        p.release(&a);
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn failed_devices_excluded() {
        let mut p = pool(&[16, 16]);
        p.device_mut(DeviceId(0)).unwrap().fail();
        assert_eq!(p.total_capacity(), 16);
        let a = p.allocate("t", 16, &AllocConstraints::default()).unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        assert!(p.allocate("t", 1, &AllocConstraints::default()).is_err());
    }

    #[test]
    fn require_device_pins_allocation() {
        let mut p = pool(&[16, 16]);
        let a = p
            .allocate(
                "t",
                4,
                &AllocConstraints {
                    require_device: Some(DeviceId(1)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        // Pinning to a full device fails rather than spilling.
        let err = p.allocate(
            "t",
            16,
            &AllocConstraints {
                require_device: Some(DeviceId(1)),
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn avoid_devices_respected() {
        let mut p = pool(&[8, 8]);
        let a = p
            .allocate(
                "t",
                8,
                &AllocConstraints {
                    avoid: vec![DeviceId(0)],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        // Avoiding everything is unsatisfiable.
        assert!(p
            .allocate(
                "t",
                1,
                &AllocConstraints {
                    avoid: vec![DeviceId(0), DeviceId(1)],
                    ..Default::default()
                },
            )
            .is_err());
    }

    #[test]
    #[should_panic(expected = "device kind")]
    fn wrong_kind_device_panics() {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Gpu, 8, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate device id")]
    fn duplicate_device_panics() {
        let mut p = pool(&[8]);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Cpu, 8, 0));
    }
}
