//! Resource pools: the unit of disaggregated allocation (§3.2).
//!
//! "Fulfilling users' resource demands would then simply be allocating
//! the exact amount from the corresponding resource pools." A pool holds
//! every device of one [`ResourceKind`]; allocation carves *exact*
//! amounts out of one or more devices — no instance shapes, no rounding
//! up, which is precisely where UDC's waste savings (experiment E3) come
//! from.
//!
//! # Allocation fast path
//!
//! The pool maintains an incremental free-capacity index (see
//! [`PoolIndex`]) so the hot operations are sub-linear in device count:
//!
//! | operation            | naive (seed)     | indexed            |
//! |----------------------|------------------|--------------------|
//! | `allocate` (1 slice) | O(n)             | O(log n + A + X)   |
//! | `allocate` (k spill) | O(n log n)       | O(k log n + A + X) |
//! | `release`            | O(k)             | O(k log n)         |
//! | `available_for`      | O(n)             | O(log n + X)       |
//! | `total_capacity`     | O(n)             | O(1)               |
//! | `total_used`         | O(n)             | O(1)               |
//!
//! where `A` = `constraints.avoid.len()` and `X` = devices the tenant
//! already occupies (both small in practice). The observable behavior is
//! bit-identical to the seed's linear scan — property tests in
//! `tests/prop_equiv.rs` drive this implementation and
//! [`crate::linear::LinearPool`] (the retained seed algorithm) side by
//! side over random traces and demand identical results.

use crate::device::{Device, DeviceId, DeviceState};
use serde::{de, ser, Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use udc_spec::ResourceKind;

/// A slice of one device held by an allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Device the slice lives on.
    pub device: DeviceId,
    /// Units held.
    pub units: u64,
    /// Whether the device is held single-tenant.
    pub exclusive: bool,
}

/// A successful allocation: one or more slices totalling the requested
/// amount, all of one resource kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Resource kind.
    pub kind: ResourceKind,
    /// Owning tenant tag.
    pub tenant: String,
    /// The slices (non-empty).
    pub slices: Vec<Slice>,
}

impl Allocation {
    /// Total units across slices.
    pub fn total_units(&self) -> u64 {
        self.slices.iter().map(|s| s.units).sum()
    }

    /// Devices touched by this allocation.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.slices.iter().map(|s| s.device)
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The pool cannot currently satisfy the request.
    Insufficient {
        /// Kind requested.
        kind: ResourceKind,
        /// Units requested.
        requested: u64,
        /// Units currently free (under the given constraints).
        available: u64,
    },
    /// A zero-unit request.
    ZeroRequest,
    /// Single-tenant placement requested but no vacant device is large
    /// enough to host the request exclusively.
    NoExclusiveDevice {
        /// Kind requested.
        kind: ResourceKind,
        /// Units requested.
        requested: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Insufficient {
                kind,
                requested,
                available,
            } => write!(
                f,
                "insufficient {kind}: requested {requested}, available {available}"
            ),
            AllocError::ZeroRequest => f.write_str("zero-unit allocation request"),
            AllocError::NoExclusiveDevice { kind, requested } => write!(
                f,
                "no vacant {kind} device can host {requested} units single-tenant"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Placement constraints for a pool allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocConstraints {
    /// Reserve the hosting device(s) single-tenant (§3.3). Exclusive
    /// allocations never span devices: the whole request must fit in one
    /// vacant device (physical isolation is per-device).
    pub exclusive: bool,
    /// Prefer devices in this rack (locality hint from the scheduler);
    /// soft constraint.
    pub prefer_rack: Option<u32>,
    /// Require the allocation to stay within a single device (needed by
    /// modules that cannot shard).
    pub single_device: bool,
    /// Hard-pin the allocation to one device (set by placement policies
    /// that already ranked candidates).
    pub require_device: Option<DeviceId>,
    /// Devices that must not be used (replica anti-affinity, §3.4:
    /// replicas are only useful on independent hardware).
    pub avoid: Vec<DeviceId>,
}

/// Snapshot of the index-relevant facts about one device, kept so stale
/// index entries can be removed in O(log n) when the device changes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DevMeta {
    healthy: bool,
    capacity: u64,
    used: u64,
    rack: u32,
    /// Exclusive holder, if any.
    holder: Option<String>,
    /// The single tenant occupying the device non-exclusively, when the
    /// device has allocations from exactly one tenant and no holder.
    sole: Option<String>,
}

impl DevMeta {
    fn of(d: &Device) -> Self {
        let mut tenants = d.tenants();
        let first = tenants.next().map(|(t, _)| t.to_string());
        let second = tenants.next();
        let holder = if d.is_exclusive() {
            first.clone()
        } else {
            None
        };
        let sole = if holder.is_none() && second.is_none() {
            first
        } else {
            None
        };
        DevMeta {
            healthy: d.state == DeviceState::Healthy,
            capacity: d.capacity,
            used: d.used(),
            rack: d.rack,
            holder,
            sole,
        }
    }

    fn free(&self) -> u64 {
        self.capacity - self.used
    }

    fn vacant(&self) -> bool {
        self.used == 0 && self.holder.is_none() && self.sole.is_none()
    }
}

/// The incremental free-capacity index. Devices appear in partitions by
/// their sharing state:
///
/// - *general*: healthy, no exclusive holder — free for every tenant;
///   keyed ascending and descending by `(free, id)` (globally and
///   per rack) to serve best-fit probes and worst-fit spills.
/// - *vacant*: healthy with no allocations at all — the only devices a
///   tenant with no footprint can take exclusively.
/// - *sole\[t\]* / *excl\[t\]*: devices occupied by exactly tenant `t`
///   (without / with the exclusive flag) — the tenant-private candidate
///   sets for exclusive and spill allocation.
///
/// Failed devices appear in no partition.
#[derive(Debug, Clone, Default)]
struct PoolIndex {
    general_asc: BTreeSet<(u64, DeviceId)>,
    general_desc: BTreeSet<(Reverse<u64>, DeviceId)>,
    rack_asc: BTreeMap<u32, BTreeSet<(u64, DeviceId)>>,
    rack_desc: BTreeMap<u32, BTreeSet<(Reverse<u64>, DeviceId)>>,
    vacant_asc: BTreeSet<(u64, DeviceId)>,
    rack_vacant_asc: BTreeMap<u32, BTreeSet<(u64, DeviceId)>>,
    sole: BTreeMap<String, BTreeSet<DeviceId>>,
    excl: BTreeMap<String, BTreeSet<DeviceId>>,
    /// Sum of free units across the general partition.
    general_free: u64,
    /// Capacity / used sums over healthy devices (`total_capacity`,
    /// `total_used` in O(1)).
    healthy_capacity: u64,
    healthy_used: u64,
    meta: BTreeMap<DeviceId, DevMeta>,
}

impl PoolIndex {
    fn insert(&mut self, id: DeviceId, m: &DevMeta) {
        if !m.healthy {
            return;
        }
        self.healthy_capacity += m.capacity;
        self.healthy_used += m.used;
        match &m.holder {
            Some(holder) => {
                self.excl.entry(holder.clone()).or_default().insert(id);
            }
            None => {
                let free = m.free();
                self.general_asc.insert((free, id));
                self.general_desc.insert((Reverse(free), id));
                self.rack_asc.entry(m.rack).or_default().insert((free, id));
                self.rack_desc
                    .entry(m.rack)
                    .or_default()
                    .insert((Reverse(free), id));
                self.general_free += free;
                if m.vacant() {
                    self.vacant_asc.insert((m.capacity, id));
                    self.rack_vacant_asc
                        .entry(m.rack)
                        .or_default()
                        .insert((m.capacity, id));
                } else if let Some(t) = &m.sole {
                    self.sole.entry(t.clone()).or_default().insert(id);
                }
            }
        }
    }

    fn remove(&mut self, id: DeviceId, m: &DevMeta) {
        if !m.healthy {
            return;
        }
        self.healthy_capacity -= m.capacity;
        self.healthy_used -= m.used;
        match &m.holder {
            Some(holder) => {
                if let Some(set) = self.excl.get_mut(holder) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.excl.remove(holder);
                    }
                }
            }
            None => {
                let free = m.free();
                self.general_asc.remove(&(free, id));
                self.general_desc.remove(&(Reverse(free), id));
                if let Some(set) = self.rack_asc.get_mut(&m.rack) {
                    set.remove(&(free, id));
                }
                if let Some(set) = self.rack_desc.get_mut(&m.rack) {
                    set.remove(&(Reverse(free), id));
                }
                self.general_free -= free;
                if m.vacant() {
                    self.vacant_asc.remove(&(m.capacity, id));
                    if let Some(set) = self.rack_vacant_asc.get_mut(&m.rack) {
                        set.remove(&(m.capacity, id));
                    }
                } else if let Some(t) = &m.sole {
                    if let Some(set) = self.sole.get_mut(t) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.sole.remove(t);
                        }
                    }
                }
            }
        }
    }
}

static NEXT_POOL_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn fresh_instance() -> u64 {
    NEXT_POOL_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

/// A pool of devices of one resource kind.
#[derive(Debug)]
pub struct ResourcePool {
    kind: ResourceKind,
    devices: BTreeMap<DeviceId, Device>,
    index: PoolIndex,
    instance: u64,
    version: u64,
}

impl Clone for ResourcePool {
    fn clone(&self) -> Self {
        // A clone diverges independently, so it gets its own identity:
        // stamps must never collide between pools with different
        // contents (the scheduler's candidate cache keys on them).
        Self {
            kind: self.kind,
            devices: self.devices.clone(),
            index: self.index.clone(),
            instance: fresh_instance(),
            version: 0,
        }
    }
}

impl ResourcePool {
    /// Creates an empty pool for `kind`.
    pub fn new(kind: ResourceKind) -> Self {
        Self {
            kind,
            devices: BTreeMap::new(),
            index: PoolIndex::default(),
            instance: fresh_instance(),
            version: 0,
        }
    }

    fn from_parts(kind: ResourceKind, devices: BTreeMap<DeviceId, Device>) -> Self {
        let mut pool = Self::new(kind);
        for (id, d) in devices {
            assert_eq!(d.kind, kind, "device kind must match pool kind");
            let m = DevMeta::of(&d);
            pool.index.insert(id, &m);
            pool.index.meta.insert(id, m);
            pool.devices.insert(id, d);
        }
        pool
    }

    /// The pool's resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// An identity stamp `(instance, version)` for cache invalidation:
    /// `instance` is unique per pool object, `version` bumps whenever
    /// the device *set* or device-level facts (capacity, rack, state)
    /// may have changed. Plain allocate/release traffic does not bump
    /// the version — only free units change, which cache holders are
    /// expected to refresh themselves.
    pub fn stamp(&self) -> (u64, u64) {
        (self.instance, self.version)
    }

    /// Re-derives the index entries for one device after it changed.
    fn reindex_device(&mut self, id: DeviceId) {
        let new = self.devices.get(&id).map(DevMeta::of);
        let old = match &new {
            Some(m) => self.index.meta.insert(id, m.clone()),
            None => self.index.meta.remove(&id),
        };
        if old == new {
            return;
        }
        if let Some(m) = &old {
            self.index.remove(id, m);
        }
        if let Some(m) = &new {
            self.index.insert(id, m);
        }
    }

    /// Adds a device.
    ///
    /// # Panics
    ///
    /// Panics when the device's kind differs from the pool's, or when the
    /// id is already present — both are construction bugs, not runtime
    /// conditions.
    pub fn add_device(&mut self, device: Device) {
        assert_eq!(device.kind, self.kind, "device kind must match pool kind");
        let id = device.id;
        let prev = self.devices.insert(id, device);
        assert!(prev.is_none(), "duplicate device id in pool");
        self.reindex_device(id);
        self.version += 1;
    }

    /// Number of devices (any state).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total capacity of healthy devices.
    pub fn total_capacity(&self) -> u64 {
        self.index.healthy_capacity
    }

    /// Units currently allocated across healthy devices.
    pub fn total_used(&self) -> u64 {
        self.index.healthy_used
    }

    /// Utilization in \[0, 1\] (0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            0.0
        } else {
            self.total_used() as f64 / cap as f64
        }
    }

    /// Free units on the tenant's private devices (exclusively held, or
    /// solely occupied when `include_sole`), optionally capped to a rack
    /// predicate. These sets are bounded by the tenant's own footprint,
    /// not by pool size.
    fn tenant_devices<'a>(
        &'a self,
        tenant: &str,
        include_sole: bool,
    ) -> impl Iterator<Item = &'a Device> + 'a {
        let excl = self.index.excl.get(tenant).into_iter().flatten();
        let sole = if include_sole {
            Some(self.index.sole.get(tenant).into_iter().flatten())
        } else {
            None
        };
        excl.chain(sole.into_iter().flatten())
            .map(|id| &self.devices[id])
    }

    /// Units free for `tenant` under `constraints`.
    pub fn available_for(&self, tenant: &str, constraints: &AllocConstraints) -> u64 {
        if constraints.exclusive {
            // Largest free slot among devices the tenant could take
            // exclusively: vacant devices plus its own footprint.
            let vacant_max = self
                .index
                .vacant_asc
                .iter()
                .next_back()
                .map(|&(cap, _)| cap)
                .unwrap_or(0);
            let own_max = self
                .tenant_devices(tenant, true)
                .map(|d| d.free_for(tenant))
                .max()
                .unwrap_or(0);
            vacant_max.max(own_max)
        } else if constraints.single_device {
            let general_max = self
                .index
                .general_asc
                .iter()
                .next_back()
                .map(|&(free, _)| free)
                .unwrap_or(0);
            let excl_max = self
                .tenant_devices(tenant, false)
                .map(|d| d.free_for(tenant))
                .max()
                .unwrap_or(0);
            general_max.max(excl_max)
        } else {
            self.index.general_free
                + self
                    .tenant_devices(tenant, false)
                    .map(|d| d.free_for(tenant))
                    .sum::<u64>()
        }
    }

    /// Allocates exactly `units` for `tenant`.
    ///
    /// Strategy: best-fit within the preferred rack first, then best-fit
    /// anywhere; spills across devices unless `single_device` or
    /// `exclusive` is set. Best-fit (smallest sufficient free block)
    /// keeps large holes available for large future requests.
    pub fn allocate(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        if units == 0 {
            return Err(AllocError::ZeroRequest);
        }
        if constraints.exclusive
            || constraints.single_device
            || constraints.require_device.is_some()
        {
            return self.allocate_single_device(tenant, units, constraints);
        }

        // Worst-fit spill across devices. Feasibility is decided up
        // front from the running free totals, so the greedy plan below
        // only ever runs to completion.
        let avoided_free: u64 = constraints
            .avoid
            .iter()
            .enumerate()
            // Tolerate duplicate avoid entries: count each device once.
            .filter(|(i, id)| !constraints.avoid[..*i].contains(id))
            .filter_map(|(_, id)| self.index.meta.get(id))
            .filter(|m| m.healthy && m.holder.is_none())
            .map(|m| m.free())
            .sum();
        let own_free: u64 = self
            .tenant_devices(tenant, false)
            .filter(|d| !constraints.avoid.contains(&d.id))
            .map(|d| d.free_for(tenant))
            .sum();
        let available = self.index.general_free - avoided_free + own_free;
        if available < units {
            return Err(AllocError::Insufficient {
                kind: self.kind,
                requested: units,
                available,
            });
        }

        let plan = self.plan_spill(tenant, units, constraints);
        debug_assert_eq!(plan.iter().map(|&(_, u)| u).sum::<u64>(), units);
        let mut slices = Vec::with_capacity(plan.len());
        for (id, take) in plan {
            let d = self.devices.get_mut(&id).expect("planned device exists");
            let ok = d.allocate(tenant, take, false);
            debug_assert!(ok, "planned allocation must succeed");
            self.reindex_device(id);
            slices.push(Slice {
                device: id,
                units: take,
                exclusive: false,
            });
        }
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices,
        })
    }

    /// [`ResourcePool::allocate`] with causal tracing: opens a
    /// `hal.pool.allocate` span under `ctx` on `obs` and records the
    /// outcome as decision records (accepted device slices, or the
    /// reason the pool could not serve). `module` attributes the
    /// decision to the module being placed. Identical allocation
    /// behaviour; with a disabled hub this is exactly `allocate`.
    pub fn allocate_traced(
        &mut self,
        obs: &udc_telemetry::Telemetry,
        ctx: Option<&udc_telemetry::TraceCtx>,
        module: &str,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        if !obs.is_enabled() {
            return self.allocate(tenant, units, constraints);
        }
        let span = obs.span_opt(ctx, "hal.pool.allocate");
        let sctx = span.ctx().or(ctx.copied());
        let result = self.allocate(tenant, units, constraints);
        match &result {
            Ok(a) => {
                for s in &a.slices {
                    obs.decide(udc_telemetry::Decision {
                        ctx: sctx,
                        stage: "hal.alloc",
                        module,
                        candidate: &format!("dev{}", s.device.0),
                        accepted: true,
                        reason: udc_telemetry::ReasonCode::Accepted,
                        score: None,
                        detail: format!(
                            "kind={} units={}{}",
                            self.kind,
                            s.units,
                            if s.exclusive { " exclusive" } else { "" }
                        ),
                    });
                }
            }
            Err(e) => {
                let (reason, detail) = match e {
                    AllocError::Insufficient {
                        requested,
                        available,
                        ..
                    } => (
                        udc_telemetry::ReasonCode::Capacity,
                        format!("requested={requested} available={available}"),
                    ),
                    AllocError::ZeroRequest => (
                        udc_telemetry::ReasonCode::Policy,
                        "zero-unit request".to_string(),
                    ),
                    AllocError::NoExclusiveDevice { requested, .. } => (
                        udc_telemetry::ReasonCode::Exclusivity,
                        format!("no vacant device fits {requested} units single-tenant"),
                    ),
                };
                obs.decide(udc_telemetry::Decision {
                    ctx: sctx,
                    stage: "hal.alloc",
                    module,
                    candidate: "-",
                    accepted: false,
                    reason,
                    score: None,
                    detail,
                });
            }
        }
        result
    }

    /// Plans a guaranteed-feasible multi-device allocation in the seed's
    /// candidate order: `(rack_penalty, free desc, id asc)` over general
    /// devices merged with the tenant's exclusively-held devices.
    fn plan_spill(
        &self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Vec<(DeviceId, u64)> {
        let avoid = &constraints.avoid;
        // The tenant's own exclusive devices, split by rack preference,
        // descending by (free, id) to merge with the general streams.
        let mut own_near: Vec<(u64, DeviceId)> = Vec::new();
        let mut own_far: Vec<(u64, DeviceId)> = Vec::new();
        for d in self.tenant_devices(tenant, false) {
            if avoid.contains(&d.id) {
                continue;
            }
            let free = d.free_for(tenant);
            if free == 0 {
                continue;
            }
            match constraints.prefer_rack {
                Some(r) if d.rack != r => own_far.push((free, d.id)),
                _ => own_near.push((free, d.id)),
            }
        }
        own_near.sort_by_key(|&(free, id)| (Reverse(free), id));
        own_far.sort_by_key(|&(free, id)| (Reverse(free), id));

        let mut remaining = units;
        let mut plan: Vec<(DeviceId, u64)> = Vec::new();
        let consume = |general: &mut dyn Iterator<Item = (u64, DeviceId)>,
                       own: &[(u64, DeviceId)],
                       remaining: &mut u64,
                       plan: &mut Vec<(DeviceId, u64)>| {
            let mut general = general.peekable();
            let mut own = own.iter().copied().peekable();
            while *remaining > 0 {
                // Pick whichever stream heads the merged worst-fit
                // order: larger free first, then smaller id.
                let from_general = match (general.peek(), own.peek()) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(&(gf, gid)), Some(&(of, oid))) => (Reverse(gf), gid) < (Reverse(of), oid),
                };
                let (free, id) = if from_general {
                    general.next().unwrap()
                } else {
                    own.next().unwrap()
                };
                if free == 0 {
                    break;
                }
                if from_general && avoid.contains(&id) {
                    continue;
                }
                let take = (*remaining).min(free);
                plan.push((id, take));
                *remaining -= take;
            }
        };

        match constraints.prefer_rack {
            None => {
                let mut general = self
                    .index
                    .general_desc
                    .iter()
                    .map(|&(Reverse(free), id)| (free, id));
                consume(&mut general, &own_near, &mut remaining, &mut plan);
            }
            Some(r) => {
                let mut near = self
                    .index
                    .rack_desc
                    .get(&r)
                    .into_iter()
                    .flatten()
                    .map(|&(Reverse(free), id)| (free, id));
                consume(&mut near, &own_near, &mut remaining, &mut plan);
                if remaining > 0 {
                    // Everything in rack `r` is exhausted, so the rack-r
                    // entries still present in the global stream carry
                    // zero takeable units; skip them by rack.
                    let mut far = self
                        .index
                        .general_desc
                        .iter()
                        .map(|&(Reverse(free), id)| (free, id))
                        .filter(|&(_, id)| self.index.meta[&id].rack != r);
                    consume(&mut far, &own_far, &mut remaining, &mut plan);
                }
            }
        }
        plan
    }

    /// First entry at or above `units` in an ascending `(free, id)` set,
    /// skipping avoided devices: the best-fit (smallest sufficient,
    /// lowest id) candidate of that partition.
    fn probe(
        set: &BTreeSet<(u64, DeviceId)>,
        units: u64,
        avoid: &[DeviceId],
    ) -> Option<(u64, DeviceId)> {
        set.range((units, DeviceId(0))..)
            .find(|(_, id)| !avoid.contains(id))
            .copied()
    }

    fn allocate_single_device(
        &mut self,
        tenant: &str,
        units: u64,
        constraints: &AllocConstraints,
    ) -> Result<Allocation, AllocError> {
        // Best-fit: the smallest device slot that satisfies the request,
        // preferring the requested rack. Candidates come from the index
        // partition matching the constraint (vacant devices for
        // exclusive, the general partition otherwise) plus the tenant's
        // own footprint, compared under the seed's `(rack_penalty, free,
        // id)` key.
        let mut best: Option<(u8, u64, DeviceId)> = None;
        let mut consider = |key: (u8, u64, DeviceId)| {
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        };
        let penalty_of = |rack: u32| match constraints.prefer_rack {
            Some(r) if rack == r => 0u8,
            Some(_) => 1,
            None => 0,
        };

        if let Some(req) = constraints.require_device {
            // Hard pin: only the named device can match; check it
            // directly under the same filters as the open scan.
            if let Some(d) = self.devices.get(&req) {
                if !constraints.avoid.contains(&d.id)
                    && (!constraints.exclusive || d.vacant_except(tenant))
                    && d.free_for(tenant) >= units
                {
                    consider((penalty_of(d.rack), d.free_for(tenant), d.id));
                }
            }
        } else {
            let shared = if constraints.exclusive {
                (&self.index.vacant_asc, &self.index.rack_vacant_asc)
            } else {
                (&self.index.general_asc, &self.index.rack_asc)
            };
            if let Some(r) = constraints.prefer_rack {
                if let Some(set) = shared.1.get(&r) {
                    if let Some((free, id)) = Self::probe(set, units, &constraints.avoid) {
                        consider((0, free, id));
                    }
                }
            }
            if let Some((free, id)) = Self::probe(shared.0, units, &constraints.avoid) {
                consider((penalty_of(self.index.meta[&id].rack), free, id));
            }
            for d in self.tenant_devices(tenant, constraints.exclusive) {
                if constraints.avoid.contains(&d.id) {
                    continue;
                }
                let free = d.free_for(tenant);
                if free < units {
                    continue;
                }
                consider((penalty_of(d.rack), free, d.id));
            }
        }

        let Some((_, _, id)) = best else {
            return Err(if constraints.exclusive {
                AllocError::NoExclusiveDevice {
                    kind: self.kind,
                    requested: units,
                }
            } else {
                AllocError::Insufficient {
                    kind: self.kind,
                    requested: units,
                    available: self.available_for(tenant, constraints),
                }
            });
        };
        let d = self.devices.get_mut(&id).expect("chosen device exists");
        let ok = d.allocate(tenant, units, constraints.exclusive);
        debug_assert!(ok, "chosen device must accept the allocation");
        self.reindex_device(id);
        Ok(Allocation {
            kind: self.kind,
            tenant: tenant.to_string(),
            slices: vec![Slice {
                device: id,
                units,
                exclusive: constraints.exclusive,
            }],
        })
    }

    /// Releases an allocation (idempotent per slice; unknown devices are
    /// ignored, which makes release safe after failures).
    pub fn release(&mut self, alloc: &Allocation) {
        for s in &alloc.slices {
            if let Some(d) = self.devices.get_mut(&s.device) {
                d.release(&alloc.tenant, s.units);
                self.reindex_device(s.device);
            }
        }
    }

    /// Access a device by id.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(&id)
    }

    /// Mutable access to a device (failure injection, repair). The
    /// returned guard re-syncs the pool's free-capacity index when
    /// dropped, so callers may mutate the device freely.
    pub fn device_mut(&mut self, id: DeviceId) -> Option<DeviceMut<'_>> {
        if self.devices.contains_key(&id) {
            Some(DeviceMut { pool: self, id })
        } else {
            None
        }
    }

    /// Iterates devices in id order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Count of devices held exclusively (single-tenant waste metric,
    /// experiment E7).
    pub fn exclusive_devices(&self) -> usize {
        self.index.excl.values().map(|s| s.len()).sum()
    }
}

/// Mutable device access that keeps the pool index coherent: any change
/// made through the guard (failure, repair, direct field edits) is
/// folded back into the index when the guard drops.
pub struct DeviceMut<'a> {
    pool: &'a mut ResourcePool,
    id: DeviceId,
}

impl Deref for DeviceMut<'_> {
    type Target = Device;

    fn deref(&self) -> &Device {
        &self.pool.devices[&self.id]
    }
}

impl DerefMut for DeviceMut<'_> {
    fn deref_mut(&mut self) -> &mut Device {
        self.pool
            .devices
            .get_mut(&self.id)
            .expect("guarded device exists")
    }
}

impl Drop for DeviceMut<'_> {
    fn drop(&mut self) {
        self.pool.reindex_device(self.id);
        // Guard mutations may change capacity/rack/state, which cached
        // candidate lists depend on.
        self.pool.version += 1;
    }
}

impl fmt::Debug for DeviceMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// The index is derived state: serialize only the ground truth and
// rebuild on the way in (also keeps the wire format identical to the
// seed's derived form).
impl ser::Serialize for ResourcePool {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kind".to_string(), self.kind.to_value()),
            ("devices".to_string(), self.devices.to_value()),
        ])
    }
}

impl de::Deserialize for ResourcePool {
    fn from_value(v: &serde::Value) -> Result<Self, de::Error> {
        let entries = de::as_object(v, "ResourcePool")?;
        let kind: ResourceKind = de::field(entries, "kind")?;
        let devices: BTreeMap<DeviceId, Device> = de::field(entries, "devices")?;
        for d in devices.values() {
            if d.kind != kind {
                return Err(de::Error::msg("device kind must match pool kind"));
            }
        }
        Ok(Self::from_parts(kind, devices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(device_caps: &[u64]) -> ResourcePool {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        for (i, &cap) in device_caps.iter().enumerate() {
            p.add_device(Device::new(
                DeviceId(i as u32),
                ResourceKind::Cpu,
                cap,
                (i / 4) as u32,
            ));
        }
        p
    }

    #[test]
    fn exact_fit_single_device() {
        let mut p = pool(&[64, 64]);
        let a = p.allocate("t", 10, &AllocConstraints::default()).unwrap();
        assert_eq!(a.total_units(), 10);
        assert_eq!(a.slices.len(), 1);
        assert_eq!(p.total_used(), 10);
    }

    #[test]
    fn spills_across_devices() {
        let mut p = pool(&[8, 8, 8]);
        let a = p.allocate("t", 20, &AllocConstraints::default()).unwrap();
        assert_eq!(a.total_units(), 20);
        assert_eq!(a.slices.len(), 3);
    }

    #[test]
    fn insufficient_reports_available_and_rolls_back() {
        let mut p = pool(&[8, 8]);
        let err = p
            .allocate("t", 20, &AllocConstraints::default())
            .unwrap_err();
        assert!(matches!(
            err,
            AllocError::Insufficient { available: 16, .. }
        ));
        assert_eq!(p.total_used(), 0, "failed allocation must not leak");
    }

    #[test]
    fn zero_request_rejected() {
        let mut p = pool(&[8]);
        assert_eq!(
            p.allocate("t", 0, &AllocConstraints::default()),
            Err(AllocError::ZeroRequest)
        );
    }

    #[test]
    fn release_returns_capacity() {
        let mut p = pool(&[16]);
        let a = p.allocate("t", 16, &AllocConstraints::default()).unwrap();
        assert_eq!(p.available_for("t", &AllocConstraints::default()), 0);
        p.release(&a);
        assert_eq!(p.available_for("t", &AllocConstraints::default()), 16);
    }

    #[test]
    fn exclusive_takes_whole_device() {
        let mut p = pool(&[16, 16]);
        let a = p
            .allocate(
                "t1",
                4,
                &AllocConstraints {
                    exclusive: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(a.slices[0].exclusive);
        let dev = a.slices[0].device;
        // Another tenant cannot use the exclusive device.
        assert_eq!(p.device(dev).unwrap().free_for("t2"), 0);
        // But the other device remains available.
        assert!(p.allocate("t2", 8, &AllocConstraints::default()).is_ok());
    }

    #[test]
    fn exclusive_fails_when_all_devices_occupied() {
        let mut p = pool(&[16]);
        p.allocate("t1", 1, &AllocConstraints::default()).unwrap();
        let err = p
            .allocate(
                "t2",
                1,
                &AllocConstraints {
                    exclusive: true,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, AllocError::NoExclusiveDevice { .. }));
    }

    #[test]
    fn single_device_constraint() {
        let mut p = pool(&[8, 8]);
        let err = p
            .allocate(
                "t",
                12,
                &AllocConstraints {
                    single_device: true,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert!(p
            .allocate(
                "t",
                8,
                &AllocConstraints {
                    single_device: true,
                    ..Default::default()
                },
            )
            .is_ok());
    }

    #[test]
    fn rack_preference_honored() {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Cpu, 64, 0));
        p.add_device(Device::new(DeviceId(1), ResourceKind::Cpu, 64, 1));
        let a = p
            .allocate(
                "t",
                4,
                &AllocConstraints {
                    prefer_rack: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(p.device(a.slices[0].device).unwrap().rack, 1);
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut p = pool(&[50, 50]);
        assert_eq!(p.utilization(), 0.0);
        let a = p.allocate("t", 25, &AllocConstraints::default()).unwrap();
        assert!((p.utilization() - 0.25).abs() < 1e-9);
        p.release(&a);
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn failed_devices_excluded() {
        let mut p = pool(&[16, 16]);
        p.device_mut(DeviceId(0)).unwrap().fail();
        assert_eq!(p.total_capacity(), 16);
        let a = p.allocate("t", 16, &AllocConstraints::default()).unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        assert!(p.allocate("t", 1, &AllocConstraints::default()).is_err());
    }

    #[test]
    fn require_device_pins_allocation() {
        let mut p = pool(&[16, 16]);
        let a = p
            .allocate(
                "t",
                4,
                &AllocConstraints {
                    require_device: Some(DeviceId(1)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        // Pinning to a full device fails rather than spilling.
        let err = p.allocate(
            "t",
            16,
            &AllocConstraints {
                require_device: Some(DeviceId(1)),
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn avoid_devices_respected() {
        let mut p = pool(&[8, 8]);
        let a = p
            .allocate(
                "t",
                8,
                &AllocConstraints {
                    avoid: vec![DeviceId(0)],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(a.slices[0].device, DeviceId(1));
        // Avoiding everything is unsatisfiable.
        assert!(p
            .allocate(
                "t",
                1,
                &AllocConstraints {
                    avoid: vec![DeviceId(0), DeviceId(1)],
                    ..Default::default()
                },
            )
            .is_err());
    }

    #[test]
    #[should_panic(expected = "device kind")]
    fn wrong_kind_device_panics() {
        let mut p = ResourcePool::new(ResourceKind::Cpu);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Gpu, 8, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate device id")]
    fn duplicate_device_panics() {
        let mut p = pool(&[8]);
        p.add_device(Device::new(DeviceId(0), ResourceKind::Cpu, 8, 0));
    }

    #[test]
    fn repair_reinstates_device() {
        let mut p = pool(&[16, 16]);
        p.device_mut(DeviceId(0)).unwrap().fail();
        assert_eq!(p.total_capacity(), 16);
        p.device_mut(DeviceId(0)).unwrap().repair();
        assert_eq!(p.total_capacity(), 32);
        let a = p.allocate("t", 32, &AllocConstraints::default()).unwrap();
        assert_eq!(a.total_units(), 32);
    }

    #[test]
    fn stamp_tracks_structural_changes() {
        let mut p = pool(&[8]);
        let s0 = p.stamp();
        p.allocate("t", 4, &AllocConstraints::default()).unwrap();
        assert_eq!(p.stamp(), s0, "allocations do not bump the version");
        p.add_device(Device::new(DeviceId(9), ResourceKind::Cpu, 8, 0));
        assert_ne!(p.stamp(), s0, "adding a device bumps the version");
        let s1 = p.stamp();
        p.device_mut(DeviceId(9)).unwrap().fail();
        assert_ne!(p.stamp(), s1, "guard mutations bump the version");
        let q = p.clone();
        assert_ne!(q.stamp().0, p.stamp().0, "clones get their own identity");
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let mut p = pool(&[16, 16, 16]);
        let a = p.allocate("t1", 10, &AllocConstraints::default()).unwrap();
        p.allocate(
            "t2",
            4,
            &AllocConstraints {
                exclusive: true,
                ..Default::default()
            },
        )
        .unwrap();
        let js = serde_json::to_string(&p).unwrap();
        let mut q: ResourcePool = serde_json::from_str(&js).unwrap();
        assert_eq!(q.total_used(), p.total_used());
        assert_eq!(q.total_capacity(), p.total_capacity());
        assert_eq!(q.exclusive_devices(), 1);
        assert_eq!(
            q.available_for("t3", &AllocConstraints::default()),
            p.available_for("t3", &AllocConstraints::default())
        );
        // The rebuilt index still allocates and releases coherently.
        q.release(&a);
        assert_eq!(q.total_used(), 4);
    }
}
