//! Individual disaggregated devices.
//!
//! A device is one network-attached unit of a single resource kind —
//! a CPU blade (N cores), a GPU, a DRAM sled, an SSD shelf, a SmartNIC —
//! as in Fig. 1's hardware layer. Devices track capacity, per-tenant
//! allocations, tenancy occupancy (for single-tenant placement, §3.3)
//! and health.

use crate::clock::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use udc_spec::ResourceKind;

/// Globally unique device identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Health state of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DeviceState {
    /// Accepting allocations and executing work.
    #[default]
    Healthy,
    /// Crashed: all allocations lost, no new allocations accepted.
    Failed,
}

/// Performance and cost profile of a device class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfProfile {
    /// Abstract work units per second delivered by *one* capacity unit
    /// (e.g. one core, one GPU, one MiB/s of storage bandwidth).
    pub work_units_per_sec: f64,
    /// Price of one capacity unit for one hour, in micro-dollars.
    pub micro_dollars_per_unit_hour: u64,
    /// Time to power on / attach this device class from cold.
    pub attach_latency_us: Micros,
}

impl PerfProfile {
    /// A sensible default profile for a resource kind, loosely calibrated
    /// to 2021 cloud hardware (relative magnitudes matter, not absolutes;
    /// see DESIGN.md §5).
    pub fn default_for(kind: ResourceKind) -> Self {
        match kind {
            // 1 core ≈ 100 work units/s, ~ $0.04/h.
            ResourceKind::Cpu => PerfProfile {
                work_units_per_sec: 100.0,
                micro_dollars_per_unit_hour: 40_000,
                attach_latency_us: 200,
            },
            // 1 GPU ≈ 25× a core on accelerable work, ~ $3/h.
            ResourceKind::Gpu => PerfProfile {
                work_units_per_sec: 2_500.0,
                micro_dollars_per_unit_hour: 3_000_000,
                attach_latency_us: 2_000,
            },
            // 1 FPGA ≈ 10× a core, ~ $1.6/h.
            ResourceKind::Fpga => PerfProfile {
                work_units_per_sec: 1_000.0,
                micro_dollars_per_unit_hour: 1_650_000,
                attach_latency_us: 5_000,
            },
            // Memory/storage: capacity units are MiB; work rate models
            // access bandwidth per MiB (coarse), price per MiB-hour.
            ResourceKind::Dram => PerfProfile {
                work_units_per_sec: 50.0,
                micro_dollars_per_unit_hour: 5,
                attach_latency_us: 50,
            },
            ResourceKind::Nvm => PerfProfile {
                work_units_per_sec: 20.0,
                micro_dollars_per_unit_hour: 2,
                attach_latency_us: 100,
            },
            ResourceKind::Ssd => PerfProfile {
                work_units_per_sec: 5.0,
                micro_dollars_per_unit_hour: 1,
                attach_latency_us: 300,
            },
            ResourceKind::Hdd => PerfProfile {
                work_units_per_sec: 1.0,
                micro_dollars_per_unit_hour: 0,
                attach_latency_us: 4_000,
            },
            // SmartNIC/SoC offload engine ≈ 3× a core for offloadable work.
            ResourceKind::Soc => PerfProfile {
                work_units_per_sec: 300.0,
                micro_dollars_per_unit_hour: 120_000,
                attach_latency_us: 500,
            },
        }
    }
}

/// One disaggregated device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Unique id.
    pub id: DeviceId,
    /// Resource kind this device provides.
    pub kind: ResourceKind,
    /// Total capacity in kind-specific units (cores, GPUs, MiB, ...).
    pub capacity: u64,
    /// Rack the device sits in (fabric locality).
    pub rack: u32,
    /// Performance/cost profile.
    pub perf: PerfProfile,
    /// Health.
    pub state: DeviceState,
    /// Live allocations: tenant tag -> units held.
    allocations: BTreeMap<String, u64>,
    /// When `Some(tenant)`, the device is reserved single-tenant.
    exclusive_holder: Option<String>,
}

impl Device {
    /// Creates a healthy, empty device.
    pub fn new(id: DeviceId, kind: ResourceKind, capacity: u64, rack: u32) -> Self {
        Self {
            id,
            kind,
            capacity,
            rack,
            perf: PerfProfile::default_for(kind),
            state: DeviceState::Healthy,
            allocations: BTreeMap::new(),
            exclusive_holder: None,
        }
    }

    /// Units currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Units still free (zero when failed or exclusively held by
    /// another tenant).
    pub fn free_for(&self, tenant: &str) -> u64 {
        if self.state == DeviceState::Failed {
            return 0;
        }
        match &self.exclusive_holder {
            Some(holder) if holder != tenant => 0,
            _ => self.capacity - self.used(),
        }
    }

    /// True when no tenant other than `tenant` holds any allocation.
    pub fn vacant_except(&self, tenant: &str) -> bool {
        self.allocations.keys().all(|t| t == tenant)
    }

    /// Allocates `units` to `tenant`. `exclusive` reserves the whole
    /// device single-tenant (§3.3); this requires the device to be empty
    /// of other tenants.
    ///
    /// Returns `false` without side effects when the request cannot be
    /// satisfied.
    pub fn allocate(&mut self, tenant: &str, units: u64, exclusive: bool) -> bool {
        if self.state == DeviceState::Failed || units == 0 {
            return false;
        }
        if let Some(holder) = &self.exclusive_holder {
            if holder != tenant {
                return false;
            }
        }
        if exclusive && !self.vacant_except(tenant) {
            return false;
        }
        if units > self.capacity - self.used() {
            return false;
        }
        *self.allocations.entry(tenant.to_string()).or_insert(0) += units;
        if exclusive {
            self.exclusive_holder = Some(tenant.to_string());
        }
        true
    }

    /// Releases `units` of `tenant`'s allocation (clamped to what is
    /// held). Clears exclusivity when the tenant fully departs.
    pub fn release(&mut self, tenant: &str, units: u64) {
        if let Some(held) = self.allocations.get_mut(tenant) {
            *held = held.saturating_sub(units);
            if *held == 0 {
                self.allocations.remove(tenant);
                if self.exclusive_holder.as_deref() == Some(tenant) {
                    self.exclusive_holder = None;
                }
            }
        }
    }

    /// Marks the device failed, dropping all allocations (they are lost,
    /// as §3.4's failure domains assume).
    pub fn fail(&mut self) -> Vec<String> {
        self.state = DeviceState::Failed;
        self.exclusive_holder = None;
        let victims: Vec<String> = self.allocations.keys().cloned().collect();
        self.allocations.clear();
        victims
    }

    /// Repairs a failed device (empty, healthy).
    pub fn repair(&mut self) {
        self.state = DeviceState::Healthy;
    }

    /// Is the device exclusively held (single-tenant) right now?
    pub fn is_exclusive(&self) -> bool {
        self.exclusive_holder.is_some()
    }

    /// Tenants currently holding allocations.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, u64)> {
        self.allocations.iter().map(|(t, &u)| (t.as_str(), u))
    }

    /// Cost of holding `units` for `duration_us`, in micro-dollars.
    pub fn cost_of(&self, units: u64, duration_us: Micros) -> u64 {
        // micro$ per unit-hour * units * hours.
        let hours = duration_us as f64 / 3_600_000_000.0;
        (self.perf.micro_dollars_per_unit_hour as f64 * units as f64 * hours).round() as u64
    }

    /// Time for this device to execute `work_units` with `units` of
    /// capacity allocated, in microseconds.
    pub fn exec_time_us(&self, work_units: u64, units: u64) -> Micros {
        if units == 0 {
            return Micros::MAX;
        }
        let rate = self.perf.work_units_per_sec * units as f64;
        if rate <= 0.0 {
            return Micros::MAX;
        }
        ((work_units as f64 / rate) * 1_000_000.0).ceil() as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(DeviceId(0), ResourceKind::Cpu, 64, 0)
    }

    #[test]
    fn allocate_and_release() {
        let mut d = dev();
        assert!(d.allocate("t1", 16, false));
        assert!(d.allocate("t2", 32, false));
        assert_eq!(d.used(), 48);
        assert_eq!(d.free_for("t3"), 16);
        d.release("t1", 16);
        assert_eq!(d.used(), 32);
        assert_eq!(d.tenants().count(), 1);
    }

    #[test]
    fn over_allocation_refused() {
        let mut d = dev();
        assert!(d.allocate("t1", 64, false));
        assert!(!d.allocate("t2", 1, false));
        assert_eq!(d.used(), 64);
    }

    #[test]
    fn zero_allocation_refused() {
        let mut d = dev();
        assert!(!d.allocate("t1", 0, false));
    }

    #[test]
    fn exclusive_blocks_other_tenants() {
        let mut d = dev();
        assert!(d.allocate("t1", 8, true));
        assert!(d.is_exclusive());
        assert_eq!(d.free_for("t2"), 0);
        assert!(!d.allocate("t2", 1, false));
        // The exclusive holder itself can grow.
        assert!(d.allocate("t1", 8, false));
        assert_eq!(d.used(), 16);
    }

    #[test]
    fn exclusive_requires_vacancy() {
        let mut d = dev();
        assert!(d.allocate("t1", 8, false));
        assert!(
            !d.allocate("t2", 8, true),
            "occupied device cannot go exclusive"
        );
        assert!(
            d.allocate("t1", 8, true),
            "same tenant can upgrade to exclusive"
        );
    }

    #[test]
    fn exclusivity_cleared_on_full_release() {
        let mut d = dev();
        d.allocate("t1", 8, true);
        d.release("t1", 8);
        assert!(!d.is_exclusive());
        assert!(d.allocate("t2", 4, false));
    }

    #[test]
    fn failure_drops_allocations() {
        let mut d = dev();
        d.allocate("t1", 8, false);
        d.allocate("t2", 8, false);
        let victims = d.fail();
        assert_eq!(victims, vec!["t1".to_string(), "t2".to_string()]);
        assert_eq!(d.used(), 0);
        assert_eq!(d.free_for("t1"), 0, "failed device has no free capacity");
        assert!(!d.allocate("t1", 1, false));
        d.repair();
        assert!(d.allocate("t1", 1, false));
    }

    #[test]
    fn exec_time_scales_with_allocation() {
        let d = dev();
        let t1 = d.exec_time_us(1000, 1);
        let t4 = d.exec_time_us(1000, 4);
        assert_eq!(t1, 10 * crate::clock::SEC); // 1000 wu / 100 wu-s.
        assert_eq!(t4, t1 / 4);
        assert_eq!(d.exec_time_us(1000, 0), Micros::MAX);
    }

    #[test]
    fn gpu_faster_than_cpu() {
        let cpu = Device::new(DeviceId(0), ResourceKind::Cpu, 64, 0);
        let gpu = Device::new(DeviceId(1), ResourceKind::Gpu, 8, 0);
        assert!(gpu.exec_time_us(10_000, 1) < cpu.exec_time_us(10_000, 1));
    }

    #[test]
    fn cost_proportional_to_units_and_time() {
        let d = dev();
        let one_hour = 3_600 * crate::clock::SEC;
        let c1 = d.cost_of(1, one_hour);
        assert_eq!(c1, 40_000); // $0.04 in micro-dollars.
        assert_eq!(d.cost_of(2, one_hour), 2 * c1);
        assert_eq!(d.cost_of(1, 2 * one_hour), 2 * c1);
        assert_eq!(d.cost_of(0, one_hour), 0);
    }

    #[test]
    fn release_clamps() {
        let mut d = dev();
        d.allocate("t1", 8, false);
        d.release("t1", 100);
        assert_eq!(d.used(), 0);
        d.release("ghost", 5); // No-op.
    }
}
