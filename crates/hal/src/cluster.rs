//! The datacenter: pools of every resource kind, a fabric, a clock,
//! telemetry, and failure injection — the complete hardware substrate
//! the UDC control plane manages.

use crate::clock::SimClock;
use crate::device::{Device, DeviceId};
use crate::fabric::{Fabric, FabricConfig};
use crate::failure::FailurePlan;
use crate::pool::{AllocConstraints, AllocError, Allocation, ResourcePool};
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use udc_spec::{ResourceKind, ResourceVector};
use udc_telemetry::{EventKind, FieldValue, Labels};

/// Configuration of one pool: how many devices and how large each is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Resource kind.
    pub kind: ResourceKind,
    /// Number of devices in the pool.
    pub devices: usize,
    /// Capacity units per device.
    pub capacity_per_device: u64,
}

/// Datacenter shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// Pools to create.
    pub pools: Vec<PoolConfig>,
    /// Number of racks; devices are assigned round-robin (`id % racks`),
    /// so every rack hosts a mix of device kinds — the disaggregated
    /// rack design of \[36\].
    pub racks: usize,
    /// Fabric parameters.
    pub fabric: FabricConfig,
}

impl Default for DatacenterConfig {
    fn default() -> Self {
        // A small but heterogeneous datacenter mirroring Fig. 1's device
        // mix: CPU cores, GPUs, FPGAs, DRAM/NVM sleds, SSD/HDD shelves,
        // SmartNICs.
        Self {
            pools: vec![
                PoolConfig {
                    kind: ResourceKind::Cpu,
                    devices: 32,
                    capacity_per_device: 64,
                },
                PoolConfig {
                    kind: ResourceKind::Gpu,
                    devices: 8,
                    capacity_per_device: 8,
                },
                PoolConfig {
                    kind: ResourceKind::Fpga,
                    devices: 4,
                    capacity_per_device: 4,
                },
                PoolConfig {
                    kind: ResourceKind::Dram,
                    devices: 16,
                    capacity_per_device: 256 * 1024, // 256 GiB sleds.
                },
                PoolConfig {
                    kind: ResourceKind::Nvm,
                    devices: 8,
                    capacity_per_device: 512 * 1024,
                },
                PoolConfig {
                    kind: ResourceKind::Ssd,
                    devices: 16,
                    capacity_per_device: 2 * 1024 * 1024, // 2 TiB shelves.
                },
                PoolConfig {
                    kind: ResourceKind::Hdd,
                    devices: 8,
                    capacity_per_device: 8 * 1024 * 1024,
                },
                PoolConfig {
                    kind: ResourceKind::Soc,
                    devices: 8,
                    capacity_per_device: 16,
                },
            ],
            racks: 8,
            fabric: FabricConfig::default(),
        }
    }
}

/// Devices whose state changed during one [`Datacenter::tick_events`]
/// interval, in event order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Devices that crashed (allocations and isolates on them are lost).
    pub crashed: Vec<DeviceId>,
    /// Devices that came back healthy (capacity returned to the pool).
    pub repaired: Vec<DeviceId>,
}

impl TickReport {
    /// True when no failure event fired in the interval.
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty() && self.repaired.is_empty()
    }
}

/// A simulated disaggregated datacenter.
#[derive(Debug)]
pub struct Datacenter {
    clock: SimClock,
    pools: BTreeMap<ResourceKind, ResourcePool>,
    fabric: Fabric,
    telemetry: Telemetry,
    /// Control-plane observability hub (disabled by default); distinct
    /// from the legacy `telemetry` counters above, which feed the
    /// fine-tuner's usage estimator.
    obs: udc_telemetry::Telemetry,
    failure_plan: FailurePlan,
    next_device_id: u32,
    racks: usize,
}

impl Datacenter {
    /// Builds a datacenter from a configuration.
    pub fn new(config: DatacenterConfig) -> Self {
        let mut dc = Self {
            clock: SimClock::new(),
            pools: BTreeMap::new(),
            fabric: Fabric::new(config.fabric),
            telemetry: Telemetry::new(),
            obs: udc_telemetry::Telemetry::disabled(),
            failure_plan: FailurePlan::none(),
            next_device_id: 0,
            racks: config.racks.max(1),
        };
        for pc in &config.pools {
            for _ in 0..pc.devices {
                dc.add_device(pc.kind, pc.capacity_per_device);
            }
        }
        dc
    }

    /// Adds one device to the matching pool (created on demand) and
    /// registers it with the fabric. Returns its id.
    pub fn add_device(&mut self, kind: ResourceKind, capacity: u64) -> DeviceId {
        let id = DeviceId(self.next_device_id);
        self.next_device_id += 1;
        let rack = (id.0 as usize % self.racks) as u32;
        let device = Device::new(id, kind, capacity, rack);
        self.fabric.place_device(id, rack);
        self.pools
            .entry(kind)
            .or_insert_with(|| ResourcePool::new(kind))
            .add_device(device);
        id
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry sink.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Installs the control-plane observability hub. The hub's clock is
    /// pointed at this datacenter's [`SimClock`] so spans and events are
    /// stamped with simulated time, and the fabric starts reporting
    /// transfer counters into the same hub.
    pub fn set_observer(&mut self, obs: udc_telemetry::Telemetry) {
        let clock = self.clock.clone();
        obs.set_clock(move || clock.now());
        self.fabric.set_observer(obs.clone());
        self.obs = obs;
    }

    /// The control-plane observability hub (disabled unless installed).
    pub fn observer(&self) -> &udc_telemetry::Telemetry {
        &self.obs
    }

    /// Reports each pool's used units as `hal.pool.<kind>.used_units`
    /// gauges; the gauges' high-water marks give allocation watermarks.
    /// Called after every vector allocation/release; callers that carve
    /// pools directly via [`Datacenter::pool_mut`] (the scheduler)
    /// should call it themselves once their allocations settle.
    pub fn observe_pool_levels(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        for pool in self.pools.values() {
            self.obs.gauge_set(
                &format!("hal.pool.{}.used_units", pool.kind().name()),
                Labels::none(),
                pool.total_used() as i64,
            );
        }
    }

    /// The pool for a kind, if it exists.
    pub fn pool(&self, kind: ResourceKind) -> Option<&ResourcePool> {
        self.pools.get(&kind)
    }

    /// Mutable pool access.
    pub fn pool_mut(&mut self, kind: ResourceKind) -> Option<&mut ResourcePool> {
        self.pools.get_mut(&kind)
    }

    /// Installs a failure plan.
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure_plan = plan;
    }

    /// Advances virtual time by `delta_us`, applying any failure events
    /// that become due. Returns the device ids that crashed during the
    /// interval (for the runtime to trigger recovery, §3.4).
    pub fn tick(&mut self, delta_us: u64) -> Vec<DeviceId> {
        self.tick_events(delta_us).crashed
    }

    /// Like [`Datacenter::tick`], but reports repairs as well as
    /// crashes. The repair loop needs both: crashes start repairs,
    /// repairs returning capacity re-heal `Degraded` deployments.
    pub fn tick_events(&mut self, delta_us: u64) -> TickReport {
        let now = self.clock.advance(delta_us);
        let mut crashed = Vec::new();
        let mut repaired = Vec::new();
        for ev in self.failure_plan.due(now) {
            for pool in self.pools.values_mut() {
                if let Some(mut d) = pool.device_mut(ev.device) {
                    if ev.crash {
                        let victims = d.fail();
                        self.telemetry.incr("device_crashes", 1);
                        self.obs.event(
                            EventKind::Failure,
                            Labels::none(),
                            &[
                                ("device", FieldValue::from(ev.device.0)),
                                ("action", FieldValue::from("crash")),
                                ("evicted_allocations", FieldValue::from(victims.len())),
                            ],
                        );
                        crashed.push(ev.device);
                    } else {
                        d.repair();
                        self.telemetry.incr("device_repairs", 1);
                        self.obs.event(
                            EventKind::Failure,
                            Labels::none(),
                            &[
                                ("device", FieldValue::from(ev.device.0)),
                                ("action", FieldValue::from("repair")),
                            ],
                        );
                        repaired.push(ev.device);
                    }
                }
            }
        }
        TickReport { crashed, repaired }
    }

    /// Allocates a multi-kind resource vector for `tenant`: each
    /// dimension is carved from the corresponding pool. All-or-nothing —
    /// on failure every partial slice is released.
    pub fn allocate_vector(
        &mut self,
        tenant: &str,
        demand: &ResourceVector,
        constraints: &AllocConstraints,
    ) -> Result<Vec<Allocation>, AllocError> {
        let mut held: Vec<Allocation> = Vec::new();
        for (kind, units) in demand.iter() {
            let pool = match self.pools.get_mut(&kind) {
                Some(p) => p,
                None => {
                    for a in &held {
                        self.release(a);
                    }
                    return Err(AllocError::Insufficient {
                        kind,
                        requested: units,
                        available: 0,
                    });
                }
            };
            match pool.allocate(tenant, units, constraints) {
                Ok(a) => held.push(a),
                Err(e) => {
                    for a in &held {
                        self.release(a);
                    }
                    return Err(e);
                }
            }
        }
        self.telemetry.incr("allocations", 1);
        if self.obs.is_enabled() {
            self.obs.incr("hal.allocations", Labels::tenant(tenant), 1);
            self.observe_pool_levels();
        }
        Ok(held)
    }

    /// Releases one allocation.
    pub fn release(&mut self, alloc: &Allocation) {
        if let Some(pool) = self.pools.get_mut(&alloc.kind) {
            pool.release(alloc);
        }
        self.observe_pool_levels();
    }

    /// Overall utilization per kind: (kind, used, capacity).
    pub fn utilization_report(&self) -> Vec<(ResourceKind, u64, u64)> {
        self.pools
            .values()
            .map(|p| (p.kind(), p.total_used(), p.total_capacity()))
            .collect()
    }

    /// Aggregate utilization across compute kinds in \[0, 1\] — the
    /// headline metric for experiment E4 (2× consolidation claim).
    pub fn compute_utilization(&self) -> f64 {
        let (mut used, mut cap) = (0u64, 0u64);
        for p in self.pools.values() {
            if p.kind().is_compute() {
                used += p.total_used();
                cap += p.total_capacity();
            }
        }
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    /// All device ids, in id order.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        let mut ids: Vec<DeviceId> = self
            .pools
            .values()
            .flat_map(|p| p.devices().map(|d| d.id))
            .collect();
        ids.sort();
        ids
    }

    /// Looks up a device across pools.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.pools.values().find_map(|p| p.device(id))
    }
}

impl Default for Datacenter {
    fn default() -> Self {
        Self::new(DatacenterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;

    fn small_dc() -> Datacenter {
        Datacenter::new(DatacenterConfig {
            pools: vec![
                PoolConfig {
                    kind: ResourceKind::Cpu,
                    devices: 2,
                    capacity_per_device: 8,
                },
                PoolConfig {
                    kind: ResourceKind::Gpu,
                    devices: 1,
                    capacity_per_device: 4,
                },
            ],
            racks: 2,
            fabric: FabricConfig::default(),
        })
    }

    #[test]
    fn builds_pools_and_devices() {
        let dc = small_dc();
        assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().len(), 2);
        assert_eq!(dc.pool(ResourceKind::Gpu).unwrap().len(), 1);
        assert!(dc.pool(ResourceKind::Ssd).is_none());
        assert_eq!(dc.device_ids().len(), 3);
    }

    #[test]
    fn racks_assigned_round_robin() {
        let dc = small_dc();
        assert_eq!(dc.fabric().rack_of(DeviceId(0)), Some(0));
        assert_eq!(dc.fabric().rack_of(DeviceId(1)), Some(1));
        assert_eq!(dc.fabric().rack_of(DeviceId(2)), Some(0));
    }

    #[test]
    fn vector_allocation_all_or_nothing() {
        let mut dc = small_dc();
        let demand = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Gpu, 2);
        let allocs = dc
            .allocate_vector("t", &demand, &AllocConstraints::default())
            .unwrap();
        assert_eq!(allocs.len(), 2);

        // A demand whose GPU part cannot be met must release the CPU part.
        let too_big = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Gpu, 100);
        assert!(dc
            .allocate_vector("t", &too_big, &AllocConstraints::default())
            .is_err());
        assert_eq!(
            dc.pool(ResourceKind::Cpu).unwrap().total_used(),
            4,
            "rollback"
        );
    }

    #[test]
    fn missing_pool_is_insufficient() {
        let mut dc = small_dc();
        let demand = ResourceVector::new().with(ResourceKind::Fpga, 1);
        let err = dc
            .allocate_vector("t", &demand, &AllocConstraints::default())
            .unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { available: 0, .. }));
    }

    #[test]
    fn tick_applies_failures() {
        let mut dc = small_dc();
        dc.set_failure_plan(FailurePlan::from_events(vec![
            FailureEvent {
                at_us: 100,
                device: DeviceId(0),
                crash: true,
            },
            FailureEvent {
                at_us: 500,
                device: DeviceId(0),
                crash: false,
            },
        ]));
        let crashed = dc.tick(150);
        assert_eq!(crashed, vec![DeviceId(0)]);
        assert_eq!(dc.telemetry().counter("device_crashes"), 1);
        assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().total_capacity(), 8);
        let crashed = dc.tick(1_000);
        assert!(crashed.is_empty());
        assert_eq!(dc.telemetry().counter("device_repairs"), 1);
        assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().total_capacity(), 16);
    }

    #[test]
    fn compute_utilization_counts_compute_only() {
        let mut dc = small_dc();
        let demand = ResourceVector::new().with(ResourceKind::Cpu, 8);
        dc.allocate_vector("t", &demand, &AllocConstraints::default())
            .unwrap();
        // 8 of 16 CPU + 0 of 4 GPU = 8/20.
        assert!((dc.compute_utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_allocations_traffic_and_sim_time() {
        let mut dc = small_dc();
        let obs = udc_telemetry::Telemetry::enabled();
        dc.set_observer(obs.clone());
        dc.clock().advance(42);

        let demand = ResourceVector::new().with(ResourceKind::Cpu, 4);
        let allocs = dc
            .allocate_vector("acme", &demand, &AllocConstraints::default())
            .unwrap();
        assert_eq!(obs.counter("hal.allocations", &Labels::tenant("acme")), 1);
        assert_eq!(
            obs.gauge("hal.pool.cpu.used_units", &Labels::none()),
            Some((4, 4))
        );
        dc.release(&allocs[0]);
        // Current level falls, the high-water mark stays.
        assert_eq!(
            obs.gauge("hal.pool.cpu.used_units", &Labels::none()),
            Some((0, 4))
        );

        // Devices 0 and 2 share rack 0 (round-robin over 2 racks).
        dc.fabric().transfer_us(DeviceId(0), DeviceId(2), 100);
        assert_eq!(obs.counter("hal.fabric.transfers", &Labels::none()), 1);
        assert_eq!(
            obs.counter("hal.fabric.intra_rack_bytes", &Labels::none()),
            100
        );

        // Spans opened on the hub are stamped with simulated time.
        obs.span("hal.test").exit();
        assert_eq!(obs.snapshot().spans[0].start_us, 42);
    }

    #[test]
    fn default_datacenter_is_heterogeneous() {
        let dc = Datacenter::default();
        for kind in ResourceKind::ALL {
            assert!(dc.pool(kind).is_some(), "pool for {kind} missing");
        }
    }
}
