//! Deterministic failure injection (§3.4).
//!
//! Experiments E8/E9 need device crashes at controlled times. A
//! [`FailurePlan`] is generated from a seed and a crash rate, producing a
//! schedule of crash/repair events that the datacenter applies as
//! virtual time advances.

use crate::clock::Micros;
use crate::device::DeviceId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the event fires.
    pub at_us: Micros,
    /// The affected device.
    pub device: DeviceId,
    /// `true` = crash, `false` = repair.
    pub crash: bool,
}

/// A deterministic schedule of crash and repair events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
    cursor: usize,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit events (sorted by time internally).
    pub fn from_events(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| (e.at_us, e.device, e.crash));
        Self { events, cursor: 0 }
    }

    /// Generates a random plan: each of `devices` crashes independently
    /// with probability `crash_prob` within `horizon_us`, and is repaired
    /// `repair_after_us` later. Deterministic per `seed`.
    pub fn random(
        devices: &[DeviceId],
        crash_prob: f64,
        horizon_us: Micros,
        repair_after_us: Micros,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &d in devices {
            if rng.gen_bool(crash_prob.clamp(0.0, 1.0)) {
                let at = rng.gen_range(0..horizon_us.max(1));
                events.push(FailureEvent {
                    at_us: at,
                    device: d,
                    crash: true,
                });
                events.push(FailureEvent {
                    at_us: at.saturating_add(repair_after_us),
                    device: d,
                    crash: false,
                });
            }
        }
        Self::from_events(events)
    }

    /// Pops every event due at or before `now_us`, in order.
    pub fn due(&mut self, now_us: Micros) -> Vec<FailureEvent> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].at_us <= now_us {
            out.push(self.events[self.cursor]);
            self.cursor += 1;
        }
        out
    }

    /// Time of the next pending event, if any.
    pub fn next_at(&self) -> Option<Micros> {
        self.events.get(self.cursor).map(|e| e.at_us)
    }

    /// Total number of events (fired and pending).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut p = FailurePlan::none();
        assert!(p.due(u64::MAX).is_empty());
        assert_eq!(p.next_at(), None);
    }

    #[test]
    fn events_fire_in_order_once() {
        let mut p = FailurePlan::from_events(vec![
            FailureEvent {
                at_us: 200,
                device: DeviceId(1),
                crash: true,
            },
            FailureEvent {
                at_us: 100,
                device: DeviceId(0),
                crash: true,
            },
        ]);
        assert_eq!(p.next_at(), Some(100));
        let first = p.due(150);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].device, DeviceId(0));
        let second = p.due(1_000);
        assert_eq!(second.len(), 1);
        assert!(p.due(u64::MAX).is_empty(), "events fire exactly once");
    }

    #[test]
    fn random_plan_deterministic_per_seed() {
        let devices: Vec<DeviceId> = (0..100).map(DeviceId).collect();
        let a = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 7);
        let b = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 7);
        assert_eq!(a.events, b.events);
        let c = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn crash_paired_with_repair() {
        let devices: Vec<DeviceId> = (0..50).map(DeviceId).collect();
        let p = FailurePlan::random(&devices, 1.0, 1_000, 500, 1);
        assert_eq!(p.events.len(), 100, "every device crashes and repairs");
        let crashes = p.events.iter().filter(|e| e.crash).count();
        assert_eq!(crashes, 50);
    }

    #[test]
    fn zero_probability_no_events() {
        let devices: Vec<DeviceId> = (0..50).map(DeviceId).collect();
        let p = FailurePlan::random(&devices, 0.0, 1_000, 500, 1);
        assert!(p.is_empty());
    }
}
