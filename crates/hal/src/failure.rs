//! Deterministic failure injection (§3.4).
//!
//! Experiments E8/E9 need device crashes at controlled times. A
//! [`FailurePlan`] is generated from a seed and a crash rate, producing a
//! schedule of crash/repair events that the datacenter applies as
//! virtual time advances.

use crate::clock::Micros;
use crate::device::DeviceId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the event fires.
    pub at_us: Micros,
    /// The affected device.
    pub device: DeviceId,
    /// `true` = crash, `false` = repair.
    pub crash: bool,
}

/// A deterministic schedule of crash and repair events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
    cursor: usize,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit events (sorted by time internally).
    /// At equal timestamps a crash orders before a repair of the same
    /// device, so a zero-delay crash/repair pair nets out to a healthy
    /// device instead of silently dropping the repair.
    pub fn from_events(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| (e.at_us, e.device, std::cmp::Reverse(e.crash)));
        Self { events, cursor: 0 }
    }

    /// Generates a random plan: each of `devices` crashes independently
    /// with probability `crash_prob` within `horizon_us`, and is repaired
    /// `repair_after_us` later. Deterministic per `seed`.
    ///
    /// The repair always fires *strictly* after its crash: a
    /// `repair_after_us` of zero is promoted to one microsecond, so a
    /// crash at `horizon_us - 1` still gets a reachable repair at
    /// `horizon_us` rather than tying with (and sorting around) the
    /// crash that the drain cursor has already passed.
    pub fn random(
        devices: &[DeviceId],
        crash_prob: f64,
        horizon_us: Micros,
        repair_after_us: Micros,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &d in devices {
            if rng.gen_bool(crash_prob.clamp(0.0, 1.0)) {
                let at = rng.gen_range(0..horizon_us.max(1));
                events.push(FailureEvent {
                    at_us: at,
                    device: d,
                    crash: true,
                });
                events.push(FailureEvent {
                    at_us: at.saturating_add(repair_after_us.max(1)),
                    device: d,
                    crash: false,
                });
            }
        }
        Self::from_events(events)
    }

    /// Returns the same plan with every event delayed by `base_us`.
    /// Plans are generated on a `[0, horizon)` window; shifting anchors
    /// that window to a clock that has already advanced (e.g. after
    /// executing a workload), so the events still lie in the future.
    pub fn shifted(mut self, base_us: Micros) -> Self {
        for e in &mut self.events {
            e.at_us = e.at_us.saturating_add(base_us);
        }
        self
    }

    /// Pops every event due at or before `now_us`, in order.
    pub fn due(&mut self, now_us: Micros) -> Vec<FailureEvent> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].at_us <= now_us {
            out.push(self.events[self.cursor]);
            self.cursor += 1;
        }
        out
    }

    /// Time of the next pending event, if any.
    pub fn next_at(&self) -> Option<Micros> {
        self.events.get(self.cursor).map(|e| e.at_us)
    }

    /// Total number of events (fired and pending).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut p = FailurePlan::none();
        assert!(p.due(u64::MAX).is_empty());
        assert_eq!(p.next_at(), None);
    }

    #[test]
    fn events_fire_in_order_once() {
        let mut p = FailurePlan::from_events(vec![
            FailureEvent {
                at_us: 200,
                device: DeviceId(1),
                crash: true,
            },
            FailureEvent {
                at_us: 100,
                device: DeviceId(0),
                crash: true,
            },
        ]);
        assert_eq!(p.next_at(), Some(100));
        let first = p.due(150);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].device, DeviceId(0));
        let second = p.due(1_000);
        assert_eq!(second.len(), 1);
        assert!(p.due(u64::MAX).is_empty(), "events fire exactly once");
    }

    #[test]
    fn random_plan_deterministic_per_seed() {
        let devices: Vec<DeviceId> = (0..100).map(DeviceId).collect();
        let a = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 7);
        let b = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 7);
        assert_eq!(a.events, b.events);
        let c = FailurePlan::random(&devices, 0.3, 1_000_000, 10_000, 8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn shifted_rebases_every_event_and_keeps_order() {
        let devices: Vec<DeviceId> = (0..10).map(DeviceId).collect();
        let base = FailurePlan::random(&devices, 1.0, 1_000, 500, 3);
        let mut moved = base.clone().shifted(5_000);
        assert_eq!(moved.events.len(), base.events.len());
        for (m, b) in moved.events.iter().zip(&base.events) {
            assert_eq!(m.at_us, b.at_us + 5_000);
            assert_eq!((m.device, m.crash), (b.device, b.crash));
        }
        // Nothing fires before the new window opens.
        assert!(moved.due(4_999).is_empty());
        assert_eq!(moved.next_at(), Some(base.events[0].at_us + 5_000));
    }

    #[test]
    fn crash_paired_with_repair() {
        let devices: Vec<DeviceId> = (0..50).map(DeviceId).collect();
        let p = FailurePlan::random(&devices, 1.0, 1_000, 500, 1);
        assert_eq!(p.events.len(), 100, "every device crashes and repairs");
        let crashes = p.events.iter().filter(|e| e.crash).count();
        assert_eq!(crashes, 50);
    }

    #[test]
    fn zero_repair_delay_still_repairs_strictly_after_crash() {
        let devices: Vec<DeviceId> = (0..64).map(DeviceId).collect();
        let mut p = FailurePlan::random(&devices, 1.0, 1_000, 0, 42);
        // Every repair is strictly later than its device's crash.
        let mut crash_at = std::collections::BTreeMap::new();
        for e in &p.events {
            if e.crash {
                crash_at.insert(e.device, e.at_us);
            }
        }
        for e in &p.events {
            if !e.crash {
                let c = crash_at[&e.device];
                assert!(
                    e.at_us > c,
                    "repair for {:?} at {} not strictly after crash at {}",
                    e.device,
                    e.at_us,
                    c
                );
            }
        }
        // Draining everything nets every device back to healthy:
        // the crash always arrives before its repair.
        let mut down = std::collections::BTreeSet::new();
        for e in p.due(u64::MAX) {
            if e.crash {
                down.insert(e.device);
            } else {
                assert!(down.remove(&e.device), "repair without prior crash");
            }
        }
        assert!(down.is_empty(), "every crash got a repair");
    }

    #[test]
    fn crash_at_horizon_edge_keeps_repair_reachable() {
        // A crash landing on the last tick of the horizon must not tie
        // with its zero-delay repair: the pair would sort around an
        // already-drained cursor and the repair would be lost.
        let horizon = 1_000u64;
        // Seed-scan for a plan whose crash lands exactly at horizon - 1.
        let device = [DeviceId(0)];
        let plan = (0..10_000)
            .map(|seed| FailurePlan::random(&device, 1.0, horizon, 0, seed))
            .find(|p| p.events.iter().any(|e| e.crash && e.at_us == horizon - 1))
            .expect("some seed crashes at horizon - 1");
        let mut p = plan;
        // Drain to the crash tick: only the crash fires.
        let first = p.due(horizon - 1);
        assert_eq!(first.len(), 1);
        assert!(first[0].crash);
        // The repair is still pending (not skipped behind the cursor)
        // and fires on the next drain.
        assert_eq!(p.next_at(), Some(horizon));
        let second = p.due(horizon);
        assert_eq!(second.len(), 1);
        assert!(!second[0].crash, "repair fires after the crash");
    }

    #[test]
    fn same_timestamp_explicit_pair_orders_crash_first() {
        let mut p = FailurePlan::from_events(vec![
            FailureEvent {
                at_us: 5,
                device: DeviceId(3),
                crash: false,
            },
            FailureEvent {
                at_us: 5,
                device: DeviceId(3),
                crash: true,
            },
        ]);
        let fired = p.due(5);
        assert_eq!(fired.len(), 2);
        assert!(fired[0].crash, "crash applies before same-tick repair");
        assert!(!fired[1].crash, "device nets out healthy");
    }

    #[test]
    fn zero_probability_no_events() {
        let devices: Vec<DeviceId> = (0..50).map(DeviceId).collect();
        let p = FailurePlan::random(&devices, 0.0, 1_000, 500, 1);
        assert!(p.is_empty());
    }
}
