//! The datacenter network fabric connecting disaggregated devices.
//!
//! Disaggregation trades local-bus access for network hops, so placement
//! quality (locality, §3.1) shows up as fabric traffic. The model is
//! rack-aware: same-device access is free, same-rack hops cost a small
//! RTT, cross-rack hops traverse the spine. Bandwidth is modelled as a
//! per-link serialization rate.

use crate::clock::Micros;
use crate::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use udc_telemetry::{Labels, Telemetry};

/// Where a device sits in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Rack number.
    pub rack: u32,
}

/// Fabric latency/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// One-way latency between two devices in the same rack (ToR hop).
    pub intra_rack_latency_us: Micros,
    /// One-way latency across racks (through the spine).
    pub cross_rack_latency_us: Micros,
    /// Intra-rack link bandwidth in bytes per microsecond
    /// (12.5 * 1024 = 100 Gb/s).
    pub bandwidth_bytes_per_us: f64,
    /// Cross-rack (spine) bandwidth per flow; spines are typically
    /// oversubscribed (we default to 4:1).
    pub cross_rack_bandwidth_bytes_per_us: f64,
}

/// The fabric: device locations plus traffic accounting.
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    config: FabricConfig,
    locations: BTreeMap<DeviceId, Location>,
    /// (bytes moved intra-rack, bytes moved cross-rack); RefCell so
    /// transfer accounting works through a shared reference.
    traffic: RefCell<Traffic>,
    /// Observability hub; disabled (no-op) unless installed via
    /// [`Fabric::set_observer`].
    obs: Telemetry,
}

#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    intra_rack_bytes: u64,
    cross_rack_bytes: u64,
    transfers: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        // 100 Gb/s links, 2 us ToR hop, 10 us spine traversal — typical
        // 2021 datacenter numbers (the relative shape is what matters).
        Self {
            intra_rack_latency_us: 2,
            cross_rack_latency_us: 10,
            bandwidth_bytes_per_us: 12.5 * 1024.0,
            cross_rack_bandwidth_bytes_per_us: 12.5 * 1024.0 / 4.0,
        }
    }
}

impl Fabric {
    /// Creates a fabric with the given parameters.
    pub fn new(config: FabricConfig) -> Self {
        Self {
            config,
            locations: BTreeMap::new(),
            traffic: RefCell::new(Traffic::default()),
            obs: Telemetry::disabled(),
        }
    }

    /// Installs the observability hub; transfers are reported as
    /// `hal.fabric.*` counters from then on.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// Registers a device's location.
    pub fn place_device(&mut self, id: DeviceId, rack: u32) {
        self.locations.insert(id, Location { rack });
    }

    /// The rack a device sits in (None if unregistered).
    pub fn rack_of(&self, id: DeviceId) -> Option<u32> {
        self.locations.get(&id).map(|l| l.rack)
    }

    /// One-way latency between two devices, ignoring payload size.
    pub fn latency_us(&self, a: DeviceId, b: DeviceId) -> Micros {
        if a == b {
            return 0;
        }
        match (self.rack_of(a), self.rack_of(b)) {
            (Some(ra), Some(rb)) if ra == rb => self.config.intra_rack_latency_us,
            _ => self.config.cross_rack_latency_us,
        }
    }

    /// Time to move `bytes` from `a` to `b`, recording the traffic.
    /// Cross-rack flows pay the (oversubscribed) spine bandwidth.
    pub fn transfer_us(&self, a: DeviceId, b: DeviceId, bytes: u64) -> Micros {
        let latency = self.latency_us(a, b);
        if a == b {
            return 0;
        }
        let same_rack = matches!(
            (self.rack_of(a), self.rack_of(b)),
            (Some(ra), Some(rb)) if ra == rb
        );
        let bandwidth = if same_rack {
            self.config.bandwidth_bytes_per_us
        } else {
            self.config.cross_rack_bandwidth_bytes_per_us
        };
        let serialization = (bytes as f64 / bandwidth).ceil() as Micros;
        {
            let mut t = self.traffic.borrow_mut();
            t.transfers += 1;
            if same_rack {
                t.intra_rack_bytes += bytes;
            } else {
                t.cross_rack_bytes += bytes;
            }
        }
        self.obs.incr("hal.fabric.transfers", Labels::none(), 1);
        let bytes_series = if same_rack {
            "hal.fabric.intra_rack_bytes"
        } else {
            "hal.fabric.cross_rack_bytes"
        };
        self.obs.incr(bytes_series, Labels::none(), bytes);
        latency + serialization
    }

    /// Total bytes moved (intra-rack, cross-rack) — the locality metric
    /// of experiment E13.
    pub fn traffic_bytes(&self) -> (u64, u64) {
        let t = self.traffic.borrow();
        (t.intra_rack_bytes, t.cross_rack_bytes)
    }

    /// Number of transfers recorded.
    pub fn transfer_count(&self) -> u64 {
        self.traffic.borrow().transfers
    }

    /// Resets traffic counters (between experiment runs).
    pub fn reset_traffic(&self) {
        *self.traffic.borrow_mut() = Traffic::default();
    }

    /// The fabric configuration.
    pub fn config(&self) -> FabricConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        let mut f = Fabric::new(FabricConfig::default());
        f.place_device(DeviceId(0), 0);
        f.place_device(DeviceId(1), 0);
        f.place_device(DeviceId(2), 1);
        f
    }

    #[test]
    fn same_device_free() {
        let f = fabric();
        assert_eq!(f.latency_us(DeviceId(0), DeviceId(0)), 0);
        assert_eq!(f.transfer_us(DeviceId(0), DeviceId(0), 1 << 20), 0);
        assert_eq!(f.transfer_count(), 0);
    }

    #[test]
    fn intra_rack_cheaper_than_cross_rack() {
        let f = fabric();
        let intra = f.latency_us(DeviceId(0), DeviceId(1));
        let cross = f.latency_us(DeviceId(0), DeviceId(2));
        assert!(intra < cross);
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let f = fabric();
        let small = f.transfer_us(DeviceId(0), DeviceId(1), 1);
        let big = f.transfer_us(DeviceId(0), DeviceId(1), 10 << 20);
        assert!(big > small);
        // 10 MiB over 100 Gb/s ≈ 819 us.
        assert!(big > 500 && big < 2_000, "{big}");
    }

    #[test]
    fn cross_rack_pays_oversubscription() {
        let f = fabric();
        let bytes = 100 << 20;
        let intra = f.transfer_us(DeviceId(0), DeviceId(1), bytes);
        let cross = f.transfer_us(DeviceId(0), DeviceId(2), bytes);
        assert!(
            cross > 3 * intra,
            "spine is 4:1 oversubscribed: {cross} vs {intra}"
        );
    }

    #[test]
    fn traffic_accounted_by_locality() {
        let f = fabric();
        f.transfer_us(DeviceId(0), DeviceId(1), 100);
        f.transfer_us(DeviceId(0), DeviceId(2), 200);
        assert_eq!(f.traffic_bytes(), (100, 200));
        assert_eq!(f.transfer_count(), 2);
        f.reset_traffic();
        assert_eq!(f.traffic_bytes(), (0, 0));
    }

    #[test]
    fn unregistered_device_treated_as_cross_rack() {
        let f = fabric();
        assert_eq!(
            f.latency_us(DeviceId(0), DeviceId(99)),
            FabricConfig::default().cross_rack_latency_us
        );
    }
}
