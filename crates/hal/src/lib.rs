//! # udc-hal — simulated disaggregated datacenter hardware
//!
//! The paper's §3.2 identifies *hardware resource disaggregation* as the
//! substrate UDC runs on: "Resource disaggregation splits traditional
//! servers into different types of network-attached devices, often
//! organized as resource pools. Fulfilling users' resource demands would
//! then simply be allocating the exact amount from the corresponding
//! resource pools (instead of a bin-packing problem with traditional
//! servers)."
//!
//! This crate provides that substrate as a deterministic simulator:
//!
//! - [`clock::SimClock`] — discrete-event virtual time (microseconds);
//! - [`device::Device`] — one network-attached device of a single
//!   [`udc_spec::ResourceKind`], with capacity, performance and cost;
//! - [`pool::ResourcePool`] — a pool of devices of one kind with
//!   exact-fit allocation and utilization accounting;
//! - [`fabric::Fabric`] — rack-aware network latency/bandwidth model;
//! - [`cluster::Datacenter`] — pools + fabric + clock, the object the
//!   scheduler (`udc-sched`) places modules onto;
//! - [`telemetry::Telemetry`] — counters and utilization sampling that
//!   drive §3.2's runtime fine-tuning;
//! - [`failure::FailurePlan`] — deterministic device-crash injection for
//!   §3.4's failure-handling experiments.
//!
//! The simulator is *deterministic*: all randomness flows through seeded
//! RNGs so every experiment is reproducible.

pub mod clock;
pub mod cluster;
pub mod device;
pub mod fabric;
pub mod failure;
pub mod linear;
pub mod pool;
pub mod telemetry;

pub use clock::SimClock;
pub use cluster::{Datacenter, DatacenterConfig, PoolConfig, TickReport};
pub use device::{Device, DeviceId, DeviceState, PerfProfile};
pub use fabric::{Fabric, FabricConfig, Location};
pub use failure::{FailureEvent, FailurePlan};
pub use pool::{AllocConstraints, AllocError, Allocation, ResourcePool, Slice};
pub use telemetry::{Telemetry, UtilizationSample};
