//! Operation-preference scheduling (§3.4, Table 1's "Reader
//! preference"): when reads and writes contend for a data module, the
//! user chooses which class is served first.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use udc_spec::OpPreference;

/// The class of a queued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// A queued operation with its arrival time (for wait accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Operation class.
    pub kind: OpKind,
    /// Arrival time (microseconds, caller-defined epoch).
    pub arrived_us: u64,
    /// Caller-assigned tag (e.g. request id).
    pub tag: u64,
}

/// A two-class queue honouring an [`OpPreference`].
///
/// `Reader` drains all reads before any write (and vice versa for
/// `Writer`); `None` is plain FIFO. A starvation bound prevents complete
/// lock-out: after `starvation_bound` consecutive preferred operations,
/// one non-preferred operation is served.
#[derive(Debug, Clone)]
pub struct PreferenceQueue {
    preference: OpPreference,
    reads: VecDeque<Op>,
    writes: VecDeque<Op>,
    fifo: VecDeque<Op>,
    starvation_bound: u32,
    preferred_streak: u32,
}

impl PreferenceQueue {
    /// Creates a queue with the given preference and starvation bound.
    pub fn new(preference: OpPreference, starvation_bound: u32) -> Self {
        Self {
            preference,
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            fifo: VecDeque::new(),
            starvation_bound: starvation_bound.max(1),
            preferred_streak: 0,
        }
    }

    /// Enqueues an operation.
    pub fn push(&mut self, op: Op) {
        match self.preference {
            OpPreference::None => self.fifo.push_back(op),
            _ => match op.kind {
                OpKind::Read => self.reads.push_back(op),
                OpKind::Write => self.writes.push_back(op),
            },
        }
    }

    /// Dequeues the next operation to serve.
    pub fn pop(&mut self) -> Option<Op> {
        match self.preference {
            OpPreference::None => self.fifo.pop_front(),
            OpPreference::Reader => self.pop_pref(true),
            OpPreference::Writer => self.pop_pref(false),
        }
    }

    fn pop_pref(&mut self, prefer_reads: bool) -> Option<Op> {
        let (pref, other) = if prefer_reads {
            (&mut self.reads, &mut self.writes)
        } else {
            (&mut self.writes, &mut self.reads)
        };
        // Anti-starvation: yield to the other class periodically.
        if self.preferred_streak >= self.starvation_bound {
            if let Some(op) = other.pop_front() {
                self.preferred_streak = 0;
                return Some(op);
            }
        }
        if let Some(op) = pref.pop_front() {
            self.preferred_streak += 1;
            Some(op)
        } else {
            self.preferred_streak = 0;
            other.pop_front()
        }
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len() + self.fifo.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, tag: u64) -> Op {
        Op {
            kind,
            arrived_us: tag,
            tag,
        }
    }

    #[test]
    fn fifo_when_no_preference() {
        let mut q = PreferenceQueue::new(OpPreference::None, 8);
        q.push(op(OpKind::Write, 1));
        q.push(op(OpKind::Read, 2));
        q.push(op(OpKind::Write, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|o| o.tag).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn reader_preference_serves_reads_first() {
        let mut q = PreferenceQueue::new(OpPreference::Reader, 100);
        q.push(op(OpKind::Write, 1));
        q.push(op(OpKind::Read, 2));
        q.push(op(OpKind::Write, 3));
        q.push(op(OpKind::Read, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|o| o.tag).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn writer_preference_serves_writes_first() {
        let mut q = PreferenceQueue::new(OpPreference::Writer, 100);
        q.push(op(OpKind::Read, 1));
        q.push(op(OpKind::Write, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|o| o.tag).collect();
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn starvation_bound_lets_other_class_through() {
        let mut q = PreferenceQueue::new(OpPreference::Reader, 2);
        for i in 0..5 {
            q.push(op(OpKind::Read, i));
        }
        q.push(op(OpKind::Write, 100));
        // Reads 0,1 then the starving write must be served.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|o| o.tag).collect();
        let write_pos = order.iter().position(|&t| t == 100).unwrap();
        assert!(write_pos <= 2, "write served at {write_pos} in {order:?}");
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn empty_pops_none() {
        let mut q = PreferenceQueue::new(OpPreference::Reader, 4);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn falls_back_to_other_class_when_preferred_empty() {
        let mut q = PreferenceQueue::new(OpPreference::Reader, 4);
        q.push(op(OpKind::Write, 1));
        assert_eq!(q.pop().unwrap().tag, 1);
    }
}
