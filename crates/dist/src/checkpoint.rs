//! Checkpoint/replay recovery versus re-execution (§3.4, Table 1's
//! "Checkpoint" column).
//!
//! "They can also define how failures are handled for each domain
//! (e.g., whether to re-execute a module or recover from a user-defined
//! checkpoint)." Recovery from a checkpoint restores the last snapshot
//! and replays the logged message suffix; re-execution replays the full
//! log from scratch. Experiment E9 sweeps checkpoint intervals against
//! module runtimes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use udc_actor::{Actor, ActorId, Ctx, Message, MessageLog};

/// One stored checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The actor this snapshot belongs to.
    pub actor: ActorId,
    /// Sequence number of the last message folded into the snapshot.
    pub seq: u64,
    /// Opaque snapshot bytes (from [`Actor::snapshot`]).
    pub state: Vec<u8>,
}

/// Durable checkpoint storage, keyed by actor. Keeps only the newest
/// checkpoint per actor (the paper's model needs no history).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    latest: BTreeMap<ActorId, Checkpoint>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Saves a checkpoint taken from `actor` at message `seq`.
    pub fn save(&mut self, actor: &ActorId, seq: u64, state: Vec<u8>) {
        self.latest.insert(
            actor.clone(),
            Checkpoint {
                actor: actor.clone(),
                seq,
                state,
            },
        );
    }

    /// The newest checkpoint for `actor`.
    pub fn latest(&self, actor: &ActorId) -> Option<&Checkpoint> {
        self.latest.get(actor)
    }

    /// Number of actors with checkpoints.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no checkpoints exist.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// The highest log sequence that is safe to truncate once every actor
/// in `required` can recover without it: the minimum checkpoint seq
/// across the required set (each actor only replays messages *after*
/// its checkpoint, so nothing at or before the minimum is ever needed
/// again). `None` when the set is empty or any required actor lacks a
/// checkpoint — re-execution domains need the full history retained.
pub fn safe_truncation_seq<'a>(
    store: &CheckpointStore,
    required: impl IntoIterator<Item = &'a ActorId>,
) -> Option<u64> {
    let mut min: Option<u64> = None;
    for id in required {
        match store.latest(id) {
            Some(cp) => min = Some(min.map_or(cp.seq, |m| m.min(cp.seq))),
            None => return None,
        }
    }
    min
}

/// The user-selected recovery strategy for a failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryStrategy {
    /// Replay the entire message history from initial state.
    Reexecute,
    /// Restore the latest checkpoint and replay only the suffix.
    FromCheckpoint,
}

/// What recovery did and what it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Strategy applied (FromCheckpoint silently degrades to Reexecute
    /// when no checkpoint exists).
    pub strategy: RecoveryStrategy,
    /// Messages replayed.
    pub replayed: usize,
    /// Sequence the state was restored from (0 = initial state).
    pub from_seq: u64,
}

/// Recovers `actor` (assumed freshly failed) using `strategy`.
///
/// The actor is reset (and optionally restored from its checkpoint),
/// then the relevant suffix of the reliable message log is replayed.
/// Messages the actor emits during replay are discarded — their effects
/// were already delivered before the crash (output-dedup as in
/// log-based recovery systems).
pub fn recover(
    id: &ActorId,
    actor: &mut dyn Actor,
    log: &MessageLog,
    checkpoints: &CheckpointStore,
    strategy: RecoveryStrategy,
) -> RecoveryOutcome {
    let (from_seq, effective) = match strategy {
        RecoveryStrategy::Reexecute => (0, RecoveryStrategy::Reexecute),
        RecoveryStrategy::FromCheckpoint => match checkpoints.latest(id) {
            Some(cp) => (cp.seq, RecoveryStrategy::FromCheckpoint),
            None => (0, RecoveryStrategy::Reexecute),
        },
    };
    actor.reset();
    if effective == RecoveryStrategy::FromCheckpoint {
        let cp = checkpoints.latest(id).expect("checked above");
        actor.restore(&cp.state);
    }
    let suffix: Vec<Message> = log.replay_for(id, from_seq);
    let replayed = suffix.len();
    for msg in &suffix {
        let mut ctx = Ctx::default();
        // Replay failures are ignored: the message already succeeded
        // once pre-crash, so a deterministic actor cannot fail here.
        let _ = actor.on_message(&mut ctx, msg);
    }
    RecoveryOutcome {
        strategy: effective,
        replayed,
        from_seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use udc_actor::{ActorError, ParSystem, SupervisionPolicy, System};

    /// An accumulator actor: state = sum of payload bytes interpreted as
    /// u64 (little helper with deterministic, checkpointable state).
    #[derive(Default)]
    struct Acc {
        sum: u64,
    }

    impl Actor for Acc {
        fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            let mut b = [0u8; 8];
            b[..msg.payload.len().min(8)].copy_from_slice(&msg.payload[..msg.payload.len().min(8)]);
            self.sum = self.sum.wrapping_add(u64::from_le_bytes(b));
            Ok(())
        }

        fn reset(&mut self) {
            self.sum = 0;
        }

        fn snapshot(&self) -> Vec<u8> {
            self.sum.to_le_bytes().to_vec()
        }

        fn restore(&mut self, snapshot: &[u8]) {
            let mut b = [0u8; 8];
            b.copy_from_slice(snapshot);
            self.sum = u64::from_le_bytes(b);
        }
    }

    fn run_workload(n: u64) -> (System, ActorId) {
        let mut sys = System::new();
        let id = ActorId::new("acc");
        sys.spawn(
            id.clone(),
            Box::<Acc>::default(),
            SupervisionPolicy::Restart,
        );
        for i in 1..=n {
            sys.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
        }
        sys.run_until_quiescent(10_000);
        (sys, id)
    }

    #[test]
    fn reexecute_replays_everything() {
        let (sys, id) = run_workload(10);
        let mut fresh = Acc::default();
        let out = recover(
            &id,
            &mut fresh,
            sys.log(),
            &CheckpointStore::new(),
            RecoveryStrategy::Reexecute,
        );
        assert_eq!(out.replayed, 10);
        assert_eq!(out.from_seq, 0);
        assert_eq!(fresh.sum, 55);
    }

    #[test]
    fn checkpoint_recovery_replays_suffix_only() {
        let (sys, id) = run_workload(10);
        // Take a checkpoint as of message 7: state = 1+..+7 = 28.
        let mut cps = CheckpointStore::new();
        let seq7 = sys.log().entries()[6].seq;
        cps.save(&id, seq7, 28u64.to_le_bytes().to_vec());

        let mut fresh = Acc::default();
        let out = recover(
            &id,
            &mut fresh,
            sys.log(),
            &cps,
            RecoveryStrategy::FromCheckpoint,
        );
        assert_eq!(out.strategy, RecoveryStrategy::FromCheckpoint);
        assert_eq!(out.replayed, 3, "only messages 8..=10");
        assert_eq!(fresh.sum, 55, "recovered state matches full history");
    }

    #[test]
    fn checkpoint_recovery_degrades_without_checkpoint() {
        let (sys, id) = run_workload(5);
        let mut fresh = Acc::default();
        let out = recover(
            &id,
            &mut fresh,
            sys.log(),
            &CheckpointStore::new(),
            RecoveryStrategy::FromCheckpoint,
        );
        assert_eq!(out.strategy, RecoveryStrategy::Reexecute);
        assert_eq!(fresh.sum, 15);
    }

    #[test]
    fn newer_checkpoint_replaces_older() {
        let mut cps = CheckpointStore::new();
        let id = ActorId::new("a");
        cps.save(&id, 5, vec![1]);
        cps.save(&id, 9, vec![2]);
        assert_eq!(cps.len(), 1);
        assert_eq!(cps.latest(&id).unwrap().seq, 9);
    }

    #[test]
    fn recovery_isolated_per_actor() {
        // Two actors; recovering one must not replay the other's messages.
        let mut sys = System::new();
        let a = ActorId::new("a");
        let b = ActorId::new("b");
        sys.spawn(a.clone(), Box::<Acc>::default(), SupervisionPolicy::Restart);
        sys.spawn(b.clone(), Box::<Acc>::default(), SupervisionPolicy::Restart);
        sys.inject(a.clone(), Bytes::copy_from_slice(&1u64.to_le_bytes()));
        sys.inject(b.clone(), Bytes::copy_from_slice(&100u64.to_le_bytes()));
        sys.run_until_quiescent(100);
        let mut fresh = Acc::default();
        let out = recover(
            &a,
            &mut fresh,
            sys.log(),
            &CheckpointStore::new(),
            RecoveryStrategy::Reexecute,
        );
        assert_eq!(out.replayed, 1);
        assert_eq!(fresh.sum, 1);
    }

    #[test]
    fn safe_truncation_is_min_checkpoint_seq() {
        let mut cps = CheckpointStore::new();
        let a = ActorId::new("a");
        let b = ActorId::new("b");
        cps.save(&a, 7, vec![]);
        cps.save(&b, 4, vec![]);
        assert_eq!(safe_truncation_seq(&cps, [&a, &b]), Some(4));
        assert_eq!(safe_truncation_seq(&cps, [&a]), Some(7));
    }

    #[test]
    fn safe_truncation_blocked_by_uncheckpointed_actor() {
        let mut cps = CheckpointStore::new();
        let a = ActorId::new("a");
        let b = ActorId::new("b");
        cps.save(&a, 7, vec![]);
        // `b` has no checkpoint (e.g. a Reexecute domain): the full log
        // must be retained, so no truncation point exists.
        assert_eq!(safe_truncation_seq(&cps, [&a, &b]), None);
        // An empty required set also yields no truncation point.
        assert_eq!(safe_truncation_seq(&cps, []), None);
    }

    #[test]
    fn truncated_log_still_recovers_from_checkpoint() {
        let (mut sys, id) = run_workload(10);
        let mut cps = CheckpointStore::new();
        let seq7 = sys.log().entries()[6].seq;
        cps.save(&id, seq7, 28u64.to_le_bytes().to_vec());

        let cut = safe_truncation_seq(&cps, [&id]).unwrap();
        sys.truncate_log_through(cut);
        assert_eq!(sys.log().len(), 3, "only the suffix is retained");

        let mut fresh = Acc::default();
        let out = recover(
            &id,
            &mut fresh,
            sys.log(),
            &cps,
            RecoveryStrategy::FromCheckpoint,
        );
        assert_eq!(out.replayed, 3);
        assert_eq!(fresh.sum, 55, "recovery unaffected by truncation");
    }

    #[test]
    fn recovery_from_a_parallel_log_matches_the_serial_one() {
        // The work-stealing executor's merged log must drive recovery to
        // the same state and cost as the single-threaded log — per-actor
        // order is the contract, and `replay_for` relies on nothing else.
        let (serial, id) = run_workload(10);
        let mut par = ParSystem::new(4);
        par.spawn(
            id.clone(),
            Box::<Acc>::default(),
            SupervisionPolicy::Restart,
        );
        for i in 1..=10u64 {
            par.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
        }
        par.run_until_quiescent(10_000);

        let mut cps = CheckpointStore::new();
        let seq7 = par.log().entries()[6].seq;
        assert_eq!(seq7, serial.log().entries()[6].seq, "same seq numbering");
        cps.save(&id, seq7, 28u64.to_le_bytes().to_vec());

        for strategy in [
            RecoveryStrategy::Reexecute,
            RecoveryStrategy::FromCheckpoint,
        ] {
            let mut from_par = Acc::default();
            let out_par = recover(&id, &mut from_par, par.log(), &cps, strategy);
            let mut from_serial = Acc::default();
            let out_serial = recover(&id, &mut from_serial, serial.log(), &cps, strategy);
            assert_eq!(out_par, out_serial, "{strategy:?}");
            assert_eq!(from_par.sum, 55);
            assert_eq!(from_serial.sum, 55);
        }
    }

    #[test]
    fn checkpoint_saves_replay_cost() {
        let (sys, id) = run_workload(1000);
        let mut cps = CheckpointStore::new();
        let seq990 = sys.log().entries()[989].seq;
        let sum990: u64 = (1..=990).sum();
        cps.save(&id, seq990, sum990.to_le_bytes().to_vec());

        let mut a = Acc::default();
        let full = recover(&id, &mut a, sys.log(), &cps, RecoveryStrategy::Reexecute);
        let mut b = Acc::default();
        let fast = recover(
            &id,
            &mut b,
            sys.log(),
            &cps,
            RecoveryStrategy::FromCheckpoint,
        );
        assert_eq!(a.sum, b.sum);
        assert!(fast.replayed * 50 < full.replayed, "{fast:?} vs {full:?}");
    }
}
