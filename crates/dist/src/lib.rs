//! # udc-dist — user-defined distributed semantics (§3.4)
//!
//! "Users should be able to define how their applications run
//! distributedly, but without the need to build complex distributed
//! systems." The user declares a replication factor, a consistency
//! level, an operation preference, a failure domain, and a failure-
//! handling strategy (Table 1); this crate is the provider-side
//! realization of each:
//!
//! - [`store::ReplicatedStore`] — a replicated KV data module
//!   implementing all five [`udc_spec::ConsistencyLevel`]s with a
//!   deterministic latency/staleness model;
//! - [`prefqueue::PreferenceQueue`] — reader/writer operation
//!   preference (Table 1's "Reader preference");
//! - [`checkpoint::CheckpointStore`] and [`checkpoint::recover`] —
//!   checkpoint/replay recovery versus re-execution, built on
//!   `udc-actor`'s reliable message log;
//! - [`domain::DomainTracker`] — user-defined failure domains ("code
//!   and data within a domain will fail as a whole" while "different
//!   domains could fail independently").

pub mod checkpoint;
pub mod domain;
pub mod prefqueue;
pub mod store;

pub use checkpoint::{
    recover, safe_truncation_seq, Checkpoint, CheckpointStore, RecoveryOutcome, RecoveryStrategy,
};
pub use domain::DomainTracker;
pub use prefqueue::{Op, OpKind, PreferenceQueue};
pub use store::{ReadResult, ReplicatedStore, ReplicationParams, StoreError, StoreStats};
