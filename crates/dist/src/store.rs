//! A replicated key-value data module with user-selected consistency.
//!
//! The store is a deterministic *model*: latencies are computed from a
//! parameter set rather than measured, and replica lag is explicit, so
//! experiments can sweep replication factors and consistency levels and
//! observe the throughput/staleness trade-offs §3.4 implies.
//!
//! ## Consistency realization
//!
//! | Level | Write path | Read path | Staleness |
//! |---|---|---|---|
//! | Eventual | primary, async propagate | any replica | unbounded |
//! | Release | buffered until `release()`, then as Eventual | any replica | until release |
//! | Causal | primary, async; reads wait for causal prefix | session replica | bounded by deps |
//! | Sequential | primary sequences, sync majority | majority-fresh replica | none observable |
//! | Linearizable | sync all replicas | primary-confirmed | none |

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use udc_spec::ConsistencyLevel;
use udc_telemetry::{Telemetry, TraceCtx};

/// Latency parameters for the replication model (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationParams {
    /// One replica acknowledging a synchronous write.
    pub ack_latency_us: u64,
    /// Applying an asynchronous propagation to one replica.
    pub propagation_delay_us: u64,
    /// Serving a local read.
    pub read_latency_us: u64,
    /// §3.4's programmable-network option ("a promising direction is to
    /// explore the programmability in the network to enforce the
    /// distributed specifications", citing NOPaxos \[26\] and Pegasus
    /// \[27\]): when true, the ToR switch / SmartNIC performs the
    /// replication fan-out and ordering, so a synchronous write costs
    /// one ack round regardless of the replica count, instead of a
    /// host-serialized fan-out.
    pub in_network: bool,
}

impl Default for ReplicationParams {
    fn default() -> Self {
        Self {
            ack_latency_us: 150,
            propagation_delay_us: 400,
            read_latency_us: 20,
            in_network: false,
        }
    }
}

impl ReplicationParams {
    /// Default parameters with in-network replication enabled.
    pub fn in_network() -> Self {
        Self {
            in_network: true,
            ..Self::default()
        }
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Replica index out of range.
    BadReplica(usize),
    /// Zero replicas requested.
    NoReplicas,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadReplica(i) => write!(f, "replica {i} out of range"),
            StoreError::NoReplicas => f.write_str("replication factor must be >= 1"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A versioned value inside one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Versioned {
    version: u64,
    value: Vec<u8>,
}

/// The result of a read: value (if present), the version observed, and
/// the modelled latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// The value, if the key exists at the serving replica.
    pub value: Option<Vec<u8>>,
    /// Version observed (0 = key absent).
    pub version: u64,
    /// Modelled latency of the read.
    pub latency_us: u64,
    /// Versions behind the primary at serve time (staleness metric).
    pub staleness: u64,
}

/// Cumulative statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Writes accepted.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Total modelled write latency.
    pub write_latency_us: u64,
    /// Total modelled read latency.
    pub read_latency_us: u64,
    /// Reads that observed a stale version.
    pub stale_reads: u64,
}

impl StoreStats {
    /// Mean write latency (0 when no writes).
    pub fn mean_write_latency_us(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_latency_us as f64 / self.writes as f64
        }
    }

    /// Mean read latency (0 when no reads).
    pub fn mean_read_latency_us(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_us as f64 / self.reads as f64
        }
    }
}

/// A replicated KV data module.
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    level: ConsistencyLevel,
    params: ReplicationParams,
    /// replicas\[0\] is the primary.
    replicas: Vec<BTreeMap<String, Versioned>>,
    /// Monotonic version counter (assigned by the primary sequencer).
    next_version: u64,
    /// Ops applied at the primary but not yet at every replica:
    /// (key, versioned, replicas still missing it).
    in_flight: Vec<(String, Versioned, Vec<usize>)>,
    /// Release-consistency write buffer (not yet visible anywhere but
    /// the writer).
    release_buffer: Vec<(String, Vec<u8>)>,
    stats: StoreStats,
    /// Round-robin read cursor for replica load-balancing.
    read_cursor: usize,
    /// Observability hub (disabled no-op by default).
    obs: Telemetry,
}

impl ReplicatedStore {
    /// Creates a store with `replication` replicas at `level`.
    pub fn new(
        replication: u32,
        level: ConsistencyLevel,
        params: ReplicationParams,
    ) -> Result<Self, StoreError> {
        if replication == 0 {
            return Err(StoreError::NoReplicas);
        }
        Ok(Self {
            level,
            params,
            replicas: vec![BTreeMap::new(); replication as usize],
            next_version: 0,
            in_flight: Vec::new(),
            release_buffer: Vec::new(),
            stats: StoreStats::default(),
            read_cursor: 0,
            obs: Telemetry::disabled(),
        })
    }

    /// Installs the observability hub; traced reads and writes emit
    /// `dist.read` / `dist.write` spans into it.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// [`ReplicatedStore::write`] under an explicit trace context: the
    /// `dist.write` span joins the caller's trace, so store operations
    /// show up on a deployment's critical path.
    pub fn write_traced(&mut self, key: &str, value: &[u8], ctx: Option<&TraceCtx>) -> u64 {
        let _span = if self.obs.is_enabled() {
            Some(self.obs.span_opt(ctx, "dist.write"))
        } else {
            None
        };
        self.write(key, value)
    }

    /// [`ReplicatedStore::read`] under an explicit trace context; emits
    /// a `dist.read` span joined to the caller's trace.
    pub fn read_traced(&mut self, key: &str, ctx: Option<&TraceCtx>) -> ReadResult {
        let _span = if self.obs.is_enabled() {
            Some(self.obs.span_opt(ctx, "dist.read"))
        } else {
            None
        };
        self.read(key)
    }

    /// The consistency level in force.
    pub fn level(&self) -> ConsistencyLevel {
        self.level
    }

    /// Replication factor.
    pub fn replication(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Writes `key = value`, returning the modelled latency.
    ///
    /// Under `Release`, the write is buffered and costs only the local
    /// write until [`ReplicatedStore::release`] is called.
    pub fn write(&mut self, key: &str, value: &[u8]) -> u64 {
        self.stats.writes += 1;
        let latency = match self.level {
            ConsistencyLevel::Release => {
                self.release_buffer.push((key.to_string(), value.to_vec()));
                self.params.read_latency_us // Local buffer append: cheap.
            }
            ConsistencyLevel::Eventual | ConsistencyLevel::Causal => {
                self.apply_primary(key, value);
                // Primary ack only; propagation is asynchronous.
                self.params.ack_latency_us
            }
            ConsistencyLevel::Sequential => {
                self.apply_primary(key, value);
                // Majority of replicas acknowledge synchronously; the
                // tail is applied asynchronously. Host-driven fan-out
                // serializes part of the work (25% of an ack round per
                // extra member); in-network fan-out (switch/SmartNIC,
                // §3.4) replicates in the fabric at line rate, so the
                // cost stays one ack round.
                let majority = self.replicas.len() / 2 + 1;
                self.sync_first_n(majority);
                self.params.ack_latency_us + self.fan_out_cost(majority as u64)
            }
            ConsistencyLevel::Linearizable => {
                self.apply_primary(key, value);
                let all = self.replicas.len();
                self.sync_first_n(all);
                self.params.ack_latency_us + self.fan_out_cost(all as u64)
            }
        };
        self.stats.write_latency_us += latency;
        latency
    }

    /// Fan-out serialization cost for a synchronous write to `members`
    /// replicas: zero with in-network replication, a quarter of an ack
    /// round per extra member host-driven.
    fn fan_out_cost(&self, members: u64) -> u64 {
        if self.params.in_network {
            0
        } else {
            (self.params.ack_latency_us / 4) * members.saturating_sub(1)
        }
    }

    fn apply_primary(&mut self, key: &str, value: &[u8]) {
        self.next_version += 1;
        let v = Versioned {
            version: self.next_version,
            value: value.to_vec(),
        };
        self.replicas[0].insert(key.to_string(), v.clone());
        let lagging: Vec<usize> = (1..self.replicas.len()).collect();
        if !lagging.is_empty() {
            self.in_flight.push((key.to_string(), v, lagging));
        }
    }

    /// Synchronously applies all in-flight ops to replicas `0..n`.
    fn sync_first_n(&mut self, n: usize) {
        for (key, v, lagging) in &mut self.in_flight {
            lagging.retain(|&r| {
                if r < n {
                    let slot = self.replicas[r]
                        .entry(key.clone())
                        .or_insert_with(|| Versioned {
                            version: 0,
                            value: Vec::new(),
                        });
                    if v.version > slot.version {
                        *slot = v.clone();
                    }
                    false
                } else {
                    true
                }
            });
        }
        self.in_flight.retain(|(_, _, lagging)| !lagging.is_empty());
    }

    /// Release point (release consistency): makes all buffered writes
    /// visible, returning the modelled latency of the batch.
    pub fn release(&mut self) -> u64 {
        if self.release_buffer.is_empty() {
            return 0;
        }
        let writes = std::mem::take(&mut self.release_buffer);
        let n = writes.len() as u64;
        for (k, v) in writes {
            self.apply_primary(&k, &v);
        }
        // One propagation round amortizes the whole batch.
        let latency = self.params.ack_latency_us + self.params.propagation_delay_us / n.max(1);
        self.stats.write_latency_us += latency;
        latency
    }

    /// Applies one round of asynchronous propagation: every in-flight op
    /// reaches every lagging replica. Experiments call this to model the
    /// passage of `propagation_delay_us`.
    pub fn propagate(&mut self) {
        let n = self.replicas.len();
        self.sync_first_n(n);
    }

    /// Reads `key`, load-balanced across replicas according to the
    /// consistency level.
    pub fn read(&mut self, key: &str) -> ReadResult {
        self.stats.reads += 1;
        let primary_version = self.replicas[0].get(key).map(|v| v.version).unwrap_or(0);
        let (replica, extra_latency) = match self.level {
            // Strong levels serve fresh data: sequential reads go to a
            // majority-fresh replica (the primary in this model);
            // linearizable reads additionally confirm with the primary.
            ConsistencyLevel::Sequential => (0usize, 0),
            ConsistencyLevel::Linearizable => (0usize, self.params.ack_latency_us),
            // Causal: session replica must contain the causal prefix; we
            // model a per-read dependency wait of one propagation hop
            // when the chosen replica lags.
            ConsistencyLevel::Causal => {
                let r = self.pick_replica();
                let lag =
                    primary_version - self.replicas[r].get(key).map(|v| v.version).unwrap_or(0);
                if lag > 0 {
                    // Wait for the dependency to arrive.
                    (0, self.params.propagation_delay_us)
                } else {
                    (r, 0)
                }
            }
            ConsistencyLevel::Eventual | ConsistencyLevel::Release => (self.pick_replica(), 0),
        };
        let slot = self.replicas[replica].get(key);
        let version = slot.map(|v| v.version).unwrap_or(0);
        let staleness = primary_version.saturating_sub(version);
        if staleness > 0 {
            self.stats.stale_reads += 1;
        }
        let latency = self.params.read_latency_us + extra_latency;
        self.stats.read_latency_us += latency;
        ReadResult {
            value: slot.map(|v| v.value.clone()),
            version,
            latency_us: latency,
            staleness,
        }
    }

    fn pick_replica(&mut self) -> usize {
        let r = self.read_cursor % self.replicas.len();
        self.read_cursor = self.read_cursor.wrapping_add(1);
        r
    }

    /// Simulates losing `replica` (its contents vanish); a later
    /// [`ReplicatedStore::propagate`] plus reads repopulate it from the
    /// primary's in-flight log only for keys still in flight, so the
    /// harness should re-replicate via [`ReplicatedStore::rebuild_replica`].
    pub fn fail_replica(&mut self, replica: usize) -> Result<(), StoreError> {
        if replica == 0 || replica >= self.replicas.len() {
            return Err(StoreError::BadReplica(replica));
        }
        self.replicas[replica].clear();
        Ok(())
    }

    /// Rebuilds a failed replica by full copy from the primary,
    /// returning the number of keys copied.
    pub fn rebuild_replica(&mut self, replica: usize) -> Result<usize, StoreError> {
        if replica == 0 || replica >= self.replicas.len() {
            return Err(StoreError::BadReplica(replica));
        }
        let snapshot = self.replicas[0].clone();
        let n = snapshot.len();
        self.replicas[replica] = snapshot;
        Ok(n)
    }

    /// Whether any data survives the loss of `failed` replicas
    /// (durability check: data survives while at least one replica
    /// remains).
    pub fn survives(&self, failed: u32) -> bool {
        failed < self.replication()
    }

    /// Statistics so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Direct version inspection for tests: the version of `key` at
    /// `replica`.
    pub fn version_at(&self, replica: usize, key: &str) -> Option<u64> {
        self.replicas
            .get(replica)
            .and_then(|r| r.get(key))
            .map(|v| v.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: u32, level: ConsistencyLevel) -> ReplicatedStore {
        ReplicatedStore::new(n, level, ReplicationParams::default()).unwrap()
    }

    #[test]
    fn zero_replication_rejected() {
        assert_eq!(
            ReplicatedStore::new(0, ConsistencyLevel::Eventual, ReplicationParams::default()).err(),
            Some(StoreError::NoReplicas)
        );
    }

    #[test]
    fn linearizable_reads_always_fresh() {
        let mut s = store(3, ConsistencyLevel::Linearizable);
        for i in 0..10 {
            s.write("k", format!("v{i}").as_bytes());
            let r = s.read("k");
            assert_eq!(r.staleness, 0);
            assert_eq!(r.value.as_deref(), Some(format!("v{i}").as_bytes()));
        }
        assert_eq!(s.stats().stale_reads, 0);
    }

    #[test]
    fn sequential_reads_fresh() {
        let mut s = store(3, ConsistencyLevel::Sequential);
        s.write("k", b"v1");
        let r = s.read("k");
        assert_eq!(r.staleness, 0);
    }

    #[test]
    fn eventual_reads_can_be_stale_until_propagation() {
        let mut s = store(3, ConsistencyLevel::Eventual);
        s.write("k", b"v1");
        // Round-robin over three replicas: at least one read in the next
        // three hits a lagging replica.
        let mut max_staleness = 0;
        for _ in 0..3 {
            max_staleness = max_staleness.max(s.read("k").staleness);
        }
        assert!(
            max_staleness > 0,
            "async replication must lag before propagate"
        );
        s.propagate();
        for _ in 0..3 {
            assert_eq!(s.read("k").staleness, 0);
        }
    }

    #[test]
    fn single_replica_never_stale() {
        let mut s = store(1, ConsistencyLevel::Eventual);
        s.write("k", b"v");
        for _ in 0..5 {
            assert_eq!(s.read("k").staleness, 0);
        }
    }

    #[test]
    fn write_latency_grows_with_strictness() {
        let mut eventual = store(3, ConsistencyLevel::Eventual);
        let mut sequential = store(3, ConsistencyLevel::Sequential);
        let mut linearizable = store(3, ConsistencyLevel::Linearizable);
        let le = eventual.write("k", b"v");
        let ls = sequential.write("k", b"v");
        let ll = linearizable.write("k", b"v");
        assert!(le <= ls, "eventual {le} vs sequential {ls}");
        assert!(ls <= ll, "sequential {ls} vs linearizable {ll}");
    }

    #[test]
    fn write_latency_grows_with_replication_under_linearizable() {
        let mut r1 = store(1, ConsistencyLevel::Linearizable);
        let mut r3 = store(3, ConsistencyLevel::Linearizable);
        assert!(r1.write("k", b"v") < r3.write("k", b"v"));
    }

    #[test]
    fn release_buffers_until_release() {
        let mut s = store(2, ConsistencyLevel::Release);
        s.write("k", b"v1");
        // Not visible anywhere yet (not even the primary).
        assert_eq!(s.read("k").value, None);
        let batch_latency = s.release();
        assert!(batch_latency > 0);
        s.propagate();
        assert_eq!(s.read("k").value.as_deref(), Some(b"v1".as_ref()));
    }

    #[test]
    fn release_amortizes_batches() {
        let mut s = store(2, ConsistencyLevel::Release);
        for i in 0..100 {
            s.write(&format!("k{i}"), b"v");
        }
        let batch = s.release();
        let mut seq = store(2, ConsistencyLevel::Sequential);
        let mut individual = 0;
        for i in 0..100 {
            individual += seq.write(&format!("k{i}"), b"v");
        }
        assert!(
            batch * 10 < individual,
            "batched release ({batch}) should be far cheaper than {individual}"
        );
    }

    #[test]
    fn causal_reads_wait_for_dependencies() {
        let mut s = store(3, ConsistencyLevel::Causal);
        s.write("k", b"v1");
        // Any read either hits a fresh replica cheaply or pays the
        // dependency wait and observes fresh data.
        for _ in 0..6 {
            let r = s.read("k");
            assert_eq!(r.staleness, 0, "causal read must not expose missing prefix");
        }
    }

    #[test]
    fn overwrites_advance_versions() {
        let mut s = store(2, ConsistencyLevel::Sequential);
        s.write("k", b"a");
        s.write("k", b"b");
        let r = s.read("k");
        assert_eq!(r.version, 2);
        assert_eq!(r.value.as_deref(), Some(b"b".as_ref()));
    }

    #[test]
    fn missing_key_reads_none() {
        let mut s = store(2, ConsistencyLevel::Sequential);
        let r = s.read("ghost");
        assert_eq!(r.value, None);
        assert_eq!(r.version, 0);
        assert_eq!(r.staleness, 0);
    }

    #[test]
    fn replica_failure_and_rebuild() {
        let mut s = store(3, ConsistencyLevel::Linearizable);
        for i in 0..10 {
            s.write(&format!("k{i}"), b"v");
        }
        s.fail_replica(2).unwrap();
        assert_eq!(s.version_at(2, "k0"), None);
        let copied = s.rebuild_replica(2).unwrap();
        assert_eq!(copied, 10);
        assert_eq!(s.version_at(2, "k0"), Some(1));
        assert!(s.fail_replica(0).is_err(), "primary cannot be failed here");
        assert!(s.fail_replica(9).is_err());
    }

    #[test]
    fn survivability_matches_replication() {
        let s = store(3, ConsistencyLevel::Eventual);
        assert!(s.survives(2));
        assert!(!s.survives(3));
        let s1 = store(1, ConsistencyLevel::Eventual);
        assert!(!s1.survives(1));
    }

    #[test]
    fn in_network_writes_flat_in_replica_count() {
        let mut host3 = ReplicatedStore::new(
            3,
            ConsistencyLevel::Linearizable,
            ReplicationParams::default(),
        )
        .unwrap();
        let mut net3 = ReplicatedStore::new(
            3,
            ConsistencyLevel::Linearizable,
            ReplicationParams::in_network(),
        )
        .unwrap();
        let mut net1 = ReplicatedStore::new(
            1,
            ConsistencyLevel::Linearizable,
            ReplicationParams::in_network(),
        )
        .unwrap();
        let host_lat = host3.write("k", b"v");
        let net_lat3 = net3.write("k", b"v");
        let net_lat1 = net1.write("k", b"v");
        assert!(net_lat3 < host_lat, "switch fan-out beats host fan-out");
        assert_eq!(net_lat3, net_lat1, "in-network cost is replica-count-flat");
    }

    #[test]
    fn in_network_preserves_consistency() {
        let mut s = ReplicatedStore::new(
            3,
            ConsistencyLevel::Sequential,
            ReplicationParams::in_network(),
        )
        .unwrap();
        for i in 0..20u64 {
            s.write("k", &i.to_le_bytes());
            assert_eq!(s.read("k").staleness, 0);
        }
        assert_eq!(s.stats().stale_reads, 0);
    }

    #[test]
    fn traced_ops_join_caller_trace() {
        let mut s = store(2, ConsistencyLevel::Sequential);
        let obs = Telemetry::enabled();
        s.set_observer(obs.clone());
        let root = obs.trace_root("test.root");
        let ctx = root.ctx().expect("enabled root span carries a ctx");
        s.write_traced("k", b"v", Some(&ctx));
        let r = s.read_traced("k", Some(&ctx));
        drop(root);
        assert_eq!(r.value.as_deref(), Some(b"v".as_ref()));
        let spans = obs.snapshot().spans;
        let names: Vec<&str> = spans.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["test.root", "dist.write", "dist.read"]);
        for s in &spans[1..] {
            assert_eq!(s.parent, Some(ctx.span));
            assert_eq!(s.trace, Some(ctx.trace_id));
        }
    }

    #[test]
    fn untraced_store_emits_no_spans() {
        let mut s = store(2, ConsistencyLevel::Sequential);
        s.write("k", b"v");
        s.read("k");
        // No observer installed: nothing to assert beyond not panicking,
        // but a disabled hub must also stay span-free when installed.
        let obs = Telemetry::disabled();
        s.set_observer(obs);
        s.write_traced("k2", b"v", None);
        assert_eq!(s.stats().writes, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = store(2, ConsistencyLevel::Sequential);
        s.write("k", b"v");
        s.read("k");
        s.read("k");
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 2);
        assert!(st.mean_write_latency_us() > 0.0);
        assert!(st.mean_read_latency_us() > 0.0);
    }
}
