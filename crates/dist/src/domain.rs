//! User-defined failure domains (§3.4).
//!
//! "Users (developers) can define the failure domains in their programs,
//! with the understanding that different domains could fail
//! independently while code and data within a domain will fail as a
//! whole."

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks module → failure-domain assignments and answers blast-radius
/// queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainTracker {
    /// module -> domain. Modules without an entry are their own
    /// implicit singleton domain.
    assignment: BTreeMap<String, String>,
}

impl DomainTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `module` to `domain`.
    pub fn assign(&mut self, module: impl Into<String>, domain: impl Into<String>) {
        self.assignment.insert(module.into(), domain.into());
    }

    /// The domain of `module` (its own name when unassigned — the
    /// implicit singleton domain).
    pub fn domain_of(&self, module: &str) -> String {
        self.assignment
            .get(module)
            .cloned()
            .unwrap_or_else(|| format!("~{module}"))
    }

    /// All modules that fail together with `module` (including itself).
    pub fn blast_radius(&self, module: &str) -> BTreeSet<String> {
        let domain = self.domain_of(module);
        let mut out: BTreeSet<String> = self
            .assignment
            .iter()
            .filter(|(_, d)| **d == domain)
            .map(|(m, _)| m.clone())
            .collect();
        out.insert(module.to_string());
        out
    }

    /// All modules in `domain`.
    pub fn members(&self, domain: &str) -> BTreeSet<String> {
        self.assignment
            .iter()
            .filter(|(_, d)| d.as_str() == domain)
            .map(|(m, _)| m.clone())
            .collect()
    }

    /// Whether two modules fail independently (different domains).
    pub fn independent(&self, a: &str, b: &str) -> bool {
        self.domain_of(a) != self.domain_of(b)
    }

    /// Distinct domains in use.
    pub fn domains(&self) -> BTreeSet<String> {
        self.assignment.values().cloned().collect()
    }

    /// Number of explicit assignments.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_domain_fails_together() {
        let mut t = DomainTracker::new();
        t.assign("A1", "front");
        t.assign("A2", "front");
        t.assign("S1", "storage");
        let radius = t.blast_radius("A1");
        assert!(radius.contains("A1"));
        assert!(radius.contains("A2"));
        assert!(!radius.contains("S1"));
    }

    #[test]
    fn different_domains_independent() {
        let mut t = DomainTracker::new();
        t.assign("A1", "front");
        t.assign("S1", "storage");
        assert!(t.independent("A1", "S1"));
        assert!(!t.independent("A1", "A1"));
    }

    #[test]
    fn unassigned_modules_are_singletons() {
        let t = DomainTracker::new();
        assert!(t.independent("X", "Y"));
        let radius = t.blast_radius("X");
        assert_eq!(radius.len(), 1);
        assert!(radius.contains("X"));
    }

    #[test]
    fn members_and_domains() {
        let mut t = DomainTracker::new();
        t.assign("A1", "d0");
        t.assign("A2", "d0");
        t.assign("A3", "d1");
        assert_eq!(t.members("d0").len(), 2);
        assert_eq!(t.domains().len(), 2);
        assert!(t.members("missing").is_empty());
    }

    #[test]
    fn reassignment_moves_module() {
        let mut t = DomainTracker::new();
        t.assign("A1", "d0");
        t.assign("A1", "d1");
        assert_eq!(t.domain_of("A1"), "d1");
        assert!(t.members("d0").is_empty());
    }
}
