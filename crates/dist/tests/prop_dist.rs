//! Property tests for distributed semantics: consistency guarantees hold
//! under arbitrary operation interleavings, and checkpoint recovery is
//! equivalent to full re-execution.

use proptest::prelude::*;
use std::collections::BTreeMap;
use udc_dist::{ReplicatedStore, ReplicationParams};
use udc_spec::ConsistencyLevel;

#[derive(Debug, Clone)]
enum StoreOp {
    Write(u8, u8),
    Read(u8),
    Propagate,
    Release,
}

fn arb_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| StoreOp::Write(k % 8, v)),
        any::<u8>().prop_map(|k| StoreOp::Read(k % 8)),
        Just(StoreOp::Propagate),
        Just(StoreOp::Release),
    ]
}

fn level_strategy() -> impl Strategy<Value = ConsistencyLevel> {
    prop::sample::select(vec![
        ConsistencyLevel::Eventual,
        ConsistencyLevel::Release,
        ConsistencyLevel::Causal,
        ConsistencyLevel::Sequential,
        ConsistencyLevel::Linearizable,
    ])
}

proptest! {
    /// Strong levels (sequential, linearizable) never serve a stale
    /// read, for any interleaving and any replication factor.
    #[test]
    fn strong_levels_never_stale(
        ops in prop::collection::vec(arb_op(), 1..200),
        replication in 1u32..6,
        strong in prop::sample::select(vec![
            ConsistencyLevel::Sequential,
            ConsistencyLevel::Linearizable,
        ]),
    ) {
        let mut s = ReplicatedStore::new(replication, strong, ReplicationParams::default()).unwrap();
        for op in ops {
            match op {
                StoreOp::Write(k, v) => { s.write(&format!("k{k}"), &[v]); }
                StoreOp::Read(k) => {
                    let r = s.read(&format!("k{k}"));
                    prop_assert_eq!(r.staleness, 0);
                }
                StoreOp::Propagate => s.propagate(),
                StoreOp::Release => { s.release(); }
            }
        }
        prop_assert_eq!(s.stats().stale_reads, 0);
    }

    /// Under every level, a read after `propagate` (and `release`)
    /// returns the last written value — convergence.
    #[test]
    fn all_levels_converge(
        writes in prop::collection::vec((any::<u8>(), any::<u8>()), 1..50),
        replication in 1u32..5,
        level in level_strategy(),
    ) {
        let mut s = ReplicatedStore::new(replication, level, ReplicationParams::default()).unwrap();
        let mut model: BTreeMap<String, u8> = BTreeMap::new();
        for (k, v) in writes {
            let key = format!("k{}", k % 8);
            s.write(&key, &[v]);
            model.insert(key, v);
        }
        s.release();
        s.propagate();
        for (key, v) in model {
            // Every replica is converged; any read observes the model.
            for _ in 0..replication {
                let r = s.read(&key);
                prop_assert_eq!(r.value.clone(), Some(vec![v]), "key {} level {:?}", key, level);
                prop_assert_eq!(r.staleness, 0);
            }
        }
    }

    /// Versions are monotone at every replica: propagation never moves a
    /// replica backwards.
    #[test]
    fn replica_versions_monotone(
        ops in prop::collection::vec(arb_op(), 1..150),
        replication in 2u32..5,
    ) {
        let mut s = ReplicatedStore::new(
            replication,
            ConsistencyLevel::Eventual,
            ReplicationParams::default(),
        ).unwrap();
        let mut seen: BTreeMap<(usize, String), u64> = BTreeMap::new();
        for op in ops {
            match op {
                StoreOp::Write(k, v) => { s.write(&format!("k{k}"), &[v]); }
                StoreOp::Read(k) => { s.read(&format!("k{k}")); }
                StoreOp::Propagate => s.propagate(),
                StoreOp::Release => { s.release(); }
            }
            for r in 0..replication as usize {
                for k in 0..8u8 {
                    let key = format!("k{k}");
                    if let Some(ver) = s.version_at(r, &key) {
                        let prev = seen.entry((r, key)).or_insert(0);
                        prop_assert!(ver >= *prev, "replica {r} went backwards");
                        *prev = ver;
                    }
                }
            }
        }
    }

    /// Rebuilding a failed replica restores it to exactly the primary's
    /// contents.
    #[test]
    fn rebuild_restores_primary_view(
        writes in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
    ) {
        let mut s = ReplicatedStore::new(
            3,
            ConsistencyLevel::Linearizable,
            ReplicationParams::default(),
        ).unwrap();
        for (k, v) in &writes {
            s.write(&format!("k{}", k % 8), &[*v]);
        }
        s.fail_replica(2).unwrap();
        s.rebuild_replica(2).unwrap();
        for k in 0..8u8 {
            let key = format!("k{k}");
            prop_assert_eq!(s.version_at(2, &key), s.version_at(0, &key));
        }
    }
}
