//! The actor abstraction: one module, message-driven, no shared state.

use bytes::Bytes;
use std::fmt;
use std::sync::Arc;
use udc_telemetry::TraceCtx;

/// Identifier of an actor (module instance) within a system.
///
/// Backed by a refcounted `Arc<String>` so the id travels through
/// messages, logs, and checkpoints as a pointer bump instead of a heap
/// copy — the hot delivery path clones ids once per outbox message. The
/// thin (one-word) pointer keeps [`Message`] a single cache line;
/// string content is only dereferenced at the by-id edges (spawn,
/// lookup, ordering), never on the per-message path. Ordering,
/// equality, and hashing all go by string content, so a rebuilt id
/// compares equal to an interned one.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(Arc<String>);

impl ActorId {
    /// Creates an id from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        Self(Arc::new(s.into()))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ActorId {
    fn from(s: &str) -> Self {
        ActorId::new(s)
    }
}

impl From<String> for ActorId {
    fn from(s: String) -> Self {
        ActorId::new(s)
    }
}

// Serialized transparently as the underlying string, exactly like the
// previous `String`-backed representation, so checkpoint and artifact
// formats are unchanged.
impl serde::Serialize for ActorId {
    fn to_value(&self) -> serde::Value {
        self.as_str().to_value()
    }
}

impl serde::Deserialize for ActorId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        String::from_value(v).map(ActorId::new)
    }
}

/// A message between actors. Payloads are opaque bytes: actors serialize
/// their own protocols (no shared state, per §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender (None for external injections).
    pub from: Option<ActorId>,
    /// Recipient.
    pub to: ActorId,
    /// Opaque payload.
    pub payload: Bytes,
    /// Delivery sequence number, assigned by the system at delivery
    /// time; 0 before delivery.
    pub seq: u64,
    /// Causal trace context. Messages sent from a handler inherit the
    /// context of the message being handled, so a whole message cascade
    /// reconstructs as one trace.
    pub trace: Option<TraceCtx>,
}

impl Message {
    /// Builds an external message (no sender, no trace).
    pub fn external(to: impl Into<ActorId>, payload: impl Into<Bytes>) -> Self {
        Self {
            from: None,
            to: to.into(),
            payload: payload.into(),
            seq: 0,
            trace: None,
        }
    }

    /// Builds an external message carrying a trace context, so the
    /// cascade it triggers joins the caller's trace.
    pub fn external_traced(
        to: impl Into<ActorId>,
        payload: impl Into<Bytes>,
        ctx: TraceCtx,
    ) -> Self {
        Self {
            trace: Some(ctx),
            ..Self::external(to, payload)
        }
    }
}

/// An error raised by an actor's handler; triggers supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorError(pub String);

impl fmt::Display for ActorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor error: {}", self.0)
    }
}

impl std::error::Error for ActorError {}

/// Context handed to an actor while handling one message.
///
/// Collects outgoing messages; the system delivers them after the
/// handler returns (no re-entrancy, deterministic ordering).
#[derive(Debug, Default)]
pub struct Ctx {
    /// Messages queued by the current handler invocation.
    pub(crate) outbox: Vec<(ActorId, Bytes)>,
    /// Trace context of the delivery in progress: the `actor.deliver`
    /// span when tracing is on, else the incoming message's context.
    /// Outbox messages inherit it.
    pub(crate) trace: Option<TraceCtx>,
}

impl Ctx {
    /// Queues a message to another actor. The message inherits the
    /// trace context of the delivery being handled.
    pub fn send(&mut self, to: impl Into<ActorId>, payload: impl Into<Bytes>) {
        self.outbox.push((to.into(), payload.into()));
    }

    /// Number of messages queued so far in this invocation.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }

    /// The trace context this handler invocation runs under, if any.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }
}

/// The behaviour of one module.
pub trait Actor {
    /// Handles one message. Errors trigger the supervision policy.
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError>;

    /// Resets the actor to its initial state (used by restart
    /// supervision and replay recovery). Default: no-op, for stateless
    /// actors.
    fn reset(&mut self) {}

    /// Serializes the actor's state for checkpointing. Default: empty
    /// (stateless). `udc-dist` layers checkpoint/restore on this.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state from a checkpoint produced by [`Actor::snapshot`].
    fn restore(&mut self, _snapshot: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_sends_in_order() {
        let mut ctx = Ctx::default();
        ctx.send(ActorId::new("a"), Bytes::from_static(b"1"));
        ctx.send(ActorId::new("b"), Bytes::from_static(b"2"));
        assert_eq!(ctx.pending(), 2);
        assert_eq!(ctx.outbox[0].0.as_str(), "a");
        assert_eq!(ctx.outbox[1].0.as_str(), "b");
    }

    #[test]
    fn external_message_has_no_sender() {
        let m = Message::external(ActorId::new("x"), Bytes::from_static(b"hi"));
        assert!(m.from.is_none());
        assert_eq!(m.seq, 0);
    }

    #[test]
    fn actor_id_display() {
        assert_eq!(ActorId::new("A1").to_string(), "A1");
    }

    #[test]
    fn actor_id_serde_is_transparent() {
        use serde::{Deserialize, Serialize};
        let id = ActorId::new("m7");
        let v = id.to_value();
        assert_eq!(v, serde::Value::String("m7".to_string()));
        assert_eq!(ActorId::from_value(&v).unwrap(), id);
    }

    #[test]
    fn actor_id_clone_is_cheap_and_content_ordered() {
        let a = ActorId::new("alpha");
        let b = a.clone();
        assert_eq!(a, b);
        // Content ordering, independent of allocation identity.
        assert!(ActorId::new("a") < ActorId::new("b"));
        assert_eq!(ActorId::new("alpha"), a);
    }
}
