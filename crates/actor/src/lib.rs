//! # udc-actor — the actor runtime for UDC modules (§3.1)
//!
//! The paper proposes the Actor framework as the natural programming
//! model for fine-grained modules: "Each actor represents a module that
//! could run on a hardware resource unit. These (distributed) actors
//! communicate via input and output messages and there is no shared
//! state between actors. Evidence shows that explicit messages are more
//! efficient for a disaggregated setting than shared-memory
//! implementations. Furthermore, messages could be reliably recorded for
//! faster recovery."
//!
//! This crate provides:
//!
//! - [`actor::Actor`] — the module-behaviour trait (message in,
//!   messages out, no shared state);
//! - [`system::System`] — the optimized deterministic single-threaded
//!   executor: interned actor slots, an O(active) ready bitmap, and
//!   lock-free telemetry handles on the per-message path;
//! - [`naive::NaiveSystem`] — the seed executor, kept verbatim as the
//!   observable-equivalence oracle (see `tests/prop_equiv.rs`);
//! - [`log::MessageLog`] — reliable message recording enabling
//!   replay-based recovery (consumed by `udc-dist`), with an indexed
//!   replay suffix and checkpoint-driven truncation;
//! - [`par::ParSystem`] — the work-stealing parallel executor: the same
//!   slot/rank layout partitioned into worker shards, barrier-
//!   synchronized rounds, per-shard telemetry hubs merged at barriers,
//!   and a merged [`log::MessageLog`] with the same per-actor replay
//!   guarantees;
//! - [`runtime::ActorRuntime`] — the object-safe executor trait all
//!   three systems implement, so replay/recovery consumers are
//!   executor-agnostic;
//! - [`supervise::SupervisionPolicy`] — restart/drop/escalate handling
//!   of actor failures;
//! - [`parallel::ThreadPool`] — a crossbeam-based threaded executor for
//!   CPU-bound batch workloads where determinism is not required.

pub mod actor;
pub mod log;
pub mod naive;
pub mod par;
pub mod parallel;
mod readiness;
pub mod runtime;
mod slab;
pub mod supervise;
pub mod system;

pub use actor::{Actor, ActorError, ActorId, Ctx, Message};
pub use log::MessageLog;
pub use naive::NaiveSystem;
pub use par::ParSystem;
pub use parallel::ThreadPool;
pub use runtime::ActorRuntime;
pub use supervise::SupervisionPolicy;
pub use system::{ActorRef, System, SystemStats};
