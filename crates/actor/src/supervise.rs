//! Supervision: what the system does when an actor's handler fails.

use serde::{Deserialize, Serialize};

/// Failure-handling policy for actors, the local analogue of §3.4's
/// per-module failure handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum SupervisionPolicy {
    /// Reset the actor to its initial state and continue (the failed
    /// message is dropped).
    #[default]
    Restart,
    /// Reset the actor and redeliver the failed message once; if it
    /// fails again, drop it (poison-message protection).
    RestartAndRetry,
    /// Remove the actor from the system; further messages to it are
    /// counted as dead letters.
    Stop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_restart() {
        assert_eq!(SupervisionPolicy::default(), SupervisionPolicy::Restart);
    }
}
