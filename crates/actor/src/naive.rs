//! The seed actor system, kept verbatim as the equivalence oracle.
//!
//! [`NaiveSystem`] is the original `System` implementation: a
//! `BTreeMap<ActorId, Registered>` of actors, a scheduler round that
//! clones *every* id, and string-keyed telemetry calls on each
//! delivery. It is deliberately simple and obviously correct; the
//! optimized [`crate::system::System`] must stay observably equivalent
//! to it (delivery order, stats, log contents, dead letters,
//! supervision, telemetry), which `tests/prop_equiv.rs` checks on
//! random actor graphs — the same oracle pattern PR 2 used for the
//! indexed allocation pool.
//!
//! The only intentional change from the seed: the mailbox-depth gauge
//! is only touched when the depth is a new high-water candidate (the
//! high-water mark itself is unchanged — pinned by a test), matching
//! the optimized system so both export identical metrics.

use crate::actor::{Actor, ActorId, Ctx, Message};
use crate::log::MessageLog;
use crate::supervise::SupervisionPolicy;
use crate::system::SystemStats;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use udc_telemetry::{Labels, Telemetry, TraceCtx};

struct Registered {
    actor: Box<dyn Actor>,
    mailbox: VecDeque<Message>,
    policy: SupervisionPolicy,
    stopped: bool,
}

/// The seed deterministic single-threaded actor system (reference
/// implementation; see the module docs).
#[derive(Default)]
pub struct NaiveSystem {
    actors: BTreeMap<ActorId, Registered>,
    log: MessageLog,
    next_seq: u64,
    stats: SystemStats,
    obs: Telemetry,
    mailbox_hw: i64,
}

impl NaiveSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the observability hub (string-keyed path).
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// Registers an actor under `id` with a supervision policy.
    /// Replaces any existing registration with the same id.
    pub fn spawn(
        &mut self,
        id: impl Into<ActorId>,
        actor: Box<dyn Actor>,
        policy: SupervisionPolicy,
    ) {
        self.actors.insert(
            id.into(),
            Registered {
                actor,
                mailbox: VecDeque::new(),
                policy,
                stopped: false,
            },
        );
    }

    /// Enqueues an external message.
    pub fn inject(&mut self, to: impl Into<ActorId>, payload: impl Into<Bytes>) {
        self.enqueue(Message::external(to, payload));
    }

    /// Enqueues an external message under an explicit trace context.
    pub fn inject_traced(
        &mut self,
        to: impl Into<ActorId>,
        payload: impl Into<Bytes>,
        ctx: TraceCtx,
    ) {
        self.enqueue(Message::external_traced(to, payload, ctx));
    }

    fn enqueue(&mut self, msg: Message) {
        match self.actors.get_mut(&msg.to) {
            Some(r) if !r.stopped => {
                r.mailbox.push_back(msg);
                let depth = r.mailbox.len() as i64;
                if depth > self.mailbox_hw {
                    self.mailbox_hw = depth;
                    if self.obs.is_enabled() {
                        self.obs
                            .gauge_set("actor.mailbox_depth", Labels::none(), depth);
                    }
                }
            }
            _ => {
                self.stats.dead_letters += 1;
                self.obs.incr("actor.dead_letters", Labels::none(), 1);
            }
        }
    }

    /// Delivers at most one message to each actor (in id order).
    /// Returns the number of messages handled. O(all actors) per
    /// round: the id snapshot clones every key.
    pub fn step(&mut self) -> usize {
        let ids: Vec<ActorId> = self.actors.keys().cloned().collect();
        let mut handled = 0;
        for id in ids {
            let Some(mut msg) = self.actors.get_mut(&id).and_then(|r| {
                if r.stopped {
                    None
                } else {
                    r.mailbox.pop_front()
                }
            }) else {
                continue;
            };
            self.next_seq += 1;
            msg.seq = self.next_seq;
            handled += 1;
            self.deliver(&id, msg, true);
        }
        handled
    }

    fn deliver(&mut self, id: &ActorId, msg: Message, allow_retry: bool) {
        let Some(r) = self.actors.get_mut(id) else {
            self.stats.dead_letters += 1;
            self.obs.incr("actor.dead_letters", Labels::none(), 1);
            return;
        };
        // Each traced delivery becomes an `actor.deliver` span parented
        // on the incoming message's context; outbox messages inherit the
        // span's context so the cascade forms a connected DAG.
        let span = if msg.trace.is_some() && self.obs.is_enabled() {
            Some(self.obs.span_opt(msg.trace.as_ref(), "actor.deliver"))
        } else {
            None
        };
        let dctx = span.as_ref().and_then(|s| s.ctx()).or(msg.trace);
        let mut ctx = Ctx {
            trace: dctx,
            ..Ctx::default()
        };
        let result = r.actor.on_message(&mut ctx, &msg);
        match result {
            Ok(()) => {
                self.stats.delivered += 1;
                self.obs.incr("actor.delivered", Labels::none(), 1);
                self.log.record(msg.clone());
                let from = id.clone();
                for (to, payload) in ctx.outbox {
                    self.enqueue(Message {
                        from: Some(from.clone()),
                        to,
                        payload,
                        seq: 0,
                        trace: dctx,
                    });
                }
            }
            Err(_) => {
                self.stats.failures += 1;
                self.obs.incr("actor.failures", Labels::none(), 1);
                match r.policy {
                    SupervisionPolicy::Restart => {
                        r.actor.reset();
                        self.stats.restarts += 1;
                        self.obs.incr("actor.restarts", Labels::none(), 1);
                    }
                    SupervisionPolicy::RestartAndRetry => {
                        r.actor.reset();
                        self.stats.restarts += 1;
                        self.obs.incr("actor.restarts", Labels::none(), 1);
                        if allow_retry {
                            self.deliver(id, msg, false);
                        }
                    }
                    SupervisionPolicy::Stop => {
                        r.stopped = true;
                        r.mailbox.clear();
                    }
                }
            }
        }
    }

    /// Runs until no mailbox has messages, or `max_steps` rounds elapse.
    pub fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool) {
        let mut total = 0u64;
        for _ in 0..max_steps {
            let handled = self.step();
            if handled == 0 {
                return (total, true);
            }
            total += handled as u64;
        }
        (total, !self.has_pending())
    }

    /// True when any mailbox still has messages.
    pub fn has_pending(&self) -> bool {
        self.actors
            .values()
            .any(|r| !r.stopped && !r.mailbox.is_empty())
    }

    /// The reliable message log.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Drops log entries made obsolete by a checkpoint at `seq`.
    pub fn truncate_log_through(&mut self, seq: u64) -> usize {
        self.log.truncate_through(seq)
    }

    /// Execution statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Immutable access to an actor.
    pub fn actor(&self, id: &ActorId) -> Option<&dyn Actor> {
        self.actors.get(id).map(|r| r.actor.as_ref())
    }

    /// Mutable access to an actor (checkpoint/restore flows).
    pub fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)> {
        self.actors.get_mut(id).map(|r| r.actor.as_mut())
    }

    /// Ids of all registered (non-stopped) actors.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        self.actors
            .iter()
            .filter(|(_, r)| !r.stopped)
            .map(|(id, _)| id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorError;

    struct Forwarder {
        next: ActorId,
    }

    impl Actor for Forwarder {
        fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            ctx.send(self.next.clone(), msg.payload.clone());
            Ok(())
        }
    }

    #[test]
    fn seed_round_semantics_ping_pong() {
        // Pins the seed scheduling contract the optimized system must
        // reproduce: a forward to an actor later in id order fires in
        // the same round, so a two-actor ping-pong handles 2 messages
        // per round.
        let mut sys = NaiveSystem::new();
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Forwarder {
                next: ActorId::new("a"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"ball"));
        let (n, quiescent) = sys.run_until_quiescent(10);
        assert!(!quiescent);
        assert_eq!(n, 20);
    }

    #[test]
    fn gauge_guard_leaves_high_water_unchanged() {
        // Satellite: the mailbox-depth gauge is only touched on a new
        // high-water candidate. The high-water mark must equal the seed
        // behaviour (gauge_set on every enqueue): deepest mailbox seen.
        let mut sys = NaiveSystem::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        struct Sink;
        impl Actor for Sink {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                Ok(())
            }
        }
        sys.spawn("s", Box::new(Sink), SupervisionPolicy::Restart);
        for _ in 0..3 {
            sys.inject("s", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        // A shallower second wave must not move the gauge at all.
        sys.inject("s", Bytes::from_static(b"m"));
        sys.inject("s", Bytes::from_static(b"m"));
        sys.run_until_quiescent(100);
        assert_eq!(
            obs.gauge("actor.mailbox_depth", &Labels::none()),
            Some((3, 3))
        );
    }
}
