//! Non-deterministic parallelism primitives for CPU-bound batch work:
//! a small crossbeam-based [`ThreadPool`] for long-lived pools, and the
//! scoped [`fan_out`] for one-shot trial fan-outs whose results must
//! land in input order (the primitive the experiment harness in
//! `udc-bench` builds on).
//!
//! The deterministic [`crate::system::System`] is the simulation
//! executor and [`crate::par::ParSystem`] the deterministic parallel
//! one; these helpers exist for workloads (experiment drivers, batch
//! analytics in examples) that want raw parallelism and do not need
//! deterministic interleaving.

use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Runs `f(0..trials)` across `threads` workers and returns the results
/// indexed by trial, exactly as a serial `(0..trials).map(f)` would.
///
/// Work is distributed by an atomic next-trial counter, so uneven trial
/// costs self-balance. With `threads <= 1` (or a single trial) no
/// threads are spawned and `f` runs inline on the caller's stack.
/// Determinism at any thread count is by construction: threads only
/// decide *who* computes a trial, never *what* it computes or where its
/// result lands.
pub fn fan_out<T, F>(threads: usize, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || trials <= 1 {
        return (0..trials).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("fan_out slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("fan_out slot poisoned")
                .expect("every trial fills its slot")
        })
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. Dropping the pool joins all workers.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawns `size` workers.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is alive while tx is Some")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs `f` over every item of `items` in parallel and returns the
    /// results in input order.
    ///
    /// Items are submitted in contiguous chunks — a few per worker so
    /// uneven chunk costs still balance — rather than one job per item:
    /// per-item submission costs one box allocation plus two channel
    /// crossings, which dominates wall-clock for cheap `f` (the original
    /// shape regressed ~6× on a trivial map at 8 workers).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        use std::sync::Arc;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // ~4 chunks per worker: granular enough to self-balance, coarse
        // enough that submission overhead is amortized across the chunk.
        let chunk = n.div_ceil(self.size * 4).max(1);
        let f = Arc::new(f);
        let (rtx, rrx) = unbounded::<(usize, Vec<R>)>();
        let mut start = 0usize;
        let mut items = items.into_iter();
        let mut jobs = 0usize;
        while start < n {
            let batch: Vec<T> = items.by_ref().take(chunk).collect();
            let len = batch.len();
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            self.execute(move || {
                let out: Vec<R> = batch.into_iter().map(|x| f(x)).collect();
                let _ = rtx.send((start, out));
            });
            start += len;
            jobs += 1;
        }
        drop(rtx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..jobs {
            let (at, out) = rrx.recv().expect("every chunk sends one result");
            for (off, r) in out.into_iter().enumerate() {
                slots[at + off] = Some(r);
            }
        }
        slots.into_iter().map(|s| s.expect("filled")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // Joins workers.
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(8);
        let out = pool.map((0..1000).collect::<Vec<u64>>(), |x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn map_handles_uneven_final_chunk() {
        // Sizes chosen to leave a short final chunk (and some where the
        // chunk size exceeds the remainder) at several worker counts.
        for workers in [1, 3, 8] {
            let pool = ThreadPool::new(workers);
            for n in [1usize, 2, 7, 31, 33, 97, 129] {
                let out = pool.map((0..n as u64).collect::<Vec<_>>(), |x| x + 1);
                let want: Vec<u64> = (1..=n as u64).collect();
                assert_eq!(out, want, "workers={workers} n={n}");
            }
        }
    }

    #[test]
    fn map_order_survives_reversed_cost_profile() {
        // Early items are the slow ones, so later chunks finish first
        // and results arrive out of submission order.
        let pool = ThreadPool::new(4);
        let out = pool.map((0..200u64).collect::<Vec<_>>(), |x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 3
        });
        assert_eq!(out, (0..200u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_input() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn fan_out_results_arrive_in_trial_order_at_any_thread_count() {
        let serial = fan_out(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(fan_out(threads, 40, |i| i * i), serial);
        }
    }

    #[test]
    fn fan_out_more_threads_than_trials_is_fine() {
        assert_eq!(fan_out(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(fan_out(8, 0, |i| i), Vec::<usize>::new());
    }
}
