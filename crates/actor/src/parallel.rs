//! A small crossbeam-based thread pool for CPU-bound batch work.
//!
//! The deterministic [`crate::system::System`] is the simulation
//! executor; this pool exists for workloads (experiment drivers, batch
//! analytics in examples) that want real parallelism and do not need
//! deterministic interleaving.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. Dropping the pool joins all workers.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Submits a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is alive while tx is Some")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs `f` over every item of `items` in parallel and returns the
    /// results in input order.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        use std::sync::Arc;
        let f = Arc::new(f);
        let (rtx, rrx) = unbounded::<(usize, R)>();
        let n = items.len();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            self.execute(move || {
                let r = f(item);
                let _ = rtx.send((i, r));
            });
        }
        drop(rtx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rrx.recv().expect("every job sends one result");
            slots[i] = Some(r);
        }
        slots.into_iter().map(|s| s.expect("filled")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // Joins workers.
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(8);
        let out = pool.map((0..1000).collect::<Vec<u64>>(), |x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn map_empty_input() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadPool::new(0);
    }
}
