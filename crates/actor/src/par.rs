//! `ParSystem` — the work-stealing parallel actor executor.
//!
//! The same dense-slot / rank-order layout as [`crate::system::System`]
//! (shared via [`crate::slab::SlotTable`]), partitioned across a crew of
//! worker threads in contiguous, bitmap-word-aligned rank shards
//! ([`crate::slab::shard_ranges`]). Execution is organized as
//! barrier-synchronized *rounds*:
//!
//! 1. **Worklist build (parallel).** Each worker scans its own shard's
//!    segment of the [`crate::readiness::AtomicReadySet`] and snapshots
//!    the ready ranks into a local worklist, publishing a packed
//!    `(next, limit)` claim word.
//! 2. **Execute + steal (parallel).** A worker claims small batches off
//!    the *front* of its own worklist with a CAS; when it runs dry it
//!    steals the *back half* of a victim's remaining range. Each claimed
//!    rank is owned exclusively (the claim word linearizes ownership),
//!    so the worker mutates that actor's slot directly: pops the front
//!    message, runs the handler with supervision (restart / one retry /
//!    stop), and writes the outcome into the round's staging cell for
//!    that worklist index. Mailbox drains clear ready bits; nothing sets
//!    bits during this phase, so relaxed atomics + the round barrier are
//!    the only synchronization the bitmap needs.
//! 3. **Barrier (single-threaded).** The coordinator walks shards in
//!    order and worklist indices in order — which is ascending global
//!    rank order, no sorting required — assigning each fired delivery
//!    its sequence number, appending successes to the shared
//!    [`MessageLog`], minting `actor.deliver` spans for traced
//!    deliveries on the *main* hub (workers never touch the span
//!    store), draining buffered outboxes into mailboxes, folding worker
//!    stat deltas, and absorbing each shard's private telemetry hub
//!    with [`udc_telemetry::Telemetry::absorb_draining`].
//!
//! Because every cross-actor effect (sends, seq assignment, log append)
//! is applied at the barrier in rank order, the log, stats, and final
//! actor state are **byte-identical at any thread count** — work
//! stealing only moves *which worker* runs a handler, never the order
//! effects are applied. Against the deterministic [`System`] the
//! contract is deliberately weaker (see `DESIGN.md` §14): `System`
//! delivers same-round cascades mid-round, `ParSystem` defers them to
//! the next round, so round structure differs — but for
//! commutativity-respecting workloads (handlers that don't read
//! `Message::seq`, under `Restart`/`RestartAndRetry` supervision) the
//! per-actor message order and final actor state are identical, which
//! the three-way proptest oracle in `tests/prop_equiv.rs` checks
//! against both `System` and the seed `NaiveSystem`.

use crate::actor::{Actor, ActorId, Ctx, Message};
use crate::log::MessageLog;
use crate::readiness::AtomicReadySet;
use crate::slab::{shard_ranges, Slot, SlotTable, SpawnEffect};
use crate::supervise::SupervisionPolicy;
use crate::system::{ActorRef, SystemStats};
use bytes::Bytes;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use udc_telemetry::{CounterHandle, GaugeHandle, Labels, Telemetry, TraceCtx};

/// How many worklist entries a worker claims from its own shard per
/// CAS. Small enough to leave meat for stealers, large enough that the
/// claim word isn't contended per message.
const CLAIM_BATCH: u32 = 16;

/// Claim-word value meaning "this shard has not published its worklist
/// yet" — stealers skip it and keep the round alive until it appears.
const UNPUBLISHED: u64 = u64::MAX;

#[inline]
fn pack(next: u32, limit: u32) -> u64 {
    ((limit as u64) << 32) | next as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

/// Outcome of one fired rank, written by exactly one worker into the
/// staging cell matching the rank's worklist index, consumed by the
/// coordinator at the barrier.
#[derive(Default)]
struct Fired {
    trace: Option<TraceCtx>,
    /// Handler attempts that returned `Err` (0, 1, or 2 with retry);
    /// the barrier mints one deliver span per attempt, as `System` does.
    failed_attempts: u8,
    /// The delivered message, present iff some attempt succeeded; the
    /// barrier assigns its seq and appends it to the log.
    msg: Option<Message>,
    /// Sender id for outbox sends (set only when the outbox is
    /// non-empty).
    from: Option<ActorId>,
    outbox: Vec<(ActorId, Bytes)>,
}

/// A staging cell one worker writes and the coordinator reads after the
/// barrier. The claim protocol guarantees exclusive access per index.
#[derive(Default)]
struct StageCell(UnsafeCell<Fired>);

// SAFETY: cells are written by exactly one worker (the one that claimed
// the index) during the parallel phase and read only by the coordinator
// after the crew barrier; the barrier's mutex provides the
// happens-before edge.
unsafe impl Sync for StageCell {}

/// Per-worker effects of one parallel phase, folded by the coordinator.
#[derive(Default, Clone, Copy)]
struct WorkerDelta {
    delivered: u64,
    failures: u64,
    restarts: u64,
    dead_letters: u64,
    /// Messages removed from mailboxes: fired deliveries plus mailboxes
    /// cleared by `Stop` supervision.
    popped: usize,
    /// Messages pushed by a batch injection.
    injected: usize,
    /// Deepest mailbox this worker produced while injecting.
    max_depth: i64,
    /// Steal batches this worker took from victims.
    steals: u64,
    /// Messages this worker executed (own + stolen) — feeds the
    /// `par.shard_imbalance` gauge.
    executed: u64,
}

/// Per-shard private telemetry: lock-free handles into the shard's own
/// hub, the only telemetry a worker touches on the hot path.
#[derive(Default)]
struct ShardHub {
    executed_h: CounterHandle,
    steals_h: CounterHandle,
    injected_h: CounterHandle,
}

/// Everything a worker needs for one execution round, lifetime-bound to
/// the coordinator's `&mut self` and shared with the crew by reference.
/// Raw pointers address per-shard structures (worklists, staging,
/// deltas) and the slot slab; disjointness is by shard index or by the
/// claim protocol.
struct RoundCtx<'a> {
    slots: *mut Slot,
    order: &'a [u32],
    ready: &'a AtomicReadySet,
    ranges: &'a [(u32, u32)],
    worklists: *mut Vec<u32>,
    staging: *mut Vec<StageCell>,
    claims: &'a [AtomicU64],
    deltas: *mut WorkerDelta,
    hubs: &'a [ShardHub],
    threads: usize,
}

// SAFETY: see the field-by-field discipline above; every mutable access
// through the raw pointers is either indexed by the worker's own shard
// or guarded by a successful claim CAS.
unsafe impl Sync for RoundCtx<'_> {}
unsafe impl Send for RoundCtx<'_> {}

/// One batch-injection round: workers scan the shared batch and push
/// only the items whose target rank falls in their shard.
struct InjectCtx<'a> {
    slots: *mut Slot,
    /// slot → rank, rebuilt at rank refresh; immutable during the round.
    slot_rank: &'a [u32],
    ready: &'a AtomicReadySet,
    ranges: &'a [(u32, u32)],
    batch: &'a [(ActorRef, Bytes)],
    deltas: *mut WorkerDelta,
    hubs: &'a [ShardHub],
}

// SAFETY: a slot is mutated only by the worker whose shard owns its
// rank; `slot_rank` is read-only shared state.
unsafe impl Sync for InjectCtx<'_> {}
unsafe impl Send for InjectCtx<'_> {}

/// Erased job pointer handed to the crew; valid for the duration of one
/// `Crew::run` call (the coordinator blocks until every worker is done).
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync and outlives the dispatch (see
// `Crew::run`).
unsafe impl Send for JobPtr {}

struct CtlState {
    epoch: u64,
    job: Option<JobPtr>,
    remaining: usize,
    shutdown: bool,
    /// Set when a worker's job panicked; the coordinator re-panics
    /// after the round instead of hanging on a dead thread.
    panicked: bool,
}

struct Ctl {
    state: Mutex<CtlState>,
    start: Condvar,
    done: Condvar,
}

/// A persistent crew of worker threads woken per round. One mutex + two
/// condvars: `start` publishes a new epoch + job, `done` signals the
/// last worker finishing. Threads park between rounds, so an idle
/// `ParSystem` costs nothing but memory.
struct Crew {
    ctl: Arc<Ctl>,
    handles: Vec<JoinHandle<()>>,
}

impl Crew {
    fn spawn(workers: usize) -> Self {
        let ctl = Arc::new(Ctl {
            state: Mutex::new(CtlState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panicked: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let ctl = Arc::clone(&ctl);
                std::thread::Builder::new()
                    .name(format!("udc-par-{w}"))
                    .spawn(move || worker_loop(&ctl, w))
                    .expect("spawning par worker")
            })
            .collect();
        Self { ctl, handles }
    }

    /// Runs `job(w)` on every worker and blocks until all finish.
    fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the borrow is erased to 'static only for the lifetime
        // of this call — the wait loop below does not return until every
        // worker has finished running the job, and `job` is cleared
        // before the pointer could dangle.
        let ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(job as *const (dyn Fn(usize) + Sync)) };
        {
            let mut st = self.ctl.state.lock().expect("par crew poisoned");
            st.job = Some(JobPtr(ptr));
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.ctl.start.notify_all();
        }
        let mut st = self.ctl.state.lock().expect("par crew poisoned");
        while st.remaining > 0 {
            st = self.ctl.done.wait(st).expect("par crew poisoned");
        }
        st.job = None;
        assert!(!st.panicked, "a par worker panicked during the round");
    }
}

impl Drop for Crew {
    fn drop(&mut self) {
        {
            let mut st = self.ctl.state.lock().expect("par crew poisoned");
            st.shutdown = true;
            self.ctl.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(ctl: &Ctl, w: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = ctl.state.lock().expect("par crew poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.as_ref().expect("epoch bumped without a job").0;
                }
                st = ctl.start.wait(st).expect("par crew poisoned");
            }
        };
        // SAFETY: the coordinator keeps the job alive until `remaining`
        // hits zero, which happens strictly after this call returns.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job)(w) }));
        let mut st = ctl.state.lock().expect("par crew poisoned");
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            ctl.done.notify_one();
        }
    }
}

/// Claims up to `max` entries off the front of a shard's worklist.
fn take_front(claim: &AtomicU64, max: u32) -> Option<(u32, u32)> {
    let mut cur = claim.load(Ordering::Acquire);
    loop {
        if cur == UNPUBLISHED {
            return None;
        }
        let (next, limit) = unpack(cur);
        if next >= limit {
            return None;
        }
        let take = max.min(limit - next);
        match claim.compare_exchange_weak(
            cur,
            pack(next + take, limit),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((next, next + take)),
            Err(c) => cur = c,
        }
    }
}

/// Steals the back half of a victim's unclaimed range (at least 2
/// entries remaining — a single leftover item belongs to the owner).
fn steal_back(claim: &AtomicU64) -> Option<(u32, u32)> {
    let mut cur = claim.load(Ordering::Acquire);
    loop {
        if cur == UNPUBLISHED {
            return None;
        }
        let (next, limit) = unpack(cur);
        let remaining = limit.saturating_sub(next);
        if remaining < 2 {
            return None;
        }
        let take = remaining / 2;
        match claim.compare_exchange_weak(
            cur,
            pack(next, limit - take),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((limit - take, limit)),
            Err(c) => cur = c,
        }
    }
}

/// One worker's share of an execution round: build + publish the
/// shard's worklist, then drain own work and steal until the round is
/// globally dry.
fn run_round_worker(rc: &RoundCtx<'_>, w: usize) {
    // Phase 1: snapshot this shard's ready ranks.
    // SAFETY: worklist/staging index `w` are this worker's own until
    // published; other workers only read them after the Release store
    // of the claim word below.
    let wl = unsafe { &mut *rc.worklists.add(w) };
    wl.clear();
    let (lo, hi) = rc.ranges[w];
    rc.ready.for_set_in(lo, hi, |r| wl.push(r));
    let st = unsafe { &mut *rc.staging.add(w) };
    st.clear();
    st.resize_with(wl.len(), StageCell::default);
    rc.claims[w].store(pack(0, wl.len() as u32), Ordering::Release);

    // Phase 2: execute own front batches, then steal back halves.
    let mut d = WorkerDelta::default();
    'work: loop {
        if let Some((a, b)) = take_front(&rc.claims[w], CLAIM_BATCH) {
            execute_range(rc, w, a, b, &mut d);
            continue;
        }
        let mut unfinished = false;
        for off in 1..rc.threads {
            let v = (w + off) % rc.threads;
            let cur = rc.claims[v].load(Ordering::Acquire);
            if cur == UNPUBLISHED {
                unfinished = true;
                continue;
            }
            let (next, limit) = unpack(cur);
            if next < limit {
                if let Some((a, b)) = steal_back(&rc.claims[v]) {
                    d.steals += 1;
                    execute_range(rc, v, a, b, &mut d);
                    continue 'work;
                }
                // Lost the race; the victim may still have work next
                // time around.
                unfinished = true;
            }
        }
        if !unfinished {
            break;
        }
        std::thread::yield_now();
    }
    rc.hubs[w].executed_h.incr(d.executed);
    rc.hubs[w].steals_h.incr(d.steals);
    // SAFETY: delta slot `w` is this worker's own.
    unsafe { *rc.deltas.add(w) = d };
}

/// Executes worklist indices `[a, b)` of shard `v` (claimed by the
/// caller): pop, handle with supervision, stage the outcome.
fn execute_range(rc: &RoundCtx<'_>, v: usize, a: u32, b: u32, d: &mut WorkerDelta) {
    // SAFETY: shard `v` published its worklist/staging before the claim
    // that got us here (Release/Acquire on the claim word); both are
    // read-only shared now except the claimed staging cells.
    let wl = unsafe { &*rc.worklists.add(v) };
    let st = unsafe { &*rc.staging.add(v) };
    for i in a..b {
        let rank = wl[i as usize];
        let slot_idx = rc.order[rank as usize] as usize;
        // SAFETY: rank appears in exactly one worklist exactly once, and
        // this claim owns index `i`; distinct ranks address distinct
        // slots, so this is the only live reference to the slot.
        let slot = unsafe { &mut *rc.slots.add(slot_idx) };
        debug_assert!(!slot.stopped, "stopped actors are never ready");
        let msg = slot
            .mailbox
            .pop_front()
            .expect("ready rank with empty mailbox");
        d.popped += 1;
        d.executed += 1;
        if slot.mailbox.is_empty() {
            rc.ready.clear(rank);
        }
        let mut fired = Fired {
            trace: msg.trace,
            ..Fired::default()
        };
        let mut retry_left = true;
        loop {
            let mut ctx = Ctx {
                trace: fired.trace,
                ..Ctx::default()
            };
            match slot.actor.on_message(&mut ctx, &msg) {
                Ok(()) => {
                    d.delivered += 1;
                    if !ctx.outbox.is_empty() {
                        fired.from = Some(slot.id.clone());
                        fired.outbox = ctx.outbox;
                    }
                    fired.msg = Some(msg);
                    break;
                }
                Err(_) => {
                    d.failures += 1;
                    fired.failed_attempts += 1;
                    match slot.policy {
                        SupervisionPolicy::Restart => {
                            slot.actor.reset();
                            d.restarts += 1;
                            break;
                        }
                        SupervisionPolicy::RestartAndRetry => {
                            slot.actor.reset();
                            d.restarts += 1;
                            if retry_left {
                                // Same delivery attempt as `System`: one
                                // retry, same message, same (eventual)
                                // seq.
                                retry_left = false;
                                continue;
                            }
                            break;
                        }
                        SupervisionPolicy::Stop => {
                            slot.stopped = true;
                            d.popped += slot.mailbox.len();
                            slot.mailbox.clear();
                            rc.ready.clear(rank);
                            break;
                        }
                    }
                }
            }
        }
        // SAFETY: this claim owns staging index `i` of shard `v`.
        unsafe { *st[i as usize].0.get() = fired };
    }
}

/// One worker's share of a batch injection: push every batch item whose
/// target rank lies in this worker's shard, in batch order.
fn run_inject_worker(ic: &InjectCtx<'_>, w: usize) {
    let (lo, hi) = ic.ranges[w];
    let mut d = WorkerDelta::default();
    for (at, payload) in ic.batch {
        let rank = ic.slot_rank[at.0 as usize];
        if rank < lo || rank >= hi {
            continue;
        }
        // SAFETY: the rank is in this worker's shard, so no other
        // worker touches this slot during the injection round.
        let slot = unsafe { &mut *ic.slots.add(at.0 as usize) };
        if slot.stopped {
            d.dead_letters += 1;
            continue;
        }
        if slot.mailbox.capacity() == 0 {
            slot.mailbox.reserve(16);
        }
        slot.mailbox.push_back(Message {
            from: None,
            to: slot.id.clone(),
            payload: payload.clone(),
            seq: 0,
            trace: None,
        });
        let depth = slot.mailbox.len();
        d.injected += 1;
        if depth == 1 {
            ic.ready.set(rank);
        }
        if depth as i64 > d.max_depth {
            d.max_depth = depth as i64;
        }
    }
    ic.hubs[w].injected_h.incr(d.injected as u64);
    // SAFETY: delta slot `w` is this worker's own.
    unsafe { *ic.deltas.add(w) = d };
}

/// The work-stealing parallel actor executor. See the module docs for
/// the round protocol and the determinism contract; the public API
/// mirrors [`System`] (plus [`ParSystem::inject_batch`], the parallel
/// injection path).
pub struct ParSystem {
    threads: usize,
    table: SlotTable,
    ready: AtomicReadySet,
    /// slot → rank, rebuilt with the rank order; lets injection rounds
    /// route a pre-resolved [`ActorRef`] to its shard without touching
    /// the slot.
    slot_rank: Vec<u32>,
    ranges: Vec<(u32, u32)>,
    worklists: Vec<Vec<u32>>,
    staging: Vec<Vec<StageCell>>,
    claims: Vec<AtomicU64>,
    deltas: Vec<WorkerDelta>,
    queued: usize,
    log: MessageLog,
    next_seq: u64,
    stats: SystemStats,
    obs: Telemetry,
    shard_obs: Vec<Telemetry>,
    hubs: Vec<ShardHub>,
    mailbox_hw: i64,
    delivered_h: CounterHandle,
    failures_h: CounterHandle,
    restarts_h: CounterHandle,
    dead_letters_h: CounterHandle,
    mailbox_depth_h: GaugeHandle,
    imbalance_h: GaugeHandle,
    crew: Option<Crew>,
}

impl ParSystem {
    /// Creates an executor with `threads` worker shards (clamped to at
    /// least 1). `threads == 1` runs every round inline on the calling
    /// thread — no crew, no wakeups — and is the reference point the
    /// cross-thread-count determinism tests compare against.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            threads,
            table: SlotTable::default(),
            ready: AtomicReadySet::default(),
            slot_rank: Vec::new(),
            ranges: shard_ranges(0, threads),
            worklists: (0..threads).map(|_| Vec::new()).collect(),
            staging: (0..threads).map(|_| Vec::new()).collect(),
            claims: (0..threads).map(|_| AtomicU64::new(UNPUBLISHED)).collect(),
            deltas: vec![WorkerDelta::default(); threads],
            queued: 0,
            log: MessageLog::default(),
            next_seq: 0,
            stats: SystemStats::default(),
            obs: Telemetry::default(),
            shard_obs: vec![Telemetry::default(); threads],
            hubs: (0..threads).map(|_| ShardHub::default()).collect(),
            mailbox_hw: 0,
            delivered_h: CounterHandle::default(),
            failures_h: CounterHandle::default(),
            restarts_h: CounterHandle::default(),
            dead_letters_h: CounterHandle::default(),
            mailbox_depth_h: GaugeHandle::default(),
            imbalance_h: GaugeHandle::default(),
            crew: None,
        }
    }

    /// Number of worker shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs the observability hub. The main hub gets the same
    /// `actor.*` counters and `actor.mailbox_depth` gauge as [`System`],
    /// plus a `par.shard_imbalance` gauge (spread between the busiest
    /// and laziest worker per round — diagnostic only, inherently
    /// timing-dependent). Each shard additionally gets a *private* hub
    /// with `par.executed` / `par.steals` / `par.injected` counters
    /// under `module=shard<i>` labels, incremented by workers through
    /// lock-free handles and folded into the main hub at every round
    /// barrier via [`Telemetry::absorb_draining`].
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.delivered_h = obs.counter_handle("actor.delivered", &Labels::none());
        self.failures_h = obs.counter_handle("actor.failures", &Labels::none());
        self.restarts_h = obs.counter_handle("actor.restarts", &Labels::none());
        self.dead_letters_h = obs.counter_handle("actor.dead_letters", &Labels::none());
        self.mailbox_depth_h = obs.gauge_handle("actor.mailbox_depth", &Labels::none());
        self.imbalance_h = obs.gauge_handle("par.shard_imbalance", &Labels::none());
        for i in 0..self.threads {
            let hub = if obs.is_enabled() {
                Telemetry::enabled()
            } else {
                Telemetry::disabled()
            };
            let labels = Labels::module("par", format!("shard{i}"));
            self.hubs[i] = ShardHub {
                executed_h: hub.counter_handle("par.executed", &labels),
                steals_h: hub.counter_handle("par.steals", &labels),
                injected_h: hub.counter_handle("par.injected", &labels),
            };
            self.shard_obs[i] = hub;
        }
        self.obs = obs;
    }

    /// Registers an actor under `id` with a supervision policy,
    /// replacing any existing registration with the same id (identical
    /// semantics to [`System::spawn`]).
    pub fn spawn(
        &mut self,
        id: impl Into<ActorId>,
        actor: Box<dyn Actor>,
        policy: SupervisionPolicy,
    ) {
        let dirty_before = self.table.ranks_dirty();
        match self.table.spawn(id.into(), actor, policy) {
            SpawnEffect::Reused { cleared, rank } => {
                self.queued -= cleared;
                if !dirty_before {
                    self.ready.clear(rank);
                }
            }
            SpawnEffect::Fresh => {}
        }
    }

    /// Enqueues an external message.
    pub fn inject(&mut self, to: impl Into<ActorId>, payload: impl Into<Bytes>) {
        self.enqueue(Message::external(to, payload));
    }

    /// Enqueues an external message under an explicit trace context.
    pub fn inject_traced(
        &mut self,
        to: impl Into<ActorId>,
        payload: impl Into<Bytes>,
        ctx: TraceCtx,
    ) {
        self.enqueue(Message::external_traced(to, payload, ctx));
    }

    /// Resolves an id to its injection handle (see [`System::resolve`];
    /// the handles are interchangeable in meaning, not across systems).
    pub fn resolve(&self, id: &ActorId) -> Option<ActorRef> {
        self.table.lookup(id).map(ActorRef)
    }

    /// Enqueues an external message through a pre-resolved handle.
    pub fn inject_at(&mut self, at: ActorRef, payload: impl Into<Bytes>) {
        let s = self.table.slot_mut(at.0);
        if s.stopped {
            self.stats.dead_letters += 1;
            self.dead_letters_h.incr(1);
            return;
        }
        let msg = Message {
            from: None,
            to: s.id.clone(),
            payload: payload.into(),
            seq: 0,
            trace: None,
        };
        if s.mailbox.capacity() == 0 {
            s.mailbox.reserve(16);
        }
        s.mailbox.push_back(msg);
        let (depth, rank) = (s.mailbox.len(), s.rank);
        self.note_enqueued(depth, rank);
    }

    /// Enqueues a whole batch of pre-resolved external messages with the
    /// workers pushing in parallel: each worker scans the batch and
    /// claims the items whose target rank falls in its shard, so every
    /// mailbox receives its messages in batch order and the result is
    /// identical to calling [`ParSystem::inject_at`] per item — minus
    /// the serial per-message cost, which is what Amdahl's law demands
    /// off the storm path (serial injection is ~30% of the
    /// single-threaded ping-storm budget).
    pub fn inject_batch(&mut self, batch: &[(ActorRef, Bytes)]) {
        if batch.is_empty() {
            return;
        }
        self.refresh_ranks();
        if self.threads == 1 {
            for (at, payload) in batch {
                self.inject_at(*at, payload.clone());
            }
            return;
        }
        self.ensure_crew();
        let ic = InjectCtx {
            slots: self.table.slots_mut().as_mut_ptr(),
            slot_rank: &self.slot_rank,
            ready: &self.ready,
            ranges: &self.ranges,
            batch,
            deltas: self.deltas.as_mut_ptr(),
            hubs: &self.hubs,
        };
        let crew = self.crew.as_ref().expect("crew just ensured");
        crew.run(&|w| run_inject_worker(&ic, w));
        let mut dead = 0u64;
        let mut max_depth = 0i64;
        for d in &self.deltas {
            self.queued += d.injected;
            dead += d.dead_letters;
            max_depth = max_depth.max(d.max_depth);
        }
        if dead > 0 {
            self.stats.dead_letters += dead;
            self.dead_letters_h.incr(dead);
        }
        if max_depth > self.mailbox_hw {
            self.mailbox_hw = max_depth;
            self.mailbox_depth_h.set(max_depth);
        }
        self.absorb_shards();
    }

    #[inline]
    fn enqueue(&mut self, msg: Message) {
        let slot = match self.table.lookup(&msg.to) {
            Some(s) if !self.table.slot(s).stopped => s,
            _ => {
                self.stats.dead_letters += 1;
                self.dead_letters_h.incr(1);
                return;
            }
        };
        let s = self.table.slot_mut(slot);
        if s.mailbox.capacity() == 0 {
            s.mailbox.reserve(16);
        }
        s.mailbox.push_back(msg);
        let (depth, rank) = (s.mailbox.len(), s.rank);
        self.note_enqueued(depth, rank);
    }

    #[inline]
    fn note_enqueued(&mut self, depth: usize, rank: u32) {
        self.queued += 1;
        if depth == 1 && !self.table.ranks_dirty() {
            self.ready.set(rank);
        }
        if depth as i64 > self.mailbox_hw {
            self.mailbox_hw = depth as i64;
            self.mailbox_depth_h.set(depth as i64);
        }
    }

    /// Rebuilds rank order, the atomic ready bitmap, the slot→rank map,
    /// and the shard partition after new spawns.
    fn refresh_ranks(&mut self) {
        if !self.table.ranks_dirty() {
            return;
        }
        self.ready.reset(self.table.len());
        let ready = &self.ready;
        self.table.refresh_ranks(|rank| ready.set(rank));
        self.ranges = shard_ranges(self.table.ranks(), self.threads);
        self.slot_rank.clear();
        self.slot_rank
            .extend(self.table.slots().iter().map(|s| s.rank));
    }

    fn ensure_crew(&mut self) {
        if self.threads > 1 && self.crew.is_none() {
            self.crew = Some(Crew::spawn(self.threads));
        }
    }

    /// Folds every shard hub into the main hub (draining, so round
    /// merges are additive). No-op when telemetry is disabled.
    fn absorb_shards(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        for hub in &self.shard_obs {
            self.obs.absorb_draining(hub);
        }
    }

    /// Delivers at most one message to each ready actor. Returns the
    /// number of messages handled (fired ranks, successful or not).
    ///
    /// Unlike [`System::step`], messages sent during the round are
    /// buffered and enqueued at the barrier, so they always fire in a
    /// *later* round regardless of sender/receiver rank order.
    pub fn step(&mut self) -> usize {
        self.refresh_ranks();
        if self.queued == 0 {
            return 0;
        }
        self.log.reserve(self.queued);

        // Parallel phase.
        for c in &self.claims {
            c.store(UNPUBLISHED, Ordering::Relaxed);
        }
        let threads = self.threads;
        {
            let (slots, order) = self.table.parts_mut();
            let rc = RoundCtx {
                slots: slots.as_mut_ptr(),
                order,
                ready: &self.ready,
                ranges: &self.ranges,
                worklists: self.worklists.as_mut_ptr(),
                staging: self.staging.as_mut_ptr(),
                claims: &self.claims,
                deltas: self.deltas.as_mut_ptr(),
                hubs: &self.hubs,
                threads,
            };
            if threads == 1 {
                run_round_worker(&rc, 0);
            } else {
                if self.crew.is_none() {
                    self.crew = Some(Crew::spawn(threads));
                }
                let crew = self.crew.as_ref().expect("crew just ensured");
                crew.run(&|w| run_round_worker(&rc, w));
            }
        }

        // Fold worker deltas.
        let (mut delivered, mut failures, mut restarts) = (0u64, 0u64, 0u64);
        let (mut max_exec, mut min_exec) = (0u64, u64::MAX);
        for d in &self.deltas {
            delivered += d.delivered;
            failures += d.failures;
            restarts += d.restarts;
            self.queued -= d.popped;
            max_exec = max_exec.max(d.executed);
            min_exec = min_exec.min(d.executed);
        }
        self.stats.delivered += delivered;
        self.stats.failures += failures;
        self.stats.restarts += restarts;
        if delivered > 0 {
            self.delivered_h.incr(delivered);
        }
        if failures > 0 {
            self.failures_h.incr(failures);
        }
        if restarts > 0 {
            self.restarts_h.incr(restarts);
        }
        self.imbalance_h
            .set(max_exec.saturating_sub(min_exec.min(max_exec)) as i64);

        // Barrier: apply staged effects in ascending global rank order
        // (shards partition the rank space in order; worklists are
        // ascending within a shard).
        let mut handled = 0usize;
        for v in 0..self.threads {
            for i in 0..self.worklists[v].len() {
                handled += 1;
                let fired = std::mem::take(self.staging[v][i].0.get_mut());
                self.next_seq += 1;
                let traced = fired.trace.is_some() && self.obs.is_enabled();
                let mut dctx = fired.trace;
                if traced {
                    // One deliver span per failed attempt, as `System`
                    // mints (opened and closed at the barrier tick).
                    for _ in 0..fired.failed_attempts {
                        drop(self.obs.span_opt(fired.trace.as_ref(), "actor.deliver"));
                    }
                }
                let Some(mut m) = fired.msg else {
                    // Total failure: the seq is consumed (a gap, exactly
                    // as in `System`), nothing is logged.
                    continue;
                };
                if traced {
                    let span = self.obs.span_opt(fired.trace.as_ref(), "actor.deliver");
                    dctx = span.ctx().or(fired.trace);
                }
                m.seq = self.next_seq;
                self.log.record(m);
                if !fired.outbox.is_empty() {
                    let from = fired.from;
                    for (to, payload) in fired.outbox {
                        self.enqueue(Message {
                            from: from.clone(),
                            to,
                            payload,
                            seq: 0,
                            trace: dctx,
                        });
                    }
                }
            }
        }
        self.absorb_shards();
        handled
    }

    /// Runs until no mailbox has messages, or `max_steps` rounds elapse.
    pub fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool) {
        let mut total = 0u64;
        for _ in 0..max_steps {
            let handled = self.step();
            if handled == 0 {
                return (total, true);
            }
            total += handled as u64;
        }
        (total, !self.has_pending())
    }

    /// True when any mailbox still has messages (O(1)).
    pub fn has_pending(&self) -> bool {
        self.queued > 0
    }

    /// The merged reliable message log: one global, seq-ordered log with
    /// per-actor ascending seqs, same as [`System::log`] — replay and
    /// checkpoint consumers cannot tell which executor produced it.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Drops log entries made obsolete by a checkpoint at `seq`.
    pub fn truncate_log_through(&mut self, seq: u64) -> usize {
        self.log.truncate_through(seq)
    }

    /// Execution statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Immutable access to an actor's state.
    pub fn actor(&self, id: &ActorId) -> Option<&dyn Actor> {
        self.table
            .lookup(id)
            .map(|s| self.table.slot(s).actor.as_ref())
    }

    /// Mutable access to an actor's state (checkpoint/restore flows).
    pub fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)> {
        self.table
            .lookup(id)
            .map(|s| self.table.slot_mut(s).actor.as_mut())
    }

    /// Ids of all registered (non-stopped) actors, in id order.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        self.table.live_ids()
    }
}

impl Default for ParSystem {
    /// Defaults to one shard per available CPU (capped at 8): the
    /// configuration the benches exercise.
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        Self::new(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorError;

    #[derive(Default)]
    struct Count {
        seen: u64,
    }

    impl Actor for Count {
        fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
            self.seen += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.seen = 0;
        }

        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }
    }

    struct Forwarder {
        next: ActorId,
    }

    impl Actor for Forwarder {
        fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            ctx.send(self.next.clone(), msg.payload.clone());
            Ok(())
        }
    }

    #[derive(Default)]
    struct FlakyOnce {
        attempts: u64,
    }

    impl Actor for FlakyOnce {
        fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
            self.attempts += 1;
            if self.attempts % 2 == 1 {
                Err(ActorError("flaky".into()))
            } else {
                Ok(())
            }
        }
    }

    fn storm(threads: usize) -> (ParSystem, u64) {
        let mut sys = ParSystem::new(threads);
        for i in 0..97 {
            sys.spawn(
                format!("a{i:03}"),
                Box::new(Count::default()),
                SupervisionPolicy::Restart,
            );
        }
        let refs: Vec<ActorRef> = (0..97)
            .map(|i| sys.resolve(&ActorId::new(format!("a{i:03}"))).unwrap())
            .collect();
        let batch: Vec<(ActorRef, Bytes)> = (0..97 * 5)
            .map(|i| (refs[i % 97], Bytes::from(format!("m{i}"))))
            .collect();
        sys.inject_batch(&batch);
        let (n, quiescent) = sys.run_until_quiescent(1000);
        assert!(quiescent);
        (sys, n)
    }

    #[test]
    fn storm_delivers_everything_at_any_thread_count() {
        for threads in [1, 2, 4, 8] {
            let (sys, n) = storm(threads);
            assert_eq!(n, 97 * 5, "threads={threads}");
            assert_eq!(sys.stats().delivered, 97 * 5);
            assert_eq!(sys.log().len(), 97 * 5);
        }
    }

    #[test]
    fn log_is_byte_identical_across_thread_counts() {
        let (base, _) = storm(1);
        for threads in [2, 4, 8] {
            let (sys, _) = storm(threads);
            assert_eq!(sys.log().len(), base.log().len());
            for (a, b) in sys.log().entries().iter().zip(base.log().entries()) {
                assert_eq!(a.seq, b.seq, "threads={threads}");
                assert_eq!(a.to, b.to, "threads={threads}");
                assert_eq!(a.payload, b.payload, "threads={threads}");
            }
        }
    }

    #[test]
    fn forward_chain_crosses_shards() {
        for threads in [1, 2, 4, 8] {
            let mut sys = ParSystem::new(threads);
            // 200 actors so the chain spans several 64-aligned shards.
            for i in 0..199 {
                sys.spawn(
                    format!("f{i:03}"),
                    Box::new(Forwarder {
                        next: ActorId::new(format!("f{:03}", i + 1)),
                    }),
                    SupervisionPolicy::Restart,
                );
            }
            sys.spawn(
                "f199",
                Box::new(Count::default()),
                SupervisionPolicy::Restart,
            );
            sys.inject("f000", Bytes::from_static(b"ball"));
            let (n, quiescent) = sys.run_until_quiescent(1000);
            assert!(quiescent);
            assert_eq!(n, 200, "one hop per actor, threads={threads}");
            let tail = sys.actor(&ActorId::new("f199")).unwrap().snapshot();
            assert_eq!(tail, 1u64.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn retry_keeps_seq_and_double_failure_drops() {
        for threads in [1, 4] {
            let mut sys = ParSystem::new(threads);
            sys.spawn(
                "f",
                Box::new(FlakyOnce::default()),
                SupervisionPolicy::RestartAndRetry,
            );
            sys.inject("f", Bytes::from_static(b"first"));
            sys.inject("f", Bytes::from_static(b"second"));
            sys.run_until_quiescent(100);
            let seqs: Vec<u64> = sys.log().entries().iter().map(|m| m.seq).collect();
            assert_eq!(seqs, vec![1, 2], "threads={threads}");
            assert_eq!(sys.stats().failures, 2);
            assert_eq!(sys.stats().delivered, 2);
        }
    }

    #[test]
    fn stop_supervision_dead_letters_afterwards() {
        struct Poisoned;
        impl Actor for Poisoned {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                Err(ActorError("bad".into()))
            }
        }
        let mut sys = ParSystem::new(4);
        sys.spawn("p", Box::new(Poisoned), SupervisionPolicy::Stop);
        sys.inject("p", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        assert!(sys.actor_ids().is_empty());
        sys.inject("p", Bytes::from_static(b"y"));
        assert_eq!(sys.stats().dead_letters, 1);
        assert!(!sys.has_pending());
    }

    #[test]
    fn observer_counters_and_shard_series_merge() {
        let mut sys = ParSystem::new(4);
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        for i in 0..10 {
            sys.spawn(
                format!("c{i}"),
                Box::new(Count::default()),
                SupervisionPolicy::Restart,
            );
        }
        let batch: Vec<(ActorRef, Bytes)> = (0..10)
            .map(|i| {
                (
                    sys.resolve(&ActorId::new(format!("c{i}"))).unwrap(),
                    Bytes::from_static(b"m"),
                )
            })
            .collect();
        sys.inject_batch(&batch);
        sys.inject("nobody", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(obs.counter("actor.delivered", &Labels::none()), 10);
        assert_eq!(obs.counter("actor.dead_letters", &Labels::none()), 1);
        // Shard-hub series were absorbed into the main hub: executed and
        // injected sum to the totals across the per-shard label sets.
        let (mut executed, mut injected) = (0u64, 0u64);
        for i in 0..4 {
            let labels = Labels::module("par", format!("shard{i}"));
            executed += obs.counter("par.executed", &labels);
            injected += obs.counter("par.injected", &labels);
        }
        assert_eq!(executed, 10);
        assert_eq!(injected, 10);
    }

    #[test]
    fn traced_cascade_forms_connected_dag_on_main_hub() {
        let mut sys = ParSystem::new(4);
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn("b", Box::new(Count::default()), SupervisionPolicy::Restart);
        let root = obs.trace_root("test.root");
        let ctx = root.ctx().expect("enabled root span carries a ctx");
        sys.inject_traced("a", Bytes::from_static(b"x"), ctx);
        sys.run_until_quiescent(100);
        drop(root);
        let spans = obs.snapshot().spans;
        let delivers: Vec<_> = spans.iter().filter(|s| s.name == "actor.deliver").collect();
        assert_eq!(delivers.len(), 2, "one deliver span per hop");
        for d in &delivers {
            assert_eq!(d.trace, Some(ctx.trace_id));
            assert!(d.end_us.is_some());
        }
        assert_eq!(delivers[0].parent, Some(ctx.span));
        assert_eq!(delivers[1].parent, Some(delivers[0].id));
    }

    #[test]
    fn respawn_after_stop_revives_actor() {
        struct Poisoned;
        impl Actor for Poisoned {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                Err(ActorError("bad".into()))
            }
        }
        let mut sys = ParSystem::new(2);
        sys.spawn("p", Box::new(Poisoned), SupervisionPolicy::Stop);
        sys.inject("p", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert!(sys.actor_ids().is_empty());
        sys.spawn("p", Box::new(Count::default()), SupervisionPolicy::Restart);
        sys.inject("p", Bytes::from_static(b"y"));
        let (n, _) = sys.run_until_quiescent(100);
        assert_eq!(n, 1);
        assert_eq!(sys.actor_ids(), vec![ActorId::new("p")]);
    }

    #[test]
    fn spawns_between_rounds_rebuild_shards() {
        let mut sys = ParSystem::new(4);
        sys.spawn("m", Box::new(Count::default()), SupervisionPolicy::Restart);
        sys.inject("m", Bytes::from_static(b"1"));
        sys.run_until_quiescent(100);
        for i in 0..100 {
            sys.spawn(
                format!("x{i:03}"),
                Box::new(Count::default()),
                SupervisionPolicy::Restart,
            );
        }
        sys.inject("x099", Bytes::from_static(b"2"));
        sys.inject("m", Bytes::from_static(b"3"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert!(quiescent);
        assert_eq!(n, 2);
        assert_eq!(sys.stats().delivered, 3);
    }
}
