//! Ready bitmaps over dense ranks, shared by both executors.
//!
//! [`ReadySet`] is the single-threaded two-level bitmap
//! [`crate::system::System`] walks each round. [`AtomicReadySet`] is the
//! parallel variant [`crate::par::ParSystem`] layers over the same rank
//! space: shard boundaries are 64-aligned (see
//! [`crate::slab::shard_ranges`]), so each shard owns whole words, and
//! the bitmap is only mutated in monotone-direction phases — workers
//! clear bits as mailboxes drain during a round, the barrier sets bits
//! as outboxes flush — so relaxed atomics plus the round barrier are
//! enough synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Two-level bitmap over dense ranks: bit `r` of `words` is set iff
/// rank `r` has pending mail; `summary` has one bit per word so a round
/// can skip 4096 idle ranks per summary word probed.
#[derive(Default)]
pub(crate) struct ReadySet {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl ReadySet {
    /// Clears and resizes for `n` ranks.
    pub fn reset(&mut self, n: usize) {
        let w = n.div_ceil(64);
        self.words.clear();
        self.words.resize(w, 0);
        let s = w.div_ceil(64);
        self.summary.clear();
        self.summary.resize(s, 0);
    }

    #[inline]
    pub fn set(&mut self, rank: u32) {
        let w = (rank / 64) as usize;
        self.words[w] |= 1u64 << (rank % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    #[inline]
    pub fn clear(&mut self, rank: u32) {
        let w = (rank / 64) as usize;
        self.words[w] &= !(1u64 << (rank % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    /// Smallest set rank `>= from`, if any.
    pub fn next_at_or_after(&self, from: u32) -> Option<u32> {
        let w0 = (from / 64) as usize;
        if w0 >= self.words.len() {
            return None;
        }
        let bits = self.words[w0] & (!0u64 << (from % 64));
        if bits != 0 {
            return Some(w0 as u32 * 64 + bits.trailing_zeros());
        }
        // Jump word-to-word via the summary.
        let next_w = w0 + 1;
        let mut sw = next_w / 64;
        let mut smask = if sw * 64 < next_w {
            !0u64 << (next_w % 64)
        } else {
            !0u64
        };
        while sw < self.summary.len() {
            let sbits = self.summary[sw] & smask;
            if sbits != 0 {
                let wi = sw * 64 + sbits.trailing_zeros() as usize;
                let b = self.words[wi];
                debug_assert_ne!(b, 0, "summary bit implies a non-empty word");
                return Some(wi as u32 * 64 + b.trailing_zeros());
            }
            sw += 1;
            smask = !0;
        }
        None
    }
}

/// Single-level atomic ready bitmap for parallel rounds.
///
/// No summary level: each shard scans only its own word range when
/// building its worklist (a few dozen words for 10k actors / 8 shards),
/// so the two-level skip buys nothing there. All operations are
/// `Relaxed` — visibility across phases is provided by the round
/// barrier, and within a phase no thread reads bits another thread is
/// writing (worklists are snapshots taken at round start).
#[derive(Default)]
pub(crate) struct AtomicReadySet {
    words: Vec<AtomicU64>,
}

impl AtomicReadySet {
    /// Clears and resizes for `n` ranks.
    pub fn reset(&mut self, n: usize) {
        let w = n.div_ceil(64);
        self.words.clear();
        self.words.resize_with(w, || AtomicU64::new(0));
    }

    #[inline]
    pub fn set(&self, rank: u32) {
        let w = (rank / 64) as usize;
        self.words[w].fetch_or(1u64 << (rank % 64), Ordering::Relaxed);
    }

    #[inline]
    pub fn clear(&self, rank: u32) {
        let w = (rank / 64) as usize;
        self.words[w].fetch_and(!(1u64 << (rank % 64)), Ordering::Relaxed);
    }

    #[cfg(test)]
    pub fn is_set(&self, rank: u32) -> bool {
        let w = (rank / 64) as usize;
        self.words[w].load(Ordering::Relaxed) & (1u64 << (rank % 64)) != 0
    }

    /// Calls `f(rank)` for every set rank in `[lo, hi)`, ascending.
    /// Non-empty shard ranges are word-aligned (see
    /// [`crate::slab::shard_ranges`]); trailing shards clamped to the
    /// rank count may start mid-word, which the first-word mask handles
    /// (such ranges are always empty).
    pub fn for_set_in(&self, lo: u32, hi: u32, mut f: impl FnMut(u32)) {
        if lo >= hi {
            return;
        }
        let w0 = (lo / 64) as usize;
        let w1 = (hi as usize).div_ceil(64).min(self.words.len());
        for w in w0..w1 {
            let mut bits = self.words[w].load(Ordering::Relaxed);
            if w == w0 && !lo.is_multiple_of(64) {
                bits &= !0u64 << (lo % 64);
            }
            if w == w1 - 1 && !hi.is_multiple_of(64) {
                bits &= (1u64 << (hi % 64)) - 1;
            }
            while bits != 0 {
                let r = w as u32 * 64 + bits.trailing_zeros();
                f(r);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_set_walks_sparse_bits_via_summary() {
        let mut r = ReadySet::default();
        r.reset(10_000);
        for rank in [0u32, 63, 64, 4095, 4096, 9999] {
            r.set(rank);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(rank) = r.next_at_or_after(cursor) {
            seen.push(rank);
            cursor = rank + 1;
        }
        assert_eq!(seen, vec![0, 63, 64, 4095, 4096, 9999]);
        r.clear(4096);
        assert_eq!(r.next_at_or_after(4096), Some(9999));
    }

    #[test]
    fn atomic_set_clear_round_trip() {
        let mut a = AtomicReadySet::default();
        a.reset(200);
        a.set(0);
        a.set(65);
        a.set(199);
        assert!(a.is_set(65));
        a.clear(65);
        assert!(!a.is_set(65));
        let mut seen = Vec::new();
        a.for_set_in(0, 200, |r| seen.push(r));
        assert_eq!(seen, vec![0, 199]);
    }

    #[test]
    fn for_set_in_respects_shard_bounds() {
        let mut a = AtomicReadySet::default();
        a.reset(300);
        for r in [10u32, 63, 64, 127, 128, 250, 299] {
            a.set(r);
        }
        let mut lo_half = Vec::new();
        a.for_set_in(0, 128, |r| lo_half.push(r));
        assert_eq!(lo_half, vec![10, 63, 64, 127]);
        let mut hi_half = Vec::new();
        a.for_set_in(128, 300, |r| hi_half.push(r));
        assert_eq!(hi_half, vec![128, 250, 299]);
        // Unaligned upper bound inside a word is honoured.
        let mut partial = Vec::new();
        a.for_set_in(192, 251, |r| partial.push(r));
        assert_eq!(partial, vec![250]);
    }
}
