//! The reliable message log (§3.1: "messages could be reliably recorded
//! for faster recovery").
//!
//! Records every *delivered* message in delivery order. Appends move
//! the message in (payloads are refcounted `Bytes`, ids are refcounted
//! `ActorId`s — nothing is deep-copied). Recovery replays a per-actor
//! suffix: a lazily-built per-actor index makes [`MessageLog::replay_for`]
//! O(log n + suffix) instead of a full-log scan, and
//! [`MessageLog::truncate_through`] drops the prefix made obsolete by a
//! checkpoint so long-running systems stop growing the log unboundedly.

use crate::actor::{ActorId, Message};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Per-actor replay index over a `MessageLog`'s entries.
///
/// Extended lazily (and rebuilt after a truncation), so pure appending
/// on the delivery hot path stays a single `Vec::push`.
#[derive(Debug, Clone, Default)]
struct LogIndex {
    /// Positions into `entries`, ascending, per destination actor.
    per_actor: BTreeMap<ActorId, Vec<u32>>,
    /// `entries[..upto]` have been indexed.
    upto: usize,
}

impl LogIndex {
    fn extend(&mut self, entries: &[Message]) {
        for (pos, m) in entries.iter().enumerate().skip(self.upto) {
            self.per_actor
                .entry(m.to.clone())
                .or_default()
                .push(pos as u32);
        }
        self.upto = entries.len();
    }
}

/// The reliable message log.
#[derive(Debug, Clone, Default)]
pub struct MessageLog {
    entries: Vec<Message>,
    /// Messages dropped off the front by [`MessageLog::truncate_through`].
    truncated: u64,
    /// Interior mutability keeps `replay_for(&self)` — the index is a
    /// cache over `entries`, not part of the log's logical state.
    index: RefCell<LogIndex>,
}

impl MessageLog {
    /// Number of logged messages still retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained entries, in delivery order.
    pub fn entries(&self) -> &[Message] {
        &self.entries
    }

    /// Messages dropped so far by truncation.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Entries addressed to `to` with `seq > after_seq` — the replay
    /// suffix used for recovery from a checkpoint. O(log n + suffix):
    /// the per-actor index is extended to cover any new appends, then
    /// binary-searched for the first sequence past `after_seq`
    /// (per-actor positions carry ascending seqs because delivery
    /// assigns them monotonically).
    pub fn replay_for(&self, to: &ActorId, after_seq: u64) -> Vec<Message> {
        let mut idx = self.index.borrow_mut();
        idx.extend(&self.entries);
        let Some(positions) = idx.per_actor.get(to) else {
            return Vec::new();
        };
        let start = positions.partition_point(|&p| self.entries[p as usize].seq <= after_seq);
        positions[start..]
            .iter()
            .map(|&p| self.entries[p as usize].clone())
            .collect()
    }

    /// Drops every entry with `seq <= seq` (the prefix a completed
    /// checkpoint makes unnecessary for recovery). Returns how many
    /// entries were dropped. The replay index is rebuilt on the next
    /// `replay_for` — truncation is a rare, checkpoint-cadence event.
    pub fn truncate_through(&mut self, seq: u64) -> usize {
        let k = self.entries.partition_point(|m| m.seq <= seq);
        if k == 0 {
            return 0;
        }
        self.entries.drain(..k);
        self.truncated += k as u64;
        *self.index.borrow_mut() = LogIndex::default();
        k
    }

    /// Appends a delivered message. Takes the message by value — the
    /// caller is done with it, so nothing is cloned.
    #[inline]
    pub(crate) fn record(&mut self, msg: Message) {
        self.entries.push(msg);
    }

    /// Pre-sizes the log for `additional` upcoming appends (the system
    /// reserves for its queued backlog before each round, so a large
    /// burst grows the log once instead of through doubling copies).
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Removes and returns the most recent entry. Used by the delivery
    /// failure path to un-record a speculative append (success is the
    /// common case, so the system records *before* the handler runs and
    /// hands it the in-log message — one fewer move per delivery).
    pub(crate) fn pop_last(&mut self) -> Option<Message> {
        let m = self.entries.pop();
        let mut idx = self.index.borrow_mut();
        if idx.upto > self.entries.len() {
            // The popped entry was already indexed; rebuild lazily.
            *idx = LogIndex::default();
        }
        m
    }

    /// The most recent entry, if any.
    pub(crate) fn last(&self) -> Option<&Message> {
        self.entries.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(to: &str, seq: u64) -> Message {
        Message {
            seq,
            ..Message::external(to, Bytes::from_static(b"m"))
        }
    }

    fn naive_replay(log: &MessageLog, to: &ActorId, after_seq: u64) -> Vec<Message> {
        log.entries()
            .iter()
            .filter(|m| &m.to == to && m.seq > after_seq)
            .cloned()
            .collect()
    }

    #[test]
    fn indexed_replay_matches_full_scan() {
        let mut log = MessageLog::default();
        for seq in 1..=30u64 {
            let to = ["a", "b", "c"][(seq % 3) as usize];
            log.record(msg(to, seq));
        }
        for who in ["a", "b", "c", "ghost"] {
            let id = ActorId::new(who);
            for after in [0, 1, 7, 29, 30] {
                assert_eq!(log.replay_for(&id, after), naive_replay(&log, &id, after));
            }
        }
    }

    #[test]
    fn index_extends_over_appends_after_a_read() {
        let mut log = MessageLog::default();
        log.record(msg("a", 1));
        assert_eq!(log.replay_for(&ActorId::new("a"), 0).len(), 1);
        // Appends after the index was built must still be visible.
        log.record(msg("a", 2));
        log.record(msg("b", 3));
        assert_eq!(log.replay_for(&ActorId::new("a"), 0).len(), 2);
        assert_eq!(log.replay_for(&ActorId::new("b"), 0).len(), 1);
    }

    #[test]
    fn truncate_through_drops_prefix_and_keeps_replay_correct() {
        let mut log = MessageLog::default();
        for seq in 1..=10u64 {
            log.record(msg(if seq % 2 == 0 { "a" } else { "b" }, seq));
        }
        // Warm the index, then truncate: the index must rebuild.
        assert_eq!(log.replay_for(&ActorId::new("a"), 0).len(), 5);
        assert_eq!(log.truncate_through(6), 6);
        assert_eq!(log.len(), 4);
        assert_eq!(log.truncated(), 6);
        let a = log.replay_for(&ActorId::new("a"), 0);
        assert_eq!(a.iter().map(|m| m.seq).collect::<Vec<_>>(), vec![8, 10]);
        // Truncating at or before the current front is a no-op.
        assert_eq!(log.truncate_through(6), 0);
        assert_eq!(log.truncate_through(0), 0);
        // Truncating everything empties the log.
        assert_eq!(log.truncate_through(u64::MAX), 4);
        assert!(log.is_empty());
        assert_eq!(log.truncated(), 10);
    }

    #[test]
    fn clone_carries_entries_and_stays_consistent() {
        let mut log = MessageLog::default();
        log.record(msg("a", 1));
        let _ = log.replay_for(&ActorId::new("a"), 0);
        let copy = log.clone();
        log.record(msg("a", 2));
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.replay_for(&ActorId::new("a"), 0).len(), 1);
        assert_eq!(log.replay_for(&ActorId::new("a"), 0).len(), 2);
    }
}
