//! The executor-agnostic runtime surface.
//!
//! [`ActorRuntime`] is the object-safe trait all three executors
//! implement — [`crate::naive::NaiveSystem`] (the seed oracle),
//! [`crate::system::System`] (deterministic fast path) and
//! [`crate::par::ParSystem`] (work-stealing parallel) — so replay and
//! recovery consumers (`udc-core`'s heal loop, `udc-dist`'s checkpoint
//! recovery) can run over a `Box<dyn ActorRuntime>` and take the merged
//! log from whichever executor produced it. The trait uses concrete
//! `ActorId`/`Bytes` signatures (no `impl Into<...>` sugar) to stay
//! object-safe; the inherent methods on each system keep the ergonomic
//! generic forms.

use crate::actor::{Actor, ActorId};
use crate::log::MessageLog;
use crate::supervise::SupervisionPolicy;
use crate::system::SystemStats;
use bytes::Bytes;
use udc_telemetry::{Telemetry, TraceCtx};

/// What every executor must provide: the spawn/inject/step lifecycle,
/// the reliable log, stats, and actor state access for
/// checkpoint/restore flows.
pub trait ActorRuntime {
    /// Installs the observability hub.
    fn set_observer(&mut self, obs: Telemetry);
    /// Registers an actor, replacing any registration with the same id.
    fn spawn(&mut self, id: ActorId, actor: Box<dyn Actor>, policy: SupervisionPolicy);
    /// Enqueues an external message.
    fn inject(&mut self, to: ActorId, payload: Bytes);
    /// Enqueues an external message under an explicit trace context.
    fn inject_traced(&mut self, to: ActorId, payload: Bytes, ctx: TraceCtx);
    /// Delivers at most one message to each actor; returns messages
    /// handled.
    fn step(&mut self) -> usize;
    /// Runs until quiescent or `max_steps` rounds; returns (handled,
    /// quiescent).
    fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool);
    /// True when any mailbox still has messages.
    fn has_pending(&self) -> bool;
    /// The reliable message log (merged across shards for the parallel
    /// executor).
    fn log(&self) -> &MessageLog;
    /// Drops log entries made obsolete by a checkpoint at `seq`.
    fn truncate_log_through(&mut self, seq: u64) -> usize;
    /// Execution statistics.
    fn stats(&self) -> SystemStats;
    /// Immutable access to an actor's state.
    fn actor(&self, id: &ActorId) -> Option<&dyn Actor>;
    /// Mutable access to an actor's state (checkpoint/restore flows).
    fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)>;
    /// Ids of all registered (non-stopped) actors, in id order.
    fn actor_ids(&self) -> Vec<ActorId>;
}

macro_rules! forward_runtime {
    ($ty:ty) => {
        impl ActorRuntime for $ty {
            fn set_observer(&mut self, obs: Telemetry) {
                <$ty>::set_observer(self, obs)
            }
            fn spawn(&mut self, id: ActorId, actor: Box<dyn Actor>, policy: SupervisionPolicy) {
                <$ty>::spawn(self, id, actor, policy)
            }
            fn inject(&mut self, to: ActorId, payload: Bytes) {
                <$ty>::inject(self, to, payload)
            }
            fn inject_traced(&mut self, to: ActorId, payload: Bytes, ctx: TraceCtx) {
                <$ty>::inject_traced(self, to, payload, ctx)
            }
            fn step(&mut self) -> usize {
                <$ty>::step(self)
            }
            fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool) {
                <$ty>::run_until_quiescent(self, max_steps)
            }
            fn has_pending(&self) -> bool {
                <$ty>::has_pending(self)
            }
            fn log(&self) -> &MessageLog {
                <$ty>::log(self)
            }
            fn truncate_log_through(&mut self, seq: u64) -> usize {
                <$ty>::truncate_log_through(self, seq)
            }
            fn stats(&self) -> SystemStats {
                <$ty>::stats(self)
            }
            fn actor(&self, id: &ActorId) -> Option<&dyn Actor> {
                <$ty>::actor(self, id)
            }
            fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)> {
                <$ty>::actor_mut(self, id)
            }
            fn actor_ids(&self) -> Vec<ActorId> {
                <$ty>::actor_ids(self)
            }
        }
    };
}

forward_runtime!(crate::naive::NaiveSystem);
forward_runtime!(crate::system::System);
forward_runtime!(crate::par::ParSystem);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorError, Ctx, Message};
    use crate::par::ParSystem;
    use crate::system::System;

    #[derive(Default)]
    struct Count(u64);
    impl Actor for Count {
        fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
            self.0 += 1;
            Ok(())
        }
        fn snapshot(&self) -> Vec<u8> {
            self.0.to_be_bytes().to_vec()
        }
    }

    fn drive(sys: &mut dyn ActorRuntime) -> u64 {
        sys.spawn(
            ActorId::new("c"),
            Box::new(Count::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..5 {
            sys.inject(ActorId::new("c"), Bytes::from_static(b"m"));
        }
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert!(quiescent);
        assert_eq!(sys.log().len() as u64, n);
        n
    }

    #[test]
    fn all_executors_behind_the_same_dyn_surface() {
        let mut runtimes: Vec<Box<dyn ActorRuntime>> = vec![
            Box::new(crate::naive::NaiveSystem::new()),
            Box::new(System::new()),
            Box::new(ParSystem::new(2)),
        ];
        for rt in &mut runtimes {
            assert_eq!(drive(rt.as_mut()), 5);
            assert_eq!(rt.stats().delivered, 5);
            assert_eq!(rt.actor_ids(), vec![ActorId::new("c")]);
        }
    }
}
