//! The interned actor slab shared by every executor: dense `u32` slots
//! behind an FNV-hashed id index, plus the id-order *rank* assignment
//! that scheduling walks.
//!
//! [`crate::system::System`] introduced this layout (PR 5); the
//! parallel executor ([`crate::par::ParSystem`]) partitions the same
//! rank space into contiguous worker shards, so the slot/rank internals
//! live here behind a shard-partitionable API instead of being private
//! to one executor.

use crate::actor::{Actor, ActorId, Message};
use crate::supervise::SupervisionPolicy;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a: ids are short strings, so a multiply-per-byte hash beats
/// SipHash by a wide margin on the per-enqueue index probe. The map is
/// only mutated single-threaded and keys are trusted (no DoS surface).
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// One interned actor: the slab record behind a dense `u32` slot.
pub(crate) struct Slot {
    pub id: ActorId,
    pub actor: Box<dyn Actor>,
    pub mailbox: VecDeque<Message>,
    pub policy: SupervisionPolicy,
    pub stopped: bool,
    /// Position in id order; the scheduling key. Recomputed lazily
    /// after a spawn of a new id.
    pub rank: u32,
}

/// What a spawn did to the slab, so the executor can fix up its own
/// readiness/queue bookkeeping (which lives outside the slab).
pub(crate) enum SpawnEffect {
    /// A brand-new id was interned; ranks are now dirty.
    Fresh,
    /// An existing id was replaced in place: the mailbox was cleared
    /// (`cleared` messages dropped) and the slot's rank is unchanged.
    Reused { cleared: usize, rank: u32 },
}

/// The interned slot table: id index, slot slab, and rank order.
///
/// Deliberately bookkeeping-free: it does not track readiness or queued
/// counts — each executor layers its own (single-threaded bitmap for
/// [`crate::system::System`], sharded atomic bitmap for
/// [`crate::par::ParSystem`]) over the rank space this table defines.
#[derive(Default)]
pub(crate) struct SlotTable {
    /// Id → slot. Touched at spawn/enqueue, never per scheduler round.
    index: FnvMap<ActorId, u32>,
    slots: Vec<Slot>,
    /// Rank → slot, in id order. Rebuilt lazily when `ranks_dirty`.
    order: Vec<u32>,
    /// Set when a new id was spawned since the last rank refresh.
    ranks_dirty: bool,
}

impl SlotTable {
    /// Registers an actor under `id`, replacing any existing
    /// registration with the same id (the seed's map-insert semantics).
    pub fn spawn(
        &mut self,
        id: ActorId,
        actor: Box<dyn Actor>,
        policy: SupervisionPolicy,
    ) -> SpawnEffect {
        match self.index.get(&id) {
            Some(&slot) => {
                // Same id: reuse the slot (rank order is unchanged),
                // with a fresh mailbox and cleared stop flag.
                let s = &mut self.slots[slot as usize];
                let cleared = s.mailbox.len();
                s.actor = actor;
                s.mailbox.clear();
                s.policy = policy;
                s.stopped = false;
                SpawnEffect::Reused {
                    cleared,
                    rank: s.rank,
                }
            }
            None => {
                let slot = self.slots.len() as u32;
                self.index.insert(id.clone(), slot);
                self.slots.push(Slot {
                    id,
                    actor,
                    mailbox: VecDeque::new(),
                    policy,
                    stopped: false,
                    rank: 0,
                });
                self.ranks_dirty = true;
                SpawnEffect::Fresh
            }
        }
    }

    /// Dense slot of `id`, if it was ever spawned.
    pub fn lookup(&self, id: &ActorId) -> Option<u32> {
        self.index.get(id).copied()
    }

    /// Number of interned slots (spawned ids, including stopped ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when a new id was spawned since the last rank refresh.
    pub fn ranks_dirty(&self) -> bool {
        self.ranks_dirty
    }

    pub fn slot(&self, slot: u32) -> &Slot {
        &self.slots[slot as usize]
    }

    pub fn slot_mut(&mut self, slot: u32) -> &mut Slot {
        &mut self.slots[slot as usize]
    }

    /// Slot interned at `rank` (panics if ranks are dirty — refresh
    /// first).
    pub fn slot_of_rank(&self, rank: u32) -> u32 {
        debug_assert!(!self.ranks_dirty, "rank lookup with dirty ranks");
        self.order[rank as usize]
    }

    /// Total ranks (== slots) once ranks are fresh.
    pub fn ranks(&self) -> usize {
        self.order.len()
    }

    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub fn slots_mut(&mut self) -> &mut [Slot] {
        &mut self.slots
    }

    /// Raw parts for a parallel round: the slot slab and the rank →
    /// slot order, borrowed together so a worker crew can address
    /// disjoint slots by rank while the coordinator keeps the borrow.
    pub fn parts_mut(&mut self) -> (&mut [Slot], &[u32]) {
        debug_assert!(!self.ranks_dirty, "parallel round with dirty ranks");
        (&mut self.slots, &self.order)
    }

    /// Rebuilds rank order after new spawns; runs at most once per
    /// batch of spawns, not per round. Calls `on_ready(rank)` for every
    /// rank whose mailbox has pending mail (and is not stopped), so the
    /// caller can rebuild its readiness structure in the same pass.
    /// Returns true when a refresh actually happened.
    pub fn refresh_ranks(&mut self, mut on_ready: impl FnMut(u32)) -> bool {
        if !self.ranks_dirty {
            return false;
        }
        self.order.clear();
        self.order.extend(0..self.slots.len() as u32);
        let slots = &self.slots;
        self.order
            .sort_unstable_by(|&a, &b| slots[a as usize].id.cmp(&slots[b as usize].id));
        for (rank, &slot) in self.order.iter().enumerate() {
            self.slots[slot as usize].rank = rank as u32;
        }
        for (rank, &slot) in self.order.iter().enumerate() {
            let s = &self.slots[slot as usize];
            if !s.stopped && !s.mailbox.is_empty() {
                on_ready(rank as u32);
            }
        }
        self.ranks_dirty = false;
        true
    }

    /// Ids of all registered (non-stopped) actors, in id order.
    pub fn live_ids(&self) -> Vec<ActorId> {
        let mut ids: Vec<ActorId> = self
            .slots
            .iter()
            .filter(|s| !s.stopped)
            .map(|s| s.id.clone())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Contiguous rank ranges partitioning `ranks` across `shards` workers.
/// Non-empty shard boundaries fall on bitmap-word boundaries, so each
/// shard owns whole `u64` words of the ready bitmap and parallel bit
/// updates never share a word across shards; when there are fewer words
/// than shards, the surplus trailing shards are empty (clamped to
/// `ranks`, possibly mid-word — harmless precisely because they hold no
/// ranks).
pub(crate) fn shard_ranges(ranks: usize, shards: usize) -> Vec<(u32, u32)> {
    let words = ranks.div_ceil(64);
    let per = words.div_ceil(shards.max(1)).max(1);
    (0..shards)
        .map(|s| {
            let lo = (s * per * 64).min(ranks);
            let hi = ((s + 1) * per * 64).min(ranks);
            (lo as u32, hi as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_are_word_aligned_and_cover() {
        for ranks in [0usize, 1, 63, 64, 65, 1000, 10_000] {
            for shards in [1usize, 2, 4, 8] {
                let r = shard_ranges(ranks, shards);
                assert_eq!(r.len(), shards);
                assert_eq!(r[0].0, 0);
                assert_eq!(r[shards - 1].1 as usize, ranks);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                for &(lo, hi) in &r {
                    assert!(lo <= hi);
                    if lo < hi {
                        assert_eq!(lo % 64, 0, "non-empty shard lo word-aligned");
                        assert!(hi % 64 == 0 || hi as usize == ranks, "hi aligned or final");
                    }
                }
            }
        }
    }
}
