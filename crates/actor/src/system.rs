//! The deterministic actor system: FIFO mailboxes, round-robin
//! scheduling, reliable message logging, supervision.
//!
//! This is the optimized runtime (the seed implementation survives as
//! [`crate::naive::NaiveSystem`], the equivalence oracle). Two changes
//! make the hot path run at memory speed while keeping the observable
//! behaviour bit-for-bit identical:
//!
//! - **Interned slots.** Each [`ActorId`] is interned once at spawn
//!   into a dense `u32` slot backed by a slab (`Vec<Slot>`); the
//!   `BTreeMap` is consulted only at spawn/inject boundaries, never
//!   per delivery.
//! - **Ready bitmap.** Instead of cloning every id each round, a
//!   two-level bitmap tracks which *ranks* (id-order positions) have
//!   pending mail. A round walks set bits in ascending rank order with
//!   a strictly increasing cursor, which reproduces the seed contract
//!   exactly: one message per actor per round, and a message enqueued
//!   mid-round to an actor later in id order fires in the same round.
//!   `step()` is O(actors with pending mail) and allocation-free in
//!   steady state.
//!
//! Telemetry on the per-message path goes through pre-registered
//! lock-free handles ([`udc_telemetry::CounterHandle`] /
//! [`udc_telemetry::GaugeHandle`]) resolved once in
//! [`System::set_observer`], so a delivery costs one relaxed atomic op
//! instead of a mutex acquisition plus string-keyed map walk.

use crate::actor::{Actor, ActorId, Ctx, Message};
pub use crate::log::MessageLog;
use crate::readiness::ReadySet;
use crate::slab::{SlotTable, SpawnEffect};
use crate::supervise::SupervisionPolicy;
use bytes::Bytes;
use udc_telemetry::{CounterHandle, GaugeHandle, Labels, Telemetry, TraceCtx};

/// A resolve-once injection handle: the dense slot an [`ActorId`] was
/// interned into. Callers on a hot injection path look the id up a
/// single time with [`System::resolve`] and then inject through the
/// handle, skipping the per-message index probe — the same
/// resolve-once pattern the telemetry instrument handles use.
///
/// Slots are never deallocated, so a handle stays valid for the life of
/// the system; it keeps addressing the same id even across a re-spawn
/// (the slot is reused) or a stop (injections dead-letter, exactly as
/// they would by id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActorRef(pub(crate) u32);

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Messages successfully handled.
    pub delivered: u64,
    /// Handler failures observed.
    pub failures: u64,
    /// Actor restarts performed by supervision.
    pub restarts: u64,
    /// Messages addressed to unknown/stopped actors.
    pub dead_letters: u64,
}

/// The deterministic single-threaded actor system.
///
/// Delivery order is deterministic: actors are polled in id order, one
/// message per turn, so every run with the same inputs produces the same
/// message log (property-tested against [`crate::naive::NaiveSystem`]).
#[derive(Default)]
pub struct System {
    /// Interned slots + rank order (shared layout — see [`crate::slab`]).
    table: SlotTable,
    ready: ReadySet,
    /// Messages queued in non-stopped mailboxes (O(1) `has_pending`).
    queued: usize,
    log: MessageLog,
    next_seq: u64,
    stats: SystemStats,
    obs: Telemetry,
    /// Deepest mailbox seen; gates gauge updates to high-water
    /// candidates so steady-state enqueues skip the gauge entirely.
    mailbox_hw: i64,
    delivered_h: CounterHandle,
    failures_h: CounterHandle,
    restarts_h: CounterHandle,
    dead_letters_h: CounterHandle,
    mailbox_depth_h: GaugeHandle,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the observability hub: deliveries, failures, restarts
    /// and dead letters become `actor.*` counters, and the deepest
    /// mailbox seen is tracked as a gauge high-water mark. Counter and
    /// gauge cells are resolved once here; per-message updates are
    /// single atomic ops.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.delivered_h = obs.counter_handle("actor.delivered", &Labels::none());
        self.failures_h = obs.counter_handle("actor.failures", &Labels::none());
        self.restarts_h = obs.counter_handle("actor.restarts", &Labels::none());
        self.dead_letters_h = obs.counter_handle("actor.dead_letters", &Labels::none());
        self.mailbox_depth_h = obs.gauge_handle("actor.mailbox_depth", &Labels::none());
        self.obs = obs;
    }

    /// Registers an actor under `id` with a supervision policy.
    /// Replaces any existing registration with the same id.
    pub fn spawn(
        &mut self,
        id: impl Into<ActorId>,
        actor: Box<dyn Actor>,
        policy: SupervisionPolicy,
    ) {
        let dirty_before = self.table.ranks_dirty();
        match self.table.spawn(id.into(), actor, policy) {
            SpawnEffect::Reused { cleared, rank } => {
                // Same id: the slot was reused (rank order unchanged)
                // with a fresh mailbox — exactly the seed's map-insert
                // replacement semantics.
                self.queued -= cleared;
                if !dirty_before {
                    self.ready.clear(rank);
                }
            }
            SpawnEffect::Fresh => {}
        }
    }

    /// Enqueues an external message.
    pub fn inject(&mut self, to: impl Into<ActorId>, payload: impl Into<Bytes>) {
        self.enqueue(Message::external(to, payload));
    }

    /// Enqueues an external message under an explicit trace context, so
    /// the whole cascade it triggers joins the caller's trace.
    pub fn inject_traced(
        &mut self,
        to: impl Into<ActorId>,
        payload: impl Into<Bytes>,
        ctx: TraceCtx,
    ) {
        self.enqueue(Message::external_traced(to, payload, ctx));
    }

    /// Resolves an id to its injection handle, if the id was ever
    /// spawned. A stopped actor still resolves (its slot persists);
    /// injecting at it dead-letters, same as injecting by id.
    pub fn resolve(&self, id: &ActorId) -> Option<ActorRef> {
        self.table.lookup(id).map(ActorRef)
    }

    /// Enqueues an external message through a pre-resolved handle:
    /// identical semantics to [`System::inject`] minus the id lookup.
    pub fn inject_at(&mut self, at: ActorRef, payload: impl Into<Bytes>) {
        // One slot borrow end to end: the handle already paid for the
        // lookup, so the hot path is a stopped check, an id refcount
        // bump, and the mailbox push.
        let s = self.table.slot_mut(at.0);
        if s.stopped {
            self.stats.dead_letters += 1;
            self.dead_letters_h.incr(1);
            return;
        }
        let msg = Message {
            from: None,
            to: s.id.clone(),
            payload: payload.into(),
            seq: 0,
            trace: None,
        };
        if s.mailbox.capacity() == 0 {
            s.mailbox.reserve(16);
        }
        s.mailbox.push_back(msg);
        let (depth, rank) = (s.mailbox.len(), s.rank);
        self.note_enqueued(depth, rank);
    }

    #[inline]
    fn enqueue(&mut self, msg: Message) {
        let slot = match self.table.lookup(&msg.to) {
            Some(s) if !self.table.slot(s).stopped => s,
            _ => {
                self.stats.dead_letters += 1;
                self.dead_letters_h.incr(1);
                return;
            }
        };
        self.enqueue_at(slot, msg);
    }

    #[inline]
    fn enqueue_at(&mut self, slot: u32, msg: Message) {
        let s = self.table.slot_mut(slot);
        if s.mailbox.capacity() == 0 {
            // First mail for this slot: size the buffer for a burst up
            // front, so a storm does one allocation per mailbox instead
            // of a realloc-and-copy ladder.
            s.mailbox.reserve(16);
        }
        s.mailbox.push_back(msg);
        let (depth, rank) = (s.mailbox.len(), s.rank);
        self.note_enqueued(depth, rank);
    }

    /// Shared post-push bookkeeping for every enqueue path.
    #[inline]
    fn note_enqueued(&mut self, depth: usize, rank: u32) {
        self.queued += 1;
        if depth == 1 && !self.table.ranks_dirty() {
            self.ready.set(rank);
        }
        // Only a new high-water candidate touches the gauge; the
        // steady-state enqueue path costs a compare.
        if depth as i64 > self.mailbox_hw {
            self.mailbox_hw = depth as i64;
            self.mailbox_depth_h.set(depth as i64);
        }
    }

    /// Rebuilds rank order (and the ready bitmap) after new spawns.
    /// Runs at most once per batch of spawns, not per round.
    fn refresh_ranks(&mut self) {
        if !self.table.ranks_dirty() {
            return;
        }
        self.ready.reset(self.table.len());
        let ready = &mut self.ready;
        self.table.refresh_ranks(|rank| ready.set(rank));
    }

    /// Delivers at most one message to each actor (in id order).
    /// Returns the number of messages handled.
    ///
    /// Walks only ready ranks: the cursor is strictly increasing, so an
    /// actor fires at most once per round, and mail enqueued mid-round
    /// lands in the same round exactly when its rank is still ahead of
    /// the cursor — the seed's id-order snapshot semantics.
    pub fn step(&mut self) -> usize {
        self.refresh_ranks();
        // Deliveries are summed locally and flushed to the counter cell
        // once per round: the system is single-threaded, so no reader
        // can observe the counter mid-step anyway.
        let delivered_before = self.stats.delivered;
        self.log.reserve(self.queued);
        let mut handled = 0;
        let mut cursor: u32 = 0;
        while let Some(rank) = self.ready.next_at_or_after(cursor) {
            cursor = rank + 1;
            let slot = self.table.slot_of_rank(rank);
            let s = self.table.slot_mut(slot);
            debug_assert!(!s.stopped, "stopped actors are never ready");
            let Some(front) = s.mailbox.front_mut() else {
                debug_assert!(false, "ready rank with empty mailbox");
                self.ready.clear(rank);
                continue;
            };
            // The sequence number is assigned in place in the ring; the
            // message then moves mailbox -> log in one step.
            self.next_seq += 1;
            front.seq = self.next_seq;
            if s.mailbox.len() == 1 {
                self.ready.clear(rank);
            }
            self.queued -= 1;
            handled += 1;
            self.deliver_front(slot, true);
        }
        let delivered = self.stats.delivered - delivered_before;
        if delivered > 0 {
            self.delivered_h.incr(delivered);
        }
        handled
    }

    /// Delivers the front of `slot`'s mailbox: the message moves
    /// mailbox -> log in a single step (speculative append — see
    /// [`System::run_recorded`]).
    #[inline]
    fn deliver_front(&mut self, slot: u32, allow_retry: bool) {
        let s = self.table.slot_mut(slot);
        let msg = s
            .mailbox
            .pop_front()
            .expect("deliver_front on empty mailbox");
        let trace = msg.trace;
        self.log.record(msg);
        self.run_recorded(slot, trace, allow_retry);
    }

    /// Delivers an owned message (the retry path re-delivers the popped
    /// entry).
    fn deliver_owned(&mut self, slot: u32, msg: Message, allow_retry: bool) {
        let trace = msg.trace;
        self.log.record(msg);
        self.run_recorded(slot, trace, allow_retry);
    }

    /// Runs the handler against the just-recorded log tail.
    ///
    /// Speculative append: success is the overwhelmingly common case, so
    /// the message is recorded up front (by move — payload and ids are
    /// refcounted) and the handler reads it in place in the log, saving
    /// a Message-sized move per delivery. A failed delivery pops it back
    /// out: failures are never logged, as in the seed.
    ///
    /// Each traced delivery becomes an `actor.deliver` span parented on
    /// the incoming message's context; outbox messages inherit the
    /// span's context so the cascade forms a connected DAG. Untraced
    /// deliveries skip the span store entirely (the fast path).
    fn run_recorded(&mut self, slot: u32, trace: Option<TraceCtx>, allow_retry: bool) {
        let span = if trace.is_some() && self.obs.is_enabled() {
            Some(self.obs.span_opt(trace.as_ref(), "actor.deliver"))
        } else {
            None
        };
        let dctx = span.as_ref().and_then(|s| s.ctx()).or(trace);
        let mut ctx = Ctx {
            trace: dctx,
            ..Ctx::default()
        };
        let result = {
            let m = self.log.last().expect("entry just recorded");
            self.table.slot_mut(slot).actor.on_message(&mut ctx, m)
        };
        match result {
            Ok(()) => {
                // The counter cell is updated once per round in `step`.
                self.stats.delivered += 1;
                if !ctx.outbox.is_empty() {
                    let from = self.table.slot(slot).id.clone();
                    for (to, payload) in ctx.outbox {
                        self.enqueue(Message {
                            from: Some(from.clone()),
                            to,
                            payload,
                            seq: 0,
                            trace: dctx,
                        });
                    }
                }
            }
            Err(_) => self.deliver_failed(slot, allow_retry),
        }
    }

    /// Supervision for a failed delivery; out of line, off the hot path.
    #[cold]
    fn deliver_failed(&mut self, slot: u32, allow_retry: bool) {
        let msg = self.log.pop_last().expect("entry just recorded");
        self.stats.failures += 1;
        self.failures_h.incr(1);
        match self.table.slot(slot).policy {
            SupervisionPolicy::Restart => {
                self.table.slot_mut(slot).actor.reset();
                self.stats.restarts += 1;
                self.restarts_h.incr(1);
            }
            SupervisionPolicy::RestartAndRetry => {
                self.table.slot_mut(slot).actor.reset();
                self.stats.restarts += 1;
                self.restarts_h.incr(1);
                if allow_retry {
                    // The retry keeps the message's seq: it is the same
                    // delivery attempt, not a new one.
                    self.deliver_owned(slot, msg, false);
                }
            }
            SupervisionPolicy::Stop => {
                let dirty = self.table.ranks_dirty();
                let s = self.table.slot_mut(slot);
                s.stopped = true;
                let (cleared, rank) = (s.mailbox.len(), s.rank);
                s.mailbox.clear();
                self.queued -= cleared;
                if !dirty {
                    self.ready.clear(rank);
                }
            }
        }
    }

    /// Runs until no mailbox has messages, or `max_steps` rounds elapse.
    /// Returns the total number of messages handled and whether the
    /// system reached quiescence.
    pub fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool) {
        let mut total = 0u64;
        for _ in 0..max_steps {
            let handled = self.step();
            if handled == 0 {
                return (total, true);
            }
            total += handled as u64;
        }
        (total, !self.has_pending())
    }

    /// True when any mailbox still has messages. O(1): queued messages
    /// in non-stopped mailboxes are counted as they move.
    pub fn has_pending(&self) -> bool {
        self.queued > 0
    }

    /// The reliable message log.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Drops log entries made obsolete by a checkpoint at `seq` (see
    /// [`MessageLog::truncate_through`]). Returns how many entries were
    /// dropped.
    pub fn truncate_log_through(&mut self, seq: u64) -> usize {
        self.log.truncate_through(seq)
    }

    /// Execution statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Immutable access to an actor (for inspecting state in tests and
    /// experiments). Returns `None` for unknown ids.
    pub fn actor(&self, id: &ActorId) -> Option<&dyn Actor> {
        self.table
            .lookup(id)
            .map(|s| self.table.slot(s).actor.as_ref())
    }

    /// Mutable access to an actor (checkpoint/restore flows).
    pub fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)> {
        self.table
            .lookup(id)
            .map(|s| self.table.slot_mut(s).actor.as_mut())
    }

    /// Ids of all registered (non-stopped) actors, in id order.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        self.table.live_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorError;

    /// Counts messages; replies "ack" to an optional reply-to encoded as
    /// the payload.
    #[derive(Default)]
    struct Counter {
        seen: u64,
    }

    impl Actor for Counter {
        fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
            self.seen += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.seen = 0;
        }

        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }

        fn restore(&mut self, snapshot: &[u8]) {
            let mut b = [0u8; 8];
            b.copy_from_slice(snapshot);
            self.seen = u64::from_be_bytes(b);
        }
    }

    /// Forwards every message to a fixed next hop.
    struct Forwarder {
        next: ActorId,
    }

    impl Actor for Forwarder {
        fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            ctx.send(self.next.clone(), msg.payload.clone());
            Ok(())
        }
    }

    /// Fails on payloads equal to "poison".
    #[derive(Default)]
    struct Fragile {
        handled: u64,
    }

    impl Actor for Fragile {
        fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            if msg.payload.as_ref() == b"poison" {
                return Err(ActorError("poisoned".into()));
            }
            self.handled += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.handled = 0;
        }
    }

    #[test]
    fn delivery_and_stats() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"1"));
        sys.inject("c", Bytes::from_static(b"2"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert_eq!(n, 2);
        assert!(quiescent);
        assert_eq!(sys.stats().delivered, 2);
        assert_eq!(sys.log().len(), 2);
    }

    #[test]
    fn observer_counts_deliveries_and_mailbox_high_water() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"1"));
        sys.inject("c", Bytes::from_static(b"2"));
        sys.inject("c", Bytes::from_static(b"3"));
        sys.inject("nobody", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(obs.counter("actor.delivered", &Labels::none()), 3);
        assert_eq!(obs.counter("actor.dead_letters", &Labels::none()), 1);
        // Three messages were queued before any was drained.
        assert_eq!(
            obs.gauge("actor.mailbox_depth", &Labels::none())
                .map(|g| g.1),
            Some(3)
        );
    }

    #[test]
    fn gauge_guard_skips_non_high_water_enqueues() {
        // Satellite: the gauge is only touched when depth sets a new
        // high-water candidate; the high-water mark itself must be
        // unchanged from seed semantics (deepest mailbox ever seen).
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..4 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        // Shallower waves afterwards never touch the gauge.
        for _ in 0..3 {
            sys.inject("c", Bytes::from_static(b"m"));
            sys.run_until_quiescent(100);
        }
        assert_eq!(
            obs.gauge("actor.mailbox_depth", &Labels::none()),
            Some((4, 4))
        );
    }

    #[test]
    fn pipeline_forwards() {
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Forwarder {
                next: ActorId::new("c"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"x"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert!(quiescent);
        assert_eq!(n, 3, "one hop per actor");
        // The log shows delivery order a -> b -> c.
        let tos: Vec<&str> = sys.log().entries().iter().map(|m| m.to.as_str()).collect();
        assert_eq!(tos, vec!["a", "b", "c"]);
    }

    #[test]
    fn sequences_monotonic() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..5 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        let seqs: Vec<u64> = sys.log().entries().iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn dead_letters_counted() {
        let mut sys = System::new();
        sys.inject("ghost", Bytes::from_static(b"x"));
        assert_eq!(sys.stats().dead_letters, 1);
    }

    #[test]
    fn restart_supervision_resets_state() {
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(Fragile::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("f", Bytes::from_static(b"ok"));
        sys.inject("f", Bytes::from_static(b"poison"));
        sys.inject("f", Bytes::from_static(b"ok"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        assert_eq!(sys.stats().restarts, 1);
        // The poison message is not logged (delivery failed).
        assert_eq!(sys.log().len(), 2);
    }

    #[test]
    fn stop_supervision_removes_actor() {
        let mut sys = System::new();
        sys.spawn("f", Box::new(Fragile::default()), SupervisionPolicy::Stop);
        sys.inject("f", Bytes::from_static(b"poison"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        sys.inject("f", Bytes::from_static(b"ok"));
        assert_eq!(sys.stats().dead_letters, 1);
        assert!(sys.actor_ids().is_empty());
    }

    #[test]
    fn respawn_after_stop_revives_actor() {
        // Slot reuse: re-spawning a stopped id must clear the stop flag
        // and deliver again (the seed replaced the whole map entry).
        let mut sys = System::new();
        sys.spawn("f", Box::new(Fragile::default()), SupervisionPolicy::Stop);
        sys.inject("f", Bytes::from_static(b"poison"));
        sys.run_until_quiescent(100);
        assert!(sys.actor_ids().is_empty());
        sys.spawn(
            "f",
            Box::new(Fragile::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("f", Bytes::from_static(b"ok"));
        let (n, _) = sys.run_until_quiescent(100);
        assert_eq!(n, 1);
        assert_eq!(sys.stats().delivered, 1);
        assert_eq!(sys.actor_ids(), vec![ActorId::new("f")]);
    }

    #[test]
    fn retry_policy_retries_once() {
        /// Fails on the first delivery of each payload, succeeds on retry.
        #[derive(Default)]
        struct FlakyOnce {
            attempts: u64,
        }
        impl Actor for FlakyOnce {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                self.attempts += 1;
                if self.attempts % 2 == 1 {
                    Err(ActorError("flaky".into()))
                } else {
                    Ok(())
                }
            }
        }
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(FlakyOnce::default()),
            SupervisionPolicy::RestartAndRetry,
        );
        sys.inject("f", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        assert_eq!(sys.stats().delivered, 1, "retry succeeded");
    }

    #[test]
    fn retry_is_attempted_at_most_once() {
        /// Always fails.
        struct AlwaysFails;
        impl Actor for AlwaysFails {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                Err(ActorError("nope".into()))
            }
        }
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(AlwaysFails),
            SupervisionPolicy::RestartAndRetry,
        );
        sys.inject("f", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        // First attempt + exactly one retry, then the message is dropped.
        assert_eq!(sys.stats().failures, 2);
        assert_eq!(sys.stats().restarts, 2);
        assert_eq!(sys.stats().delivered, 0);
        assert!(sys.log().is_empty(), "failed deliveries are never logged");
    }

    #[test]
    fn retried_message_keeps_its_seq() {
        /// Fails on the first delivery of each payload, succeeds on retry.
        #[derive(Default)]
        struct FlakyOnce {
            attempts: u64,
        }
        impl Actor for FlakyOnce {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                self.attempts += 1;
                if self.attempts % 2 == 1 {
                    Err(ActorError("flaky".into()))
                } else {
                    Ok(())
                }
            }
        }
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(FlakyOnce::default()),
            SupervisionPolicy::RestartAndRetry,
        );
        sys.inject("f", Bytes::from_static(b"first"));
        sys.inject("f", Bytes::from_static(b"second"));
        sys.run_until_quiescent(100);
        // The retried delivery is the same attempt: it keeps seq 1, and
        // the next message still gets seq 2.
        let seqs: Vec<u64> = sys.log().entries().iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(sys.stats().failures, 2);
        assert_eq!(sys.stats().delivered, 2);
    }

    #[test]
    fn replay_suffix_filters_by_actor_and_seq() {
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"1"));
        sys.inject("b", Bytes::from_static(b"2"));
        sys.inject("a", Bytes::from_static(b"3"));
        sys.run_until_quiescent(100);
        let all_a = sys.log().replay_for(&ActorId::new("a"), 0);
        assert_eq!(all_a.len(), 2);
        let after_first = sys.log().replay_for(&ActorId::new("a"), all_a[0].seq);
        assert_eq!(after_first.len(), 1);
    }

    #[test]
    fn truncate_log_through_bounds_memory() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..10 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        assert_eq!(sys.log().len(), 10);
        assert_eq!(sys.truncate_log_through(7), 7);
        assert_eq!(sys.log().len(), 3);
        assert_eq!(sys.log().truncated(), 7);
        // Replay still sees the retained suffix.
        let tail = sys.log().replay_for(&ActorId::new("c"), 0);
        assert_eq!(
            tail.iter().map(|m| m.seq).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        // Sequence numbering continues from where it was.
        sys.inject("c", Bytes::from_static(b"m"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.log().entries().last().unwrap().seq, 11);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..3 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        let snap = sys.actor(&ActorId::new("c")).unwrap().snapshot();
        let fresh = &mut Counter::default();
        fresh.restore(&snap);
        assert_eq!(fresh.seen, 3);
    }

    #[test]
    fn traced_injection_links_cascade_into_one_trace() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        let root = obs.trace_root("test.root");
        let ctx = root.ctx().expect("enabled root span carries a ctx");
        sys.inject_traced("a", Bytes::from_static(b"x"), ctx);
        sys.run_until_quiescent(100);
        drop(root);

        let spans = obs.snapshot().spans;
        let delivers: Vec<_> = spans.iter().filter(|s| s.name == "actor.deliver").collect();
        assert_eq!(delivers.len(), 2, "one deliver span per hop");
        for d in &delivers {
            assert_eq!(d.trace, Some(ctx.trace_id), "hop joins the root trace");
            assert!(d.end_us.is_some(), "deliver spans closed");
        }
        // The first hop is parented on the root; the second on the first.
        assert_eq!(delivers[0].parent, Some(ctx.span));
        assert_eq!(delivers[1].parent, Some(delivers[0].id));
    }

    #[test]
    fn untraced_injection_emits_no_spans() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert!(obs.snapshot().spans.is_empty());
    }

    #[test]
    fn non_quiescent_reported() {
        // A two-actor ping-pong never quiesces.
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Forwarder {
                next: ActorId::new("a"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"ball"));
        let (n, quiescent) = sys.run_until_quiescent(10);
        assert!(!quiescent);
        // Each round lets both actors handle one message: a receives the
        // ball and forwards it within the same round, so b also fires.
        assert_eq!(n, 20);
    }

    #[test]
    fn spawns_between_rounds_keep_id_order() {
        // Spawning out of lexicographic order must still schedule in id
        // order once ranks refresh, including actors added after a run.
        let mut sys = System::new();
        sys.spawn(
            "m",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("m", Bytes::from_static(b"1"));
        sys.run_until_quiescent(100);
        sys.spawn(
            "a",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "z",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("z", Bytes::from_static(b"2"));
        sys.inject("a", Bytes::from_static(b"3"));
        sys.inject("m", Bytes::from_static(b"4"));
        sys.run_until_quiescent(100);
        let tos: Vec<&str> = sys.log().entries().iter().map(|m| m.to.as_str()).collect();
        assert_eq!(tos, vec!["m", "a", "m", "z"], "id order within each round");
    }

    #[test]
    fn sparse_readiness_only_visits_active_ranks() {
        // 1000 idle actors around one busy chain: the round must still
        // deliver correctly (and in order) — the O(active) walk is the
        // point of the ready bitmap.
        let mut sys = System::new();
        for i in 0..1000 {
            sys.spawn(
                format!("idle{i:04}"),
                Box::new(Counter::default()),
                SupervisionPolicy::Restart,
            );
        }
        sys.spawn(
            "zz-head",
            Box::new(Forwarder {
                next: ActorId::new("zz-tail"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "zz-tail",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("zz-head", Bytes::from_static(b"x"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert!(quiescent);
        assert_eq!(n, 2);
        let tos: Vec<&str> = sys.log().entries().iter().map(|m| m.to.as_str()).collect();
        assert_eq!(tos, vec!["zz-head", "zz-tail"]);
    }
}
