//! The deterministic actor system: FIFO mailboxes, round-robin
//! scheduling, reliable message logging, supervision.

use crate::actor::{Actor, ActorId, Ctx, Message};
use crate::supervise::SupervisionPolicy;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use udc_telemetry::{Labels, Telemetry, TraceCtx};

/// The reliable message log (§3.1: "messages could be reliably recorded
/// for faster recovery"). Records every *delivered* message in delivery
/// order; recovery replays a suffix.
#[derive(Debug, Clone, Default)]
pub struct MessageLog {
    entries: Vec<Message>,
}

impl MessageLog {
    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in delivery order.
    pub fn entries(&self) -> &[Message] {
        &self.entries
    }

    /// Entries addressed to `to` with `seq > after_seq` — the replay
    /// suffix used for recovery from a checkpoint.
    pub fn replay_for(&self, to: &ActorId, after_seq: u64) -> Vec<Message> {
        self.entries
            .iter()
            .filter(|m| &m.to == to && m.seq > after_seq)
            .cloned()
            .collect()
    }

    fn record(&mut self, msg: Message) {
        self.entries.push(msg);
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Messages successfully handled.
    pub delivered: u64,
    /// Handler failures observed.
    pub failures: u64,
    /// Actor restarts performed by supervision.
    pub restarts: u64,
    /// Messages addressed to unknown/stopped actors.
    pub dead_letters: u64,
}

struct Registered {
    actor: Box<dyn Actor>,
    mailbox: VecDeque<Message>,
    policy: SupervisionPolicy,
    stopped: bool,
}

/// The deterministic single-threaded actor system.
///
/// Delivery order is deterministic: actors are polled in id order, one
/// message per turn, so every run with the same inputs produces the same
/// message log.
#[derive(Default)]
pub struct System {
    actors: BTreeMap<ActorId, Registered>,
    log: MessageLog,
    next_seq: u64,
    stats: SystemStats,
    obs: Telemetry,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the observability hub: deliveries, failures, restarts
    /// and dead letters become `actor.*` counters, and the deepest
    /// mailbox seen is tracked as a gauge high-water mark.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// Registers an actor under `id` with a supervision policy.
    /// Replaces any existing registration with the same id.
    pub fn spawn(
        &mut self,
        id: impl Into<ActorId>,
        actor: Box<dyn Actor>,
        policy: SupervisionPolicy,
    ) {
        self.actors.insert(
            id.into(),
            Registered {
                actor,
                mailbox: VecDeque::new(),
                policy,
                stopped: false,
            },
        );
    }

    /// Enqueues an external message.
    pub fn inject(&mut self, to: impl Into<ActorId>, payload: impl Into<Bytes>) {
        self.enqueue(Message::external(to, payload));
    }

    /// Enqueues an external message under an explicit trace context, so
    /// the whole cascade it triggers joins the caller's trace.
    pub fn inject_traced(
        &mut self,
        to: impl Into<ActorId>,
        payload: impl Into<Bytes>,
        ctx: TraceCtx,
    ) {
        self.enqueue(Message::external_traced(to, payload, ctx));
    }

    fn enqueue(&mut self, msg: Message) {
        match self.actors.get_mut(&msg.to) {
            Some(r) if !r.stopped => {
                r.mailbox.push_back(msg);
                if self.obs.is_enabled() {
                    self.obs.gauge_set(
                        "actor.mailbox_depth",
                        Labels::none(),
                        r.mailbox.len() as i64,
                    );
                }
            }
            _ => {
                self.stats.dead_letters += 1;
                self.obs.incr("actor.dead_letters", Labels::none(), 1);
            }
        }
    }

    /// Delivers at most one message to each actor (in id order).
    /// Returns the number of messages handled.
    pub fn step(&mut self) -> usize {
        let ids: Vec<ActorId> = self.actors.keys().cloned().collect();
        let mut handled = 0;
        for id in ids {
            let Some(mut msg) = self.actors.get_mut(&id).and_then(|r| {
                if r.stopped {
                    None
                } else {
                    r.mailbox.pop_front()
                }
            }) else {
                continue;
            };
            self.next_seq += 1;
            msg.seq = self.next_seq;
            handled += 1;
            self.deliver(&id, msg, true);
        }
        handled
    }

    fn deliver(&mut self, id: &ActorId, msg: Message, allow_retry: bool) {
        let Some(r) = self.actors.get_mut(id) else {
            self.stats.dead_letters += 1;
            self.obs.incr("actor.dead_letters", Labels::none(), 1);
            return;
        };
        // Each traced delivery becomes an `actor.deliver` span parented
        // on the incoming message's context; outbox messages inherit the
        // span's context so the cascade forms a connected DAG.
        let span = if msg.trace.is_some() && self.obs.is_enabled() {
            Some(self.obs.span_opt(msg.trace.as_ref(), "actor.deliver"))
        } else {
            None
        };
        let dctx = span.as_ref().and_then(|s| s.ctx()).or(msg.trace);
        let mut ctx = Ctx {
            trace: dctx,
            ..Ctx::default()
        };
        let result = r.actor.on_message(&mut ctx, &msg);
        match result {
            Ok(()) => {
                self.stats.delivered += 1;
                self.obs.incr("actor.delivered", Labels::none(), 1);
                self.log.record(msg.clone());
                let from = id.clone();
                for (to, payload) in ctx.outbox {
                    self.enqueue(Message {
                        from: Some(from.clone()),
                        to,
                        payload,
                        seq: 0,
                        trace: dctx,
                    });
                }
            }
            Err(_) => {
                self.stats.failures += 1;
                self.obs.incr("actor.failures", Labels::none(), 1);
                match r.policy {
                    SupervisionPolicy::Restart => {
                        r.actor.reset();
                        self.stats.restarts += 1;
                        self.obs.incr("actor.restarts", Labels::none(), 1);
                    }
                    SupervisionPolicy::RestartAndRetry => {
                        r.actor.reset();
                        self.stats.restarts += 1;
                        self.obs.incr("actor.restarts", Labels::none(), 1);
                        if allow_retry {
                            self.deliver(id, msg, false);
                        }
                    }
                    SupervisionPolicy::Stop => {
                        r.stopped = true;
                        r.mailbox.clear();
                    }
                }
            }
        }
    }

    /// Runs until no mailbox has messages, or `max_steps` rounds elapse.
    /// Returns the total number of messages handled and whether the
    /// system reached quiescence.
    pub fn run_until_quiescent(&mut self, max_steps: usize) -> (u64, bool) {
        let mut total = 0u64;
        for _ in 0..max_steps {
            let handled = self.step();
            if handled == 0 {
                return (total, true);
            }
            total += handled as u64;
        }
        (total, !self.has_pending())
    }

    /// True when any mailbox still has messages.
    pub fn has_pending(&self) -> bool {
        self.actors
            .values()
            .any(|r| !r.stopped && !r.mailbox.is_empty())
    }

    /// The reliable message log.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Execution statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Immutable access to an actor (for inspecting state in tests and
    /// experiments). Returns `None` for unknown ids.
    pub fn actor(&self, id: &ActorId) -> Option<&dyn Actor> {
        self.actors.get(id).map(|r| r.actor.as_ref())
    }

    /// Mutable access to an actor (checkpoint/restore flows).
    pub fn actor_mut(&mut self, id: &ActorId) -> Option<&mut (dyn Actor + 'static)> {
        self.actors.get_mut(id).map(|r| r.actor.as_mut())
    }

    /// Ids of all registered (non-stopped) actors.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        self.actors
            .iter()
            .filter(|(_, r)| !r.stopped)
            .map(|(id, _)| id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorError;

    /// Counts messages; replies "ack" to an optional reply-to encoded as
    /// the payload.
    #[derive(Default)]
    struct Counter {
        seen: u64,
    }

    impl Actor for Counter {
        fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
            self.seen += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.seen = 0;
        }

        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }

        fn restore(&mut self, snapshot: &[u8]) {
            let mut b = [0u8; 8];
            b.copy_from_slice(snapshot);
            self.seen = u64::from_be_bytes(b);
        }
    }

    /// Forwards every message to a fixed next hop.
    struct Forwarder {
        next: ActorId,
    }

    impl Actor for Forwarder {
        fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            ctx.send(self.next.clone(), msg.payload.clone());
            Ok(())
        }
    }

    /// Fails on payloads equal to "poison".
    #[derive(Default)]
    struct Fragile {
        handled: u64,
    }

    impl Actor for Fragile {
        fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            if msg.payload.as_ref() == b"poison" {
                return Err(ActorError("poisoned".into()));
            }
            self.handled += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.handled = 0;
        }
    }

    #[test]
    fn delivery_and_stats() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"1"));
        sys.inject("c", Bytes::from_static(b"2"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert_eq!(n, 2);
        assert!(quiescent);
        assert_eq!(sys.stats().delivered, 2);
        assert_eq!(sys.log().len(), 2);
    }

    #[test]
    fn observer_counts_deliveries_and_mailbox_high_water() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"1"));
        sys.inject("c", Bytes::from_static(b"2"));
        sys.inject("c", Bytes::from_static(b"3"));
        sys.inject("nobody", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(obs.counter("actor.delivered", &Labels::none()), 3);
        assert_eq!(obs.counter("actor.dead_letters", &Labels::none()), 1);
        // Three messages were queued before any was drained.
        assert_eq!(
            obs.gauge("actor.mailbox_depth", &Labels::none())
                .map(|g| g.1),
            Some(3)
        );
    }

    #[test]
    fn pipeline_forwards() {
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Forwarder {
                next: ActorId::new("c"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"x"));
        let (n, quiescent) = sys.run_until_quiescent(100);
        assert!(quiescent);
        assert_eq!(n, 3, "one hop per actor");
        // The log shows delivery order a -> b -> c.
        let tos: Vec<&str> = sys.log().entries().iter().map(|m| m.to.as_str()).collect();
        assert_eq!(tos, vec!["a", "b", "c"]);
    }

    #[test]
    fn sequences_monotonic() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..5 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        let seqs: Vec<u64> = sys.log().entries().iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn dead_letters_counted() {
        let mut sys = System::new();
        sys.inject("ghost", Bytes::from_static(b"x"));
        assert_eq!(sys.stats().dead_letters, 1);
    }

    #[test]
    fn restart_supervision_resets_state() {
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(Fragile::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("f", Bytes::from_static(b"ok"));
        sys.inject("f", Bytes::from_static(b"poison"));
        sys.inject("f", Bytes::from_static(b"ok"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        assert_eq!(sys.stats().restarts, 1);
        // The poison message is not logged (delivery failed).
        assert_eq!(sys.log().len(), 2);
    }

    #[test]
    fn stop_supervision_removes_actor() {
        let mut sys = System::new();
        sys.spawn("f", Box::new(Fragile::default()), SupervisionPolicy::Stop);
        sys.inject("f", Bytes::from_static(b"poison"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        sys.inject("f", Bytes::from_static(b"ok"));
        assert_eq!(sys.stats().dead_letters, 1);
        assert!(sys.actor_ids().is_empty());
    }

    #[test]
    fn retry_policy_retries_once() {
        /// Fails on the first delivery of each payload, succeeds on retry.
        #[derive(Default)]
        struct FlakyOnce {
            attempts: u64,
        }
        impl Actor for FlakyOnce {
            fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
                self.attempts += 1;
                if self.attempts % 2 == 1 {
                    Err(ActorError("flaky".into()))
                } else {
                    Ok(())
                }
            }
        }
        let mut sys = System::new();
        sys.spawn(
            "f",
            Box::new(FlakyOnce::default()),
            SupervisionPolicy::RestartAndRetry,
        );
        sys.inject("f", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().failures, 1);
        assert_eq!(sys.stats().delivered, 1, "retry succeeded");
    }

    #[test]
    fn replay_suffix_filters_by_actor_and_seq() {
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"1"));
        sys.inject("b", Bytes::from_static(b"2"));
        sys.inject("a", Bytes::from_static(b"3"));
        sys.run_until_quiescent(100);
        let all_a = sys.log().replay_for(&ActorId::new("a"), 0);
        assert_eq!(all_a.len(), 2);
        let after_first = sys.log().replay_for(&ActorId::new("a"), all_a[0].seq);
        assert_eq!(after_first.len(), 1);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut sys = System::new();
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        for _ in 0..3 {
            sys.inject("c", Bytes::from_static(b"m"));
        }
        sys.run_until_quiescent(100);
        let snap = sys.actor(&ActorId::new("c")).unwrap().snapshot();
        let fresh = &mut Counter::default();
        fresh.restore(&snap);
        assert_eq!(fresh.seen, 3);
    }

    #[test]
    fn traced_injection_links_cascade_into_one_trace() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        let root = obs.trace_root("test.root");
        let ctx = root.ctx().expect("enabled root span carries a ctx");
        sys.inject_traced("a", Bytes::from_static(b"x"), ctx);
        sys.run_until_quiescent(100);
        drop(root);

        let spans = obs.snapshot().spans;
        let delivers: Vec<_> = spans.iter().filter(|s| s.name == "actor.deliver").collect();
        assert_eq!(delivers.len(), 2, "one deliver span per hop");
        for d in &delivers {
            assert_eq!(d.trace, Some(ctx.trace_id), "hop joins the root trace");
            assert!(d.end_us.is_some(), "deliver spans closed");
        }
        // The first hop is parented on the root; the second on the first.
        assert_eq!(delivers[0].parent, Some(ctx.span));
        assert_eq!(delivers[1].parent, Some(delivers[0].id));
    }

    #[test]
    fn untraced_injection_emits_no_spans() {
        let mut sys = System::new();
        let obs = Telemetry::enabled();
        sys.set_observer(obs.clone());
        sys.spawn(
            "c",
            Box::new(Counter::default()),
            SupervisionPolicy::Restart,
        );
        sys.inject("c", Bytes::from_static(b"x"));
        sys.run_until_quiescent(100);
        assert!(obs.snapshot().spans.is_empty());
    }

    #[test]
    fn non_quiescent_reported() {
        // A two-actor ping-pong never quiesces.
        let mut sys = System::new();
        sys.spawn(
            "a",
            Box::new(Forwarder {
                next: ActorId::new("b"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.spawn(
            "b",
            Box::new(Forwarder {
                next: ActorId::new("a"),
            }),
            SupervisionPolicy::Restart,
        );
        sys.inject("a", Bytes::from_static(b"ball"));
        let (n, quiescent) = sys.run_until_quiescent(10);
        assert!(!quiescent);
        // Each round lets both actors handle one message: a receives the
        // ball and forwards it within the same round, so b also fires.
        assert_eq!(n, 20);
    }
}
