//! Observable-equivalence proof for the optimized actor runtime: the
//! seed round-robin system (`NaiveSystem`, kept verbatim) and the
//! interned-slab + ready-bitmap `System` run side by side over random
//! actor graphs and operation traces — spawns (including replacement
//! respawns), injections, single rounds, and run-to-quiescence, with
//! every supervision policy and failure pattern in play. At every step
//! they must handle the *same* number of messages, and at every
//! checkpoint the stats, message log, dead letters, live actor set,
//! actor state snapshots, telemetry counters/gauges, and per-actor
//! replay suffixes must be identical — so the fast path is a pure
//! speedup, never a behavior change.

use bytes::Bytes;
use proptest::prelude::*;
use udc_actor::{Actor, ActorError, ActorId, Ctx, Message, NaiveSystem, SupervisionPolicy, System};
use udc_telemetry::{Labels, Telemetry};

const SLOTS: u8 = 8;

fn id_for(slot: u8) -> ActorId {
    ActorId::new(format!("m{}", slot % SLOTS))
}

/// Counts deliveries; snapshot exposes the count so actor state can be
/// compared across the twin systems.
#[derive(Default)]
struct Sink {
    seen: u64,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.seen += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.seen = 0;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.seen.to_be_bytes().to_vec()
    }
}

/// Forwards every payload to a fixed next hop.
struct Forwarder {
    next: ActorId,
}

impl Actor for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.next.clone(), msg.payload.clone());
        Ok(())
    }
}

/// Sends to two targets per delivery (message amplification).
struct FanOut {
    left: ActorId,
    right: ActorId,
}

impl Actor for FanOut {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.left.clone(), msg.payload.clone());
        ctx.send(self.right.clone(), msg.payload.clone());
        Ok(())
    }
}

/// Fails deterministically by attempt count (attempt 1, 4, 7, … fail),
/// so a failed first attempt succeeds on retry under RestartAndRetry.
/// The attempt counter deliberately survives `reset()` — it scripts the
/// failure pattern; `seen` is the state supervision wipes.
#[derive(Default)]
struct Flaky {
    attempts: u64,
    seen: u64,
}

impl Actor for Flaky {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.attempts += 1;
        if self.attempts % 3 == 1 {
            return Err(ActorError("scripted failure".into()));
        }
        self.seen += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.seen = 0;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.seen.to_be_bytes().to_vec()
    }
}

/// Builds one behavior instance; called twice per spawn so both systems
/// get identical fresh actors.
fn behavior(kind: u8, slot: u8) -> Box<dyn Actor> {
    match kind % 4 {
        0 => Box::new(Sink::default()),
        1 => Box::new(Forwarder {
            next: id_for(slot.wrapping_add(1 + kind / 4)),
        }),
        2 => Box::new(FanOut {
            left: id_for(slot.wrapping_add(1)),
            right: id_for(slot.wrapping_add(3)),
        }),
        _ => Box::new(Flaky::default()),
    }
}

fn policy(p: u8) -> SupervisionPolicy {
    match p % 3 {
        0 => SupervisionPolicy::Restart,
        1 => SupervisionPolicy::RestartAndRetry,
        _ => SupervisionPolicy::Stop,
    }
}

/// Compares everything observable between the twin systems.
fn assert_equivalent(
    fast: &System,
    seed: &NaiveSystem,
    fast_obs: &Telemetry,
    seed_obs: &Telemetry,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(fast.stats(), seed.stats(), "stats diverged");
    prop_assert_eq!(fast.has_pending(), seed.has_pending(), "pending diverged");
    prop_assert_eq!(
        fast.actor_ids(),
        seed.actor_ids(),
        "live actor set diverged"
    );
    prop_assert_eq!(
        fast.log().entries(),
        seed.log().entries(),
        "message log diverged"
    );
    for slot in 0..SLOTS {
        let id = id_for(slot);
        let a = fast.actor(&id).map(|a| a.snapshot());
        let b = seed.actor(&id).map(|a| a.snapshot());
        prop_assert_eq!(a, b, "actor state diverged for {}", id);
        // Replay suffixes agree at several cut points (also checks the
        // indexed replay path against the oracle's identical log).
        for after in [0, 1, fast.log().len() as u64 / 2, u64::MAX] {
            prop_assert_eq!(
                fast.log().replay_for(&id, after),
                seed.log().replay_for(&id, after),
                "replay suffix diverged for {} after {}",
                id,
                after
            );
        }
    }
    for name in [
        "actor.delivered",
        "actor.failures",
        "actor.restarts",
        "actor.dead_letters",
    ] {
        prop_assert_eq!(
            fast_obs.counter(name, &Labels::none()),
            seed_obs.counter(name, &Labels::none()),
            "counter {} diverged",
            name
        );
    }
    prop_assert_eq!(
        fast_obs.gauge("actor.mailbox_depth", &Labels::none()),
        seed_obs.gauge("actor.mailbox_depth", &Labels::none()),
        "mailbox gauge diverged"
    );
    Ok(())
}

proptest! {
    /// Every step of every trace is observably identical between the
    /// seed system and the optimized one.
    #[test]
    fn fast_system_matches_seed_system(
        steps in prop::collection::vec(
            (0u8..4, 0u8..SLOTS, any::<u8>(), any::<u8>()),
            1..60,
        ),
    ) {
        let mut fast = System::new();
        let mut seed = NaiveSystem::new();
        let fast_obs = Telemetry::enabled();
        let seed_obs = Telemetry::enabled();
        fast.set_observer(fast_obs.clone());
        seed.set_observer(seed_obs.clone());

        for (op, slot, aux, payload) in steps {
            match op {
                0 => {
                    let pol = policy(aux / 16);
                    fast.spawn(id_for(slot), behavior(aux, slot), pol);
                    seed.spawn(id_for(slot), behavior(aux, slot), pol);
                }
                1 => {
                    // Some injections target never-spawned ids, so the
                    // dead-letter path gets traffic too.
                    let to = if aux % 5 == 0 {
                        ActorId::new("ghost")
                    } else {
                        id_for(slot)
                    };
                    let body = Bytes::from(vec![payload]);
                    fast.inject(to.clone(), body.clone());
                    seed.inject(to, body);
                }
                2 => {
                    prop_assert_eq!(fast.step(), seed.step(), "round size diverged");
                }
                _ => {
                    let a = fast.run_until_quiescent(15);
                    let b = seed.run_until_quiescent(15);
                    prop_assert_eq!(a, b, "quiescence diverged");
                }
            }
            assert_equivalent(&fast, &seed, &fast_obs, &seed_obs)?;
        }
    }

    /// RestartAndRetry parity under a hostile failure pattern: random
    /// injection mixes into a Flaky actor retried by both systems give
    /// identical stats, logs, and sequence numbers.
    #[test]
    fn restart_and_retry_parity(
        payloads in prop::collection::vec(any::<u8>(), 1..40),
        rounds in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut fast = System::new();
        let mut seed = NaiveSystem::new();
        let fast_obs = Telemetry::enabled();
        let seed_obs = Telemetry::enabled();
        fast.set_observer(fast_obs.clone());
        seed.set_observer(seed_obs.clone());
        fast.spawn("flaky", Box::new(Flaky::default()), SupervisionPolicy::RestartAndRetry);
        seed.spawn("flaky", Box::new(Flaky::default()), SupervisionPolicy::RestartAndRetry);

        for (i, p) in payloads.iter().enumerate() {
            let body = Bytes::from(vec![*p]);
            fast.inject("flaky", body.clone());
            seed.inject("flaky", body);
            if rounds[i % rounds.len()] {
                prop_assert_eq!(fast.step(), seed.step());
            }
        }
        let a = fast.run_until_quiescent(200);
        let b = seed.run_until_quiescent(200);
        prop_assert_eq!(a, b);
        assert_equivalent(&fast, &seed, &fast_obs, &seed_obs)?;
        // Retried messages keep their seq: the log's sequence numbers
        // are exactly the successful-delivery subsequence.
        let seqs: Vec<u64> = fast.log().entries().iter().map(|m| m.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(seqs, sorted, "log seqs strictly increasing");
    }
}
