//! Observable-equivalence proof for the optimized actor runtime: the
//! seed round-robin system (`NaiveSystem`, kept verbatim) and the
//! interned-slab + ready-bitmap `System` run side by side over random
//! actor graphs and operation traces — spawns (including replacement
//! respawns), injections, single rounds, and run-to-quiescence, with
//! every supervision policy and failure pattern in play. At every step
//! they must handle the *same* number of messages, and at every
//! checkpoint the stats, message log, dead letters, live actor set,
//! actor state snapshots, telemetry counters/gauges, and per-actor
//! replay suffixes must be identical — so the fast path is a pure
//! speedup, never a behavior change.

//! The work-stealing `ParSystem` joins the same oracle as a third
//! executor (see `three_way` below): for commutativity-respecting
//! workloads — handlers that never read `Message::seq`, under
//! `Restart`/`RestartAndRetry` supervision — the per-actor message
//! order and final actor state must match `System`'s, and the *entire*
//! observable surface (log bytes including seqs, stats, snapshots,
//! mailbox-depth high-water) must be identical across thread counts
//! 1/2/4/8.

use bytes::Bytes;
use proptest::prelude::*;
use udc_actor::{
    Actor, ActorError, ActorId, ActorRuntime, Ctx, Message, NaiveSystem, ParSystem,
    SupervisionPolicy, System,
};
use udc_telemetry::{Labels, Telemetry};

const SLOTS: u8 = 8;

fn id_for(slot: u8) -> ActorId {
    ActorId::new(format!("m{}", slot % SLOTS))
}

/// Counts deliveries; snapshot exposes the count so actor state can be
/// compared across the twin systems.
#[derive(Default)]
struct Sink {
    seen: u64,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.seen += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.seen = 0;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.seen.to_be_bytes().to_vec()
    }
}

/// Forwards every payload to a fixed next hop.
struct Forwarder {
    next: ActorId,
}

impl Actor for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.next.clone(), msg.payload.clone());
        Ok(())
    }
}

/// Sends to two targets per delivery (message amplification).
struct FanOut {
    left: ActorId,
    right: ActorId,
}

impl Actor for FanOut {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.left.clone(), msg.payload.clone());
        ctx.send(self.right.clone(), msg.payload.clone());
        Ok(())
    }
}

/// Fails deterministically by attempt count (attempt 1, 4, 7, … fail),
/// so a failed first attempt succeeds on retry under RestartAndRetry.
/// The attempt counter deliberately survives `reset()` — it scripts the
/// failure pattern; `seen` is the state supervision wipes.
#[derive(Default)]
struct Flaky {
    attempts: u64,
    seen: u64,
}

impl Actor for Flaky {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.attempts += 1;
        if self.attempts % 3 == 1 {
            return Err(ActorError("scripted failure".into()));
        }
        self.seen += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.seen = 0;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.seen.to_be_bytes().to_vec()
    }
}

/// Builds one behavior instance; called twice per spawn so both systems
/// get identical fresh actors.
fn behavior(kind: u8, slot: u8) -> Box<dyn Actor> {
    match kind % 4 {
        0 => Box::new(Sink::default()),
        1 => Box::new(Forwarder {
            next: id_for(slot.wrapping_add(1 + kind / 4)),
        }),
        2 => Box::new(FanOut {
            left: id_for(slot.wrapping_add(1)),
            right: id_for(slot.wrapping_add(3)),
        }),
        _ => Box::new(Flaky::default()),
    }
}

fn policy(p: u8) -> SupervisionPolicy {
    match p % 3 {
        0 => SupervisionPolicy::Restart,
        1 => SupervisionPolicy::RestartAndRetry,
        _ => SupervisionPolicy::Stop,
    }
}

/// Compares everything observable between the twin systems.
fn assert_equivalent(
    fast: &System,
    seed: &NaiveSystem,
    fast_obs: &Telemetry,
    seed_obs: &Telemetry,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(fast.stats(), seed.stats(), "stats diverged");
    prop_assert_eq!(fast.has_pending(), seed.has_pending(), "pending diverged");
    prop_assert_eq!(
        fast.actor_ids(),
        seed.actor_ids(),
        "live actor set diverged"
    );
    prop_assert_eq!(
        fast.log().entries(),
        seed.log().entries(),
        "message log diverged"
    );
    for slot in 0..SLOTS {
        let id = id_for(slot);
        let a = fast.actor(&id).map(|a| a.snapshot());
        let b = seed.actor(&id).map(|a| a.snapshot());
        prop_assert_eq!(a, b, "actor state diverged for {}", id);
        // Replay suffixes agree at several cut points (also checks the
        // indexed replay path against the oracle's identical log).
        for after in [0, 1, fast.log().len() as u64 / 2, u64::MAX] {
            prop_assert_eq!(
                fast.log().replay_for(&id, after),
                seed.log().replay_for(&id, after),
                "replay suffix diverged for {} after {}",
                id,
                after
            );
        }
    }
    for name in [
        "actor.delivered",
        "actor.failures",
        "actor.restarts",
        "actor.dead_letters",
    ] {
        prop_assert_eq!(
            fast_obs.counter(name, &Labels::none()),
            seed_obs.counter(name, &Labels::none()),
            "counter {} diverged",
            name
        );
    }
    prop_assert_eq!(
        fast_obs.gauge("actor.mailbox_depth", &Labels::none()),
        seed_obs.gauge("actor.mailbox_depth", &Labels::none()),
        "mailbox gauge diverged"
    );
    Ok(())
}

proptest! {
    /// Every step of every trace is observably identical between the
    /// seed system and the optimized one.
    #[test]
    fn fast_system_matches_seed_system(
        steps in prop::collection::vec(
            (0u8..4, 0u8..SLOTS, any::<u8>(), any::<u8>()),
            1..60,
        ),
    ) {
        let mut fast = System::new();
        let mut seed = NaiveSystem::new();
        let fast_obs = Telemetry::enabled();
        let seed_obs = Telemetry::enabled();
        fast.set_observer(fast_obs.clone());
        seed.set_observer(seed_obs.clone());

        for (op, slot, aux, payload) in steps {
            match op {
                0 => {
                    let pol = policy(aux / 16);
                    fast.spawn(id_for(slot), behavior(aux, slot), pol);
                    seed.spawn(id_for(slot), behavior(aux, slot), pol);
                }
                1 => {
                    // Some injections target never-spawned ids, so the
                    // dead-letter path gets traffic too.
                    let to = if aux % 5 == 0 {
                        ActorId::new("ghost")
                    } else {
                        id_for(slot)
                    };
                    let body = Bytes::from(vec![payload]);
                    fast.inject(to.clone(), body.clone());
                    seed.inject(to, body);
                }
                2 => {
                    prop_assert_eq!(fast.step(), seed.step(), "round size diverged");
                }
                _ => {
                    let a = fast.run_until_quiescent(15);
                    let b = seed.run_until_quiescent(15);
                    prop_assert_eq!(a, b, "quiescence diverged");
                }
            }
            assert_equivalent(&fast, &seed, &fast_obs, &seed_obs)?;
        }
    }

    /// RestartAndRetry parity under a hostile failure pattern: random
    /// injection mixes into a Flaky actor retried by both systems give
    /// identical stats, logs, and sequence numbers.
    #[test]
    fn restart_and_retry_parity(
        payloads in prop::collection::vec(any::<u8>(), 1..40),
        rounds in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut fast = System::new();
        let mut seed = NaiveSystem::new();
        let fast_obs = Telemetry::enabled();
        let seed_obs = Telemetry::enabled();
        fast.set_observer(fast_obs.clone());
        seed.set_observer(seed_obs.clone());
        fast.spawn("flaky", Box::new(Flaky::default()), SupervisionPolicy::RestartAndRetry);
        seed.spawn("flaky", Box::new(Flaky::default()), SupervisionPolicy::RestartAndRetry);

        for (i, p) in payloads.iter().enumerate() {
            let body = Bytes::from(vec![*p]);
            fast.inject("flaky", body.clone());
            seed.inject("flaky", body);
            if rounds[i % rounds.len()] {
                prop_assert_eq!(fast.step(), seed.step());
            }
        }
        let a = fast.run_until_quiescent(200);
        let b = seed.run_until_quiescent(200);
        prop_assert_eq!(a, b);
        assert_equivalent(&fast, &seed, &fast_obs, &seed_obs)?;
        // Retried messages keep their seq: the log's sequence numbers
        // are exactly the successful-delivery subsequence.
        let seqs: Vec<u64> = fast.log().entries().iter().map(|m| m.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(seqs, sorted, "log seqs strictly increasing");
    }
}

// ---------------------------------------------------------------------
// Three-way oracle: NaiveSystem ≡ System ≡ ParSystem (1/2/4/8 threads).
//
// The parallel executor defers cascades to the next round, so its round
// *structure* differs from `System`'s — but per-actor message order,
// final actor state, and the failure/restart/dead-letter totals must
// not. Workloads here respect the commutativity contract: handlers
// never read `Message::seq`, and supervision is Restart or
// RestartAndRetry (Stop semantics intentionally differ — see
// DESIGN.md §14 — and are covered by ParSystem's own unit tests).
// Message payloads carry a TTL in byte 0 so every cascade is finite and
// all executors can be compared at true quiescence.
// ---------------------------------------------------------------------

/// Forwards with a decremented TTL; the cascade dies at TTL 0.
struct TtlForwarder {
    next: ActorId,
}

impl Actor for TtlForwarder {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        if let Some(&ttl) = msg.payload.first() {
            if ttl > 0 {
                let mut body = msg.payload.to_vec();
                body[0] = ttl - 1;
                ctx.send(self.next.clone(), body);
            }
        }
        Ok(())
    }
}

/// Amplifies ×2 per hop with a decremented TTL, so amplification is
/// bounded by 2^TTL.
struct TtlFanOut {
    left: ActorId,
    right: ActorId,
}

impl Actor for TtlFanOut {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        if let Some(&ttl) = msg.payload.first() {
            if ttl > 0 {
                let mut body = msg.payload.to_vec();
                body[0] = ttl - 1;
                ctx.send(self.left.clone(), body.clone());
                ctx.send(self.right.clone(), body);
            }
        }
        Ok(())
    }
}

/// Behaviors for the three-way trace: all commutativity-respecting,
/// all with finite cascades.
fn behavior3(kind: u8, slot: u8) -> Box<dyn Actor> {
    match kind % 4 {
        0 => Box::new(Sink::default()),
        1 => Box::new(TtlForwarder {
            next: id_for(slot.wrapping_add(1 + kind / 4)),
        }),
        2 => Box::new(TtlFanOut {
            left: id_for(slot.wrapping_add(1)),
            right: id_for(slot.wrapping_add(3)),
        }),
        _ => Box::new(Flaky::default()),
    }
}

fn policy3(p: u8) -> SupervisionPolicy {
    if p.is_multiple_of(2) {
        SupervisionPolicy::Restart
    } else {
        SupervisionPolicy::RestartAndRetry
    }
}

/// The log projected per destination actor: the (from, payload) arrival
/// order each actor observed. This is the surface the commutativity
/// contract guarantees across executors with different round structure.
/// One actor's observed arrivals: `(from, payload)` in delivery order.
type Arrivals = Vec<(Option<String>, Vec<u8>)>;

fn per_actor_order(rt: &dyn ActorRuntime) -> Vec<(String, Arrivals)> {
    (0..SLOTS)
        .map(|slot| {
            let id = id_for(slot);
            let arrivals = rt
                .log()
                .entries()
                .iter()
                .filter(|m| m.to == id)
                .map(|m| {
                    (
                        m.from.as_ref().map(|f| f.as_str().to_string()),
                        m.payload.to_vec(),
                    )
                })
                .collect();
            (id.as_str().to_string(), arrivals)
        })
        .collect()
}

fn snapshots(rt: &dyn ActorRuntime) -> Vec<Option<Vec<u8>>> {
    (0..SLOTS)
        .map(|slot| rt.actor(&id_for(slot)).map(|a| a.snapshot()))
        .collect()
}

/// Byte-for-byte equality (log incl. seqs, stats, state, telemetry):
/// holds between the two deterministic executors and across ParSystem
/// thread counts.
fn assert_strict_eq(
    (a, a_obs): (&dyn ActorRuntime, &Telemetry),
    (b, b_obs): (&dyn ActorRuntime, &Telemetry),
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.log().entries(), b.log().entries(), "{}: log", what);
    prop_assert_eq!(a.stats(), b.stats(), "{}: stats", what);
    prop_assert_eq!(a.actor_ids(), b.actor_ids(), "{}: live ids", what);
    prop_assert_eq!(snapshots(a), snapshots(b), "{}: snapshots", what);
    prop_assert_eq!(
        a_obs.gauge("actor.mailbox_depth", &Labels::none()),
        b_obs.gauge("actor.mailbox_depth", &Labels::none()),
        "{}: mailbox gauge",
        what
    );
    Ok(())
}

/// The commutativity-contract surface: per-actor arrival order, final
/// state, and delivery/failure totals — what ParSystem promises
/// relative to `System` despite different round structure.
fn assert_contract_eq(
    (a, a_obs): (&dyn ActorRuntime, &Telemetry),
    (b, b_obs): (&dyn ActorRuntime, &Telemetry),
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        per_actor_order(a),
        per_actor_order(b),
        "{}: arrival order",
        what
    );
    prop_assert_eq!(a.stats(), b.stats(), "{}: stats", what);
    prop_assert_eq!(a.actor_ids(), b.actor_ids(), "{}: live ids", what);
    prop_assert_eq!(snapshots(a), snapshots(b), "{}: snapshots", what);
    for name in [
        "actor.delivered",
        "actor.failures",
        "actor.restarts",
        "actor.dead_letters",
    ] {
        prop_assert_eq!(
            a_obs.counter(name, &Labels::none()),
            b_obs.counter(name, &Labels::none()),
            "{}: counter {}",
            what,
            name
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One random trace, seven executors: the seed oracle, the
    /// deterministic fast path, and ParSystem at 1/2/4/8 threads.
    /// At every quiescence point: Naive ≡ System byte-for-byte,
    /// ParSystem byte-identical across all thread counts, and
    /// System ≡ ParSystem on the commutativity-contract surface.
    #[test]
    fn three_way_par_system_matches_both_oracles(
        steps in prop::collection::vec(
            (0u8..3, 0u8..SLOTS, any::<u8>(), any::<u8>()),
            1..36,
        ),
    ) {
        let mut systems: Vec<(Box<dyn ActorRuntime>, Telemetry)> = vec![
            (Box::new(NaiveSystem::new()), Telemetry::enabled()),
            (Box::new(System::new()), Telemetry::enabled()),
            (Box::new(ParSystem::new(1)), Telemetry::enabled()),
            (Box::new(ParSystem::new(2)), Telemetry::enabled()),
            (Box::new(ParSystem::new(4)), Telemetry::enabled()),
            (Box::new(ParSystem::new(8)), Telemetry::enabled()),
        ];
        for (rt, obs) in &mut systems {
            rt.set_observer(obs.clone());
        }

        let mut compare_due = false;
        for (i, &(op, slot, aux, payload)) in steps.iter().enumerate() {
            for (rt, _) in &mut systems {
                match op {
                    0 => rt.spawn(id_for(slot), behavior3(aux, slot), policy3(aux / 16)),
                    1 => {
                        let to = if aux % 7 == 0 {
                            ActorId::new("ghost")
                        } else {
                            id_for(slot)
                        };
                        // Byte 0 is the TTL (amplification ≤ 2^3).
                        rt.inject(to, Bytes::from(vec![payload % 4, payload, aux]));
                    }
                    _ => {
                        let (_, quiescent) = rt.run_until_quiescent(400);
                        assert!(quiescent, "TTL workload must quiesce");
                    }
                }
            }
            compare_due = op == 2 || i == steps.len() - 1;
            if compare_due {
                if op != 2 {
                    for (rt, _) in &mut systems {
                        let (_, quiescent) = rt.run_until_quiescent(400);
                        assert!(quiescent, "TTL workload must quiesce");
                    }
                }
                let views: Vec<(&dyn ActorRuntime, &Telemetry)> = systems
                    .iter()
                    .map(|(rt, obs)| (rt.as_ref(), obs))
                    .collect();
                assert_strict_eq(views[0], views[1], "naive vs fast")?;
                assert_strict_eq(views[2], views[3], "par1 vs par2")?;
                assert_strict_eq(views[2], views[4], "par1 vs par4")?;
                assert_strict_eq(views[2], views[5], "par1 vs par8")?;
                assert_contract_eq(views[1], views[2], "fast vs par1")?;
            }
        }
        prop_assert!(compare_due, "trace ended with a comparison");
    }
}

/// With sink-only actors there are no cascades, so `System` and
/// `ParSystem` share even the mailbox-depth high-water — the one
/// observable the general contract exempts (round structure shifts
/// when cascaded messages are enqueued).
#[test]
fn mailbox_depth_matches_system_for_sink_only_workloads() {
    let mut fast = System::new();
    let mut par = ParSystem::new(4);
    let fast_obs = Telemetry::enabled();
    let par_obs = Telemetry::enabled();
    fast.set_observer(fast_obs.clone());
    par.set_observer(par_obs.clone());
    for slot in 0..5u8 {
        fast.spawn(
            id_for(slot),
            Box::new(Sink::default()),
            SupervisionPolicy::Restart,
        );
        par.spawn(
            id_for(slot),
            Box::new(Sink::default()),
            SupervisionPolicy::Restart,
        );
    }
    // Uneven burst: slot i receives i+1 copies, then a partial drain,
    // then a second burst to move the high-water again.
    for round in 0..2 {
        for slot in 0..5u8 {
            for n in 0..=slot {
                let body = Bytes::from(vec![round, slot, n]);
                fast.inject(id_for(slot), body.clone());
                par.inject(id_for(slot), body);
            }
        }
        fast.step();
        par.step();
    }
    fast.run_until_quiescent(100);
    par.run_until_quiescent(100);
    assert_eq!(
        fast_obs.gauge("actor.mailbox_depth", &Labels::none()),
        par_obs.gauge("actor.mailbox_depth", &Labels::none()),
    );
    assert_eq!(fast.stats(), par.stats());
}
