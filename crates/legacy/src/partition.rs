//! The semi-automated partitioner (§4): profiler phase changes seed the
//! boundaries, developer hints adjust them, and a boundary-sliding
//! refinement minimizes cross-segment bytes.
//!
//! Segments are *contiguous* runs of blocks (the program is a trace;
//! cutting it means choosing boundaries), which keeps the transformation
//! semantics-preserving by construction: module order equals program
//! order.

use crate::program::{BlockId, LegacyProgram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Developer hints ("developers can provide hints on where application
/// semantics transition in their code").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hint {
    /// Force a module boundary immediately before this block.
    SplitBefore(BlockId),
    /// Forbid a boundary immediately before this block (the two blocks
    /// belong to one semantic unit).
    KeepWithPrevious(BlockId),
}

/// Partitioner parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Upper bound on modules produced (cloud-management overhead cap).
    pub max_modules: usize,
    /// Minimum work units per module (avoid trivially small modules
    /// whose startup overhead dominates — the E6 lesson).
    pub min_module_work: u64,
    /// Boundary-sliding refinement passes.
    pub refine_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            max_modules: 8,
            min_module_work: 200,
            refine_passes: 4,
        }
    }
}

/// The result: contiguous segments, each a future UDC module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Segment index per block (non-decreasing, starting at 0).
    pub segment_of: Vec<usize>,
    /// Number of segments.
    pub segments: usize,
    /// Bytes crossing segment boundaries under this partition.
    pub cut_bytes: u64,
}

impl Partition {
    /// The block ranges of each segment.
    pub fn ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=self.segment_of.len() {
            if i == self.segment_of.len() || self.segment_of[i] != self.segment_of[start] {
                out.push((start, i - 1));
                start = i;
            }
        }
        out
    }
}

/// Partitions a program.
///
/// Steps:
/// 1. Seed boundaries wherever the profiled [`crate::ResourcePhase`]
///    changes between consecutive blocks.
/// 2. Apply hints: forced splits are added, forbidden ones removed
///    (hints outrank the profiler — the developer is in the loop).
/// 3. Merge segments below `min_module_work` into their
///    cheaper-boundary neighbour, and merge the pair with the smallest
///    crossing weight while more than `max_modules` segments remain.
/// 4. Refinement: repeatedly slide each boundary one block left/right
///    when that reduces `cut_bytes` (respecting hints and bounds) —
///    "cuts a program into segments to minimize the number of
///    cross-segment dependencies".
pub fn partition(program: &LegacyProgram, hints: &[Hint], config: PartitionConfig) -> Partition {
    let n = program.len();
    let max_modules = config.max_modules.max(1);

    // Boundary set: `b` in the set means a cut between block b-1 and b.
    let mut boundaries: BTreeSet<usize> = BTreeSet::new();
    for i in 1..n {
        if program.blocks[i].phase != program.blocks[i - 1].phase {
            boundaries.insert(i);
        }
    }
    let mut forced: BTreeSet<usize> = BTreeSet::new();
    let mut forbidden: BTreeSet<usize> = BTreeSet::new();
    for h in hints {
        match h {
            Hint::SplitBefore(b) if b.0 > 0 && b.0 < n => {
                forced.insert(b.0);
            }
            Hint::KeepWithPrevious(b) if b.0 > 0 && b.0 < n => {
                forbidden.insert(b.0);
            }
            _ => {}
        }
    }
    for &b in &forbidden {
        boundaries.remove(&b);
    }
    for &b in &forced {
        if !forbidden.contains(&b) {
            boundaries.insert(b);
        }
    }

    let crossing = |b: usize| -> u64 {
        // Bytes that would stop being cut if boundary `b` were removed
        // and its two segments merged: flows crossing position b whose
        // endpoints land in the adjacent segments. Approximated by all
        // flows crossing position b (exact for pipeline-shaped flows,
        // conservative otherwise).
        program
            .flows
            .iter()
            .filter(|f| f.from.0 < b && f.to.0 >= b)
            .map(|f| f.bytes)
            .sum()
    };

    // Merge under-sized segments into the neighbour with the cheaper
    // boundary.
    loop {
        let segs = segments_from(&boundaries, n);
        let mut merged = false;
        for (s, e) in ranges_of(&segs) {
            let work: u64 = program.blocks[s..=e].iter().map(|b| b.work).sum();
            if work >= config.min_module_work || boundaries.is_empty() {
                continue;
            }
            let left = if s > 0 && !forced.contains(&s) {
                Some(s)
            } else {
                None
            };
            let right = if e + 1 < n && !forced.contains(&(e + 1)) {
                Some(e + 1)
            } else {
                None
            };
            let choice = match (left, right) {
                (Some(l), Some(r)) => Some(if crossing(l) >= crossing(r) { l } else { r }),
                (Some(l), None) => Some(l),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            };
            if let Some(b) = choice {
                boundaries.remove(&b);
                merged = true;
                break;
            }
        }
        if !merged {
            break;
        }
    }

    // Respect the module cap: drop the cheapest removable boundary.
    while boundaries.len() + 1 > max_modules {
        let removable: Vec<usize> = boundaries
            .iter()
            .copied()
            .filter(|b| !forced.contains(b))
            .collect();
        let Some(&cheapest) = removable.iter().min_by_key(|&&b| crossing(b)) else {
            break; // All remaining boundaries are forced.
        };
        boundaries.remove(&cheapest);
    }

    // Boundary-sliding refinement.
    for _ in 0..config.refine_passes {
        let mut improved = false;
        let current: Vec<usize> = boundaries.iter().copied().collect();
        for b in current {
            if forced.contains(&b) {
                continue;
            }
            let base = program.cut_bytes(&segments_from(&boundaries, n));
            for candidate in [b.wrapping_sub(1), b + 1] {
                if candidate == 0
                    || candidate >= n
                    || boundaries.contains(&candidate)
                    || forbidden.contains(&candidate)
                {
                    continue;
                }
                boundaries.remove(&b);
                boundaries.insert(candidate);
                let cost = program.cut_bytes(&segments_from(&boundaries, n));
                if cost < base {
                    improved = true;
                    break;
                }
                boundaries.remove(&candidate);
                boundaries.insert(b);
            }
        }
        if !improved {
            break;
        }
    }

    let segment_of = segments_from(&boundaries, n);
    let segments = boundaries.len() + 1;
    let cut_bytes = program.cut_bytes(&segment_of);
    Partition {
        segment_of,
        segments,
        cut_bytes,
    }
}

fn segments_from(boundaries: &BTreeSet<usize>, n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut seg = 0;
    for i in 0..n {
        if boundaries.contains(&i) {
            seg += 1;
        }
        out.push(seg);
    }
    out
}

fn ranges_of(segment_of: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    for i in 1..=segment_of.len() {
        if i == segment_of.len() || segment_of[i] != segment_of[start] {
            out.push((start, i - 1));
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::etl_ml_monolith;

    #[test]
    fn phase_changes_seed_boundaries() {
        let p = etl_ml_monolith();
        let part = partition(
            &p,
            &[],
            PartitionConfig {
                min_module_work: 0,
                max_modules: 100,
                refine_passes: 0,
            },
        );
        // Phases: io | cpu cpu | mem mem | cpu | gpu gpu gpu | cpu cpu | io
        // = 7 phase runs.
        assert_eq!(part.segments, 7);
    }

    #[test]
    fn segments_are_contiguous_and_ordered() {
        let p = etl_ml_monolith();
        let part = partition(&p, &[], PartitionConfig::default());
        for w in part.segment_of.windows(2) {
            assert!(
                w[1] == w[0] || w[1] == w[0] + 1,
                "contiguous non-decreasing"
            );
        }
        assert_eq!(*part.segment_of.first().unwrap(), 0);
        assert_eq!(*part.segment_of.last().unwrap() + 1, part.segments);
    }

    #[test]
    fn min_work_merges_small_segments() {
        let p = etl_ml_monolith();
        let part = partition(
            &p,
            &[],
            PartitionConfig {
                min_module_work: 500,
                max_modules: 100,
                refine_passes: 0,
            },
        );
        for (s, e) in part.ranges() {
            let work: u64 = p.blocks[s..=e].iter().map(|b| b.work).sum();
            assert!(
                work >= 500 || part.segments == 1,
                "segment {s}..={e} has work {work}"
            );
        }
    }

    #[test]
    fn max_modules_respected() {
        let p = etl_ml_monolith();
        let part = partition(
            &p,
            &[],
            PartitionConfig {
                max_modules: 3,
                min_module_work: 0,
                refine_passes: 2,
            },
        );
        assert!(part.segments <= 3);
    }

    #[test]
    fn forced_split_honoured() {
        let p = etl_ml_monolith();
        // Force a split inside the GPU run (between embed and train).
        let part = partition(
            &p,
            &[Hint::SplitBefore(BlockId(7))],
            PartitionConfig {
                max_modules: 100,
                min_module_work: 0,
                refine_passes: 0,
            },
        );
        assert_ne!(part.segment_of[6], part.segment_of[7], "hint split applied");
    }

    #[test]
    fn forbidden_split_honoured() {
        let p = etl_ml_monolith();
        // The profiler would cut before block 6 (cpu -> gpu); the
        // developer says featurize+embed are one semantic unit.
        let part = partition(
            &p,
            &[Hint::KeepWithPrevious(BlockId(6))],
            PartitionConfig {
                max_modules: 100,
                min_module_work: 0,
                refine_passes: 0,
            },
        );
        assert_eq!(part.segment_of[5], part.segment_of[6], "hint merge applied");
    }

    #[test]
    fn refinement_never_increases_cut() {
        let p = etl_ml_monolith();
        let unrefined = partition(
            &p,
            &[],
            PartitionConfig {
                refine_passes: 0,
                ..Default::default()
            },
        );
        let refined = partition(
            &p,
            &[],
            PartitionConfig {
                refine_passes: 8,
                ..Default::default()
            },
        );
        assert!(refined.cut_bytes <= unrefined.cut_bytes);
    }

    #[test]
    fn partition_beats_naive_uniform_cut() {
        // The objective is real: the phase+refine partition cuts fewer
        // bytes than chopping into equal thirds.
        let p = etl_ml_monolith();
        let smart = partition(
            &p,
            &[],
            PartitionConfig {
                max_modules: 3,
                min_module_work: 0,
                refine_passes: 8,
            },
        );
        let uniform: Vec<usize> = (0..p.len()).map(|i| i * 3 / p.len()).collect();
        assert!(
            smart.cut_bytes <= p.cut_bytes(&uniform),
            "{} vs {}",
            smart.cut_bytes,
            p.cut_bytes(&uniform)
        );
    }
}
