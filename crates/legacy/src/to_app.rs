//! Emitting a UDC application from a partitioned legacy program: the
//! last step of §4's semi-automated transformation.

use crate::partition::Partition;
use crate::program::{LegacyProgram, ResourcePhase};
use udc_spec::{AppSpec, EdgeKind, ResourceAspect, ResourceKind, SpecResult, TaskSpec};

/// Converts a partition into an [`AppSpec`]:
///
/// - each segment becomes a task module named `m<i>_<dominant label>`;
/// - the resource aspect is inferred from the segment's dominant
///   profiled phase (GPU-able → GPU candidate + demand, memory-bound →
///   DRAM demand from the peak working set, I/O-bound → cheapest goal);
/// - dependency edges follow the residual cross-segment flows;
/// - segments connected by heavy residual flows (>= `colocate_threshold`
///   bytes) get colocate hints, preserving the monolith's locality where
///   the cut could not remove it.
pub fn to_app_spec(
    program: &LegacyProgram,
    partition: &Partition,
    name: &str,
    colocate_threshold: u64,
) -> SpecResult<AppSpec> {
    let mut app = AppSpec::new(name);
    let ranges = partition.ranges();

    let mut names = Vec::with_capacity(ranges.len());
    for (i, (s, e)) in ranges.iter().enumerate() {
        let blocks = &program.blocks[*s..=*e];
        // Dominant phase by work.
        let mut by_phase: Vec<(ResourcePhase, u64)> = Vec::new();
        for b in blocks {
            match by_phase.iter_mut().find(|(p, _)| *p == b.phase) {
                Some((_, w)) => *w += b.work,
                None => by_phase.push((b.phase, b.work)),
            }
        }
        let (phase, _) = *by_phase
            .iter()
            .max_by_key(|(_, w)| *w)
            .expect("segments are non-empty");
        let work: u64 = blocks.iter().map(|b| b.work).sum();
        let peak_ws = blocks.iter().map(|b| b.working_set_mib).max().unwrap_or(1);
        let head = blocks
            .first()
            .map(|b| b.label.replace('_', "-"))
            .unwrap_or_default();
        let module_name = format!("m{i}-{head}");
        names.push(module_name.clone());

        let resource = match phase {
            ResourcePhase::GpuAble => ResourceAspect::default()
                .with_demand(ResourceKind::Gpu, 1)
                .with_candidate(ResourceKind::Gpu)
                .with_candidate(ResourceKind::Cpu),
            ResourcePhase::MemoryBound => ResourceAspect::default()
                .with_demand(ResourceKind::Cpu, 2)
                .with_demand(ResourceKind::Dram, peak_ws),
            ResourcePhase::CpuBound => {
                // Size CPUs to the work: 1 core per 500 work units,
                // capped at 8 (the dry-run calibration of §3.2).
                ResourceAspect::default().with_demand(ResourceKind::Cpu, (work / 500).clamp(1, 8))
            }
            ResourcePhase::IoBound => ResourceAspect::goal(udc_spec::Goal::Cheapest),
        };
        app.add_task(
            TaskSpec::new(&module_name)
                .describe(format!("blocks {s}..={e}"))
                .with_resource(resource)
                .with_work(work.max(1))
                .with_bytes(peak_ws << 20),
        );
    }

    // Residual flows → edges + colocate hints.
    let mut edge_bytes: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
    for f in &program.flows {
        let (a, b) = (partition.segment_of[f.from.0], partition.segment_of[f.to.0]);
        if a != b {
            *edge_bytes.entry((a, b)).or_insert(0) += f.bytes;
        }
    }
    for (&(a, b), &bytes) in &edge_bytes {
        app.add_edge(&names[a], &names[b], EdgeKind::Dependency)?;
        if bytes >= colocate_threshold {
            app.colocate(&names[a], &names[b])?;
        }
    }
    app.validate()?;
    Ok(app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionConfig};
    use crate::program::etl_ml_monolith;

    fn build() -> (LegacyProgram, Partition, AppSpec) {
        let p = etl_ml_monolith();
        let part = partition(&p, &[], PartitionConfig::default());
        let app = to_app_spec(&p, &part, "etl-ml", 2 << 30).expect("valid app");
        (p, part, app)
    }

    #[test]
    fn emits_one_task_per_segment() {
        let (_, part, app) = build();
        assert_eq!(app.tasks().count(), part.segments);
        app.validate().unwrap();
    }

    #[test]
    fn gpu_segment_gets_gpu_aspect() {
        let (_, _, app) = build();
        let gpu_module = app
            .iter_modules()
            .find(|m| m.resource.demand.get(ResourceKind::Gpu) > 0)
            .expect("the train/embed segment demands a GPU");
        assert!(gpu_module.work_units.unwrap() >= 9_000, "the heavy GPU run");
    }

    #[test]
    fn memory_segment_sized_from_working_set() {
        let (_, _, app) = build();
        let mem_module = app
            .iter_modules()
            .find(|m| m.resource.demand.get(ResourceKind::Dram) >= 16 * 1024)
            .expect("the join segment carries its 16 GiB working set");
        assert!(mem_module.resource.demand.get(ResourceKind::Cpu) > 0);
    }

    #[test]
    fn edges_follow_program_order() {
        let (_, _, app) = build();
        let order = app.topo_order().unwrap();
        // Module names are m0-, m1-, ...; topological order must respect
        // the numeric prefix (segments are program-ordered).
        let positions: Vec<usize> = order
            .iter()
            .map(|id| {
                id.as_str()[1..]
                    .split('-')
                    .next()
                    .unwrap()
                    .parse::<usize>()
                    .unwrap()
            })
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn heavy_residual_flows_become_colocate_hints() {
        let (_, _, app) = build();
        assert!(
            !app.hints.is_empty(),
            "multi-GiB residual flows must produce colocation hints"
        );
    }

    #[test]
    fn single_segment_produces_single_module() {
        let p = etl_ml_monolith();
        let part = partition(
            &p,
            &[],
            PartitionConfig {
                max_modules: 1,
                min_module_work: 0,
                refine_passes: 0,
            },
        );
        let app = to_app_spec(&p, &part, "mono", u64::MAX).unwrap();
        assert_eq!(app.len(), 1);
        assert!(app.edges.is_empty());
    }
}
