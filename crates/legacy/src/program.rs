//! The analyzed form of a legacy program: what static analysis plus a
//! profiling run produce (§4).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Index of a basic block / statement region in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub usize);

/// The resource-usage phase a profiler observed for a block
/// ("a profiling run could capture where resource usage patterns change
/// in the code").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ResourcePhase {
    /// CPU-bound computation.
    CpuBound,
    /// Accelerable kernels (dense linear algebra, inference).
    GpuAble,
    /// Memory-intensive (large working set).
    MemoryBound,
    /// Storage/network I/O dominated.
    IoBound,
}

/// One profiled block of the legacy program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block id (program order).
    pub id: BlockId,
    /// Human-readable label (function/region name).
    pub label: String,
    /// Profiled resource phase.
    pub phase: ResourcePhase,
    /// Profiled work in abstract units.
    pub work: u64,
    /// Peak working set in MiB.
    pub working_set_mib: u64,
}

/// A weighted dataflow dependency between blocks ("our static analysis
/// can infer dependencies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Producing block.
    pub from: BlockId,
    /// Consuming block (always later in program order: the analysis is
    /// over a run trace, so flows respect execution order).
    pub to: BlockId,
    /// Bytes crossing the dependency.
    pub bytes: u64,
}

/// The whole analyzed program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegacyProgram {
    /// Blocks in program order.
    pub blocks: Vec<Block>,
    /// Dataflow edges (forward-only).
    pub flows: Vec<Flow>,
}

impl LegacyProgram {
    /// Creates a program, validating block ordering and flow direction.
    ///
    /// Returns `None` when blocks are not densely numbered in order or
    /// any flow goes backwards / out of range / self-loops.
    pub fn new(blocks: Vec<Block>, flows: Vec<Flow>) -> Option<Self> {
        if blocks.is_empty() {
            return None;
        }
        for (i, b) in blocks.iter().enumerate() {
            if b.id.0 != i {
                return None;
            }
        }
        let n = blocks.len();
        for f in &flows {
            if f.from.0 >= n || f.to.0 >= n || f.from.0 >= f.to.0 {
                return None;
            }
        }
        Some(Self { blocks, flows })
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the program has no blocks (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total bytes crossing a given assignment of blocks to segments:
    /// the objective the partitioner minimizes.
    pub fn cut_bytes(&self, segment_of: &[usize]) -> u64 {
        self.flows
            .iter()
            .filter(|f| segment_of[f.from.0] != segment_of[f.to.0])
            .map(|f| f.bytes)
            .sum()
    }

    /// Distinct phases present.
    pub fn phases(&self) -> BTreeSet<ResourcePhase> {
        self.blocks.iter().map(|b| b.phase).collect()
    }
}

/// A synthetic-but-realistic ETL + ML monolith used by tests and the E16
/// experiment: ingest (I/O) → parse (CPU) → feature build (memory) →
/// train/infer (GPU-able) → postprocess (CPU) → write-out (I/O).
pub fn etl_ml_monolith() -> LegacyProgram {
    let spec: [(&str, ResourcePhase, u64, u64); 12] = [
        ("read_input", ResourcePhase::IoBound, 50, 256),
        ("decompress", ResourcePhase::CpuBound, 200, 512),
        ("parse_records", ResourcePhase::CpuBound, 400, 1024),
        ("dedupe", ResourcePhase::MemoryBound, 300, 8192),
        ("join_dims", ResourcePhase::MemoryBound, 500, 16384),
        ("featurize", ResourcePhase::CpuBound, 600, 2048),
        ("embed", ResourcePhase::GpuAble, 4000, 4096),
        ("train_epoch", ResourcePhase::GpuAble, 9000, 8192),
        ("evaluate", ResourcePhase::GpuAble, 1500, 4096),
        ("calibrate", ResourcePhase::CpuBound, 300, 1024),
        ("report", ResourcePhase::CpuBound, 100, 256),
        ("write_output", ResourcePhase::IoBound, 80, 512),
    ];
    let blocks: Vec<Block> = spec
        .iter()
        .enumerate()
        .map(|(i, (label, phase, work, ws))| Block {
            id: BlockId(i),
            label: (*label).to_string(),
            phase: *phase,
            work: *work,
            working_set_mib: *ws,
        })
        .collect();
    // Mostly pipeline flows (heavy between adjacent stages), plus a few
    // long-range ones (config read by many, model reused at evaluate).
    let mut flows = vec![
        Flow {
            from: BlockId(0),
            to: BlockId(1),
            bytes: 2 << 30,
        },
        Flow {
            from: BlockId(1),
            to: BlockId(2),
            bytes: 4 << 30,
        },
        Flow {
            from: BlockId(2),
            to: BlockId(3),
            bytes: 3 << 30,
        },
        Flow {
            from: BlockId(3),
            to: BlockId(4),
            bytes: 3 << 30,
        },
        Flow {
            from: BlockId(4),
            to: BlockId(5),
            bytes: 2 << 30,
        },
        Flow {
            from: BlockId(5),
            to: BlockId(6),
            bytes: 1 << 30,
        },
        Flow {
            from: BlockId(6),
            to: BlockId(7),
            bytes: 2 << 30,
        },
        Flow {
            from: BlockId(7),
            to: BlockId(8),
            bytes: 1 << 30,
        },
        Flow {
            from: BlockId(8),
            to: BlockId(9),
            bytes: 64 << 20,
        },
        Flow {
            from: BlockId(9),
            to: BlockId(10),
            bytes: 16 << 20,
        },
        Flow {
            from: BlockId(10),
            to: BlockId(11),
            bytes: 64 << 20,
        },
    ];
    flows.push(Flow {
        from: BlockId(0),
        to: BlockId(10),
        bytes: 1 << 20,
    }); // Config.
    flows.push(Flow {
        from: BlockId(7),
        to: BlockId(9),
        bytes: 256 << 20,
    }); // Model.
    LegacyProgram::new(blocks, flows).expect("well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolith_well_formed() {
        let p = etl_ml_monolith();
        assert_eq!(p.len(), 12);
        assert_eq!(p.phases().len(), 4);
    }

    #[test]
    fn rejects_misordered_blocks() {
        let blocks = vec![Block {
            id: BlockId(5),
            label: "x".into(),
            phase: ResourcePhase::CpuBound,
            work: 1,
            working_set_mib: 1,
        }];
        assert!(LegacyProgram::new(blocks, vec![]).is_none());
    }

    #[test]
    fn rejects_backward_flows() {
        let blocks: Vec<Block> = (0..2)
            .map(|i| Block {
                id: BlockId(i),
                label: format!("b{i}"),
                phase: ResourcePhase::CpuBound,
                work: 1,
                working_set_mib: 1,
            })
            .collect();
        let backward = vec![Flow {
            from: BlockId(1),
            to: BlockId(0),
            bytes: 1,
        }];
        assert!(LegacyProgram::new(blocks.clone(), backward).is_none());
        let self_loop = vec![Flow {
            from: BlockId(0),
            to: BlockId(0),
            bytes: 1,
        }];
        assert!(LegacyProgram::new(blocks, self_loop).is_none());
    }

    #[test]
    fn cut_bytes_counts_cross_segment_only() {
        let p = etl_ml_monolith();
        // All in one segment: zero cut.
        assert_eq!(p.cut_bytes(&vec![0; p.len()]), 0);
        // Every block its own segment: every flow is cut.
        let all_cut: Vec<usize> = (0..p.len()).collect();
        let total: u64 = p.flows.iter().map(|f| f.bytes).sum();
        assert_eq!(p.cut_bytes(&all_cut), total);
    }
}
