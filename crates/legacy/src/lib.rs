//! # udc-legacy — migrating legacy software to UDC (§4)
//!
//! "Most legacy cloud applications can run as is on UDC. However,
//! without splitting these programs into smaller modules, their
//! executions would not benefit from the fine-grained treatments UDC
//! enables at each layer, leading to suboptimal performance and/or
//! resource utilization. An interesting idea is to transform them into
//! programs under our model. We could potentially develop static program
//! analysis that performs semi-automated transformation of an existing
//! program by involving developers in the loop and with the help of a
//! run-time profiler. For example, our static analysis can infer
//! dependencies and cuts a program into segments to minimize the number
//! of cross-segment dependencies, while developers can provide hints on
//! where application semantics transition in their code and a profiling
//! run could capture where resource usage patterns change in the code."
//!
//! This crate implements exactly that pipeline:
//!
//! 1. [`program::LegacyProgram`] — the analyzed representation of a
//!    monolith: basic blocks with profiled resource phases and weighted
//!    dataflow edges (what a profiler + static analysis produce);
//! 2. [`partition::partition`] — the semi-automated cutter: seeds
//!    module boundaries at profiled *phase changes*, honours developer
//!    [`partition::Hint`]s, then runs a Kernighan–Lin-style refinement
//!    that minimizes cross-segment dependency weight;
//! 3. [`to_app::to_app_spec`] — emits a UDC [`udc_spec::AppSpec`] with
//!    aspects inferred from the profiles (GPU-able phases get GPU
//!    candidates, I/O phases get storage demand) and locality hints
//!    derived from the residual cut edges.

pub mod partition;
pub mod program;
pub mod to_app;

pub use partition::{partition, Hint, Partition, PartitionConfig};
pub use program::{
    etl_ml_monolith as etl_ml_monolith_program, Block, BlockId, LegacyProgram, ResourcePhase,
};
pub use to_app::to_app_spec;
