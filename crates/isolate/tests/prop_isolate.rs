//! Property tests for environment selection (§3.3): the mapping from
//! declarative aspects to concrete plans is total, honours the paper's
//! taxonomy, and never weakens an explicit user requirement.

use proptest::prelude::*;
use udc_isolate::{defends, select_env, AttackVector, EnvKind};
use udc_spec::{ExecEnvAspect, IsolationLevel, ResourceKind, Tenancy};

fn arb_aspect() -> impl Strategy<Value = ExecEnvAspect> {
    (
        prop_oneof![
            Just(None),
            Just(Some(IsolationLevel::Weak)),
            Just(Some(IsolationLevel::Medium)),
            Just(Some(IsolationLevel::Strong)),
            Just(Some(IsolationLevel::Strongest)),
        ],
        prop_oneof![
            Just(None),
            Just(Some(Tenancy::Shared)),
            Just(Some(Tenancy::SingleTenant))
        ],
        any::<bool>(),
    )
        .prop_map(|(isolation, tenancy, tee)| {
            ExecEnvAspect {
                isolation,
                // Keep the aspect coherent (validation would reject
                // strongest + shared).
                tenancy: if isolation == Some(IsolationLevel::Strongest) {
                    Some(Tenancy::SingleTenant)
                } else {
                    tenancy
                },
                tee_if_cpu: tee,
                ..Default::default()
            }
        })
}

fn arb_kind() -> impl Strategy<Value = ResourceKind> {
    prop::sample::select(ResourceKind::ALL.to_vec())
}

proptest! {
    /// Selection is total: every coherent aspect on every hardware kind
    /// yields a plan.
    #[test]
    fn selection_total(aspect in arb_aspect(), kind in arb_kind()) {
        let plan = select_env(&aspect, kind);
        prop_assert!(plan.is_ok());
    }

    /// The paper's taxonomy: strongest/strong are user-verifiable,
    /// medium/weak are not; strongest is always single-tenant; TEEs only
    /// appear on CPUs.
    #[test]
    fn taxonomy_invariants(aspect in arb_aspect(), kind in arb_kind()) {
        let plan = select_env(&aspect, kind).unwrap();
        match aspect.isolation.unwrap_or(IsolationLevel::Weak) {
            IsolationLevel::Strongest => {
                prop_assert!(plan.single_tenant);
                prop_assert!(plan.user_verifiable);
            }
            IsolationLevel::Strong => prop_assert!(plan.user_verifiable),
            IsolationLevel::Medium | IsolationLevel::Weak => {
                // tee_if_cpu can upgrade verifiability on CPUs; otherwise
                // the user must trust the provider.
                if !(aspect.tee_if_cpu && kind == ResourceKind::Cpu) {
                    prop_assert!(!plan.user_verifiable);
                }
            }
        }
        if plan.kind == EnvKind::TeeEnclave {
            prop_assert_eq!(kind, ResourceKind::Cpu, "TEEs only work with CPUs (§3.3)");
        }
        // An explicit single-tenant demand is never dropped.
        if aspect.tenancy == Some(Tenancy::SingleTenant) {
            prop_assert!(plan.single_tenant);
        }
    }

    /// Defense sets are monotone in the plan: the strongest realization
    /// (TEE + single-tenant) covers every other plan's defenses.
    #[test]
    fn strongest_defends_superset(aspect in arb_aspect(), kind in arb_kind()) {
        let plan = select_env(&aspect, kind).unwrap();
        let this = defends(plan.kind, plan.single_tenant);
        let strongest = defends(EnvKind::TeeEnclave, true);
        prop_assert!(strongest.is_superset(&this));
    }

    /// Single-tenant placement always adds hardware-side-channel defense.
    #[test]
    fn single_tenant_defends_side_channels(kind in prop::sample::select(EnvKind::ALL.to_vec())) {
        let with = defends(kind, true);
        prop_assert!(with.contains(&AttackVector::HardwareSideChannel));
        let without = defends(kind, false);
        prop_assert!(!without.contains(&AttackVector::HardwareSideChannel));
    }
}
