//! Realizing a declarative exec-env aspect as a concrete environment
//! plan (Design Principle 2: specification is the user's, realization is
//! the provider's).
//!
//! Encodes §3.3's selection taxonomy and its hardware constraint: "One
//! new challenge is the goal of allowing users to freely combine
//! security/execution features with other aspects such as the resource
//! aspect. For example, today's TEEs only work with CPUs, but with UDC,
//! TEEs need to work with other hardware like GPUs and FPGAs. ...
//! Another possibility is to create physically-isolated (disaggregated)
//! device clusters that can only be occupied by one tenant at a time."

use crate::env::EnvKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use udc_spec::{ExecEnvAspect, IsolationLevel, ResourceKind, Tenancy};

/// The provider's concrete realization of an exec-env aspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvironmentPlan {
    /// Which environment class to launch.
    pub kind: EnvKind,
    /// Whether the hosting device must be reserved single-tenant.
    pub single_tenant: bool,
    /// Whether the environment is user-verifiable via attestation
    /// (§3.3: strongest and strong "can enable verification by the
    /// user"; medium and weak "require trust in the provider").
    pub user_verifiable: bool,
}

/// Selection failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectError {
    /// The isolation level cannot be realized on the requested hardware
    /// kind at all (should not occur with the current rules; kept for
    /// forward compatibility with devices that cannot be isolated).
    Unrealizable {
        /// The requested level.
        level: IsolationLevel,
        /// The hardware kind.
        on: ResourceKind,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::Unrealizable { level, on } => {
                write!(f, "isolation `{}` unrealizable on {on}", level.name())
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Chooses an environment for a module given its exec-env aspect and the
/// hardware kind it was placed on.
///
/// Rules (from §3.3):
/// - `Strongest` = TEE **and** single-tenant. On CPUs: enclave +
///   exclusive device. On accelerators (no TEE exists): a
///   physically-isolated single-tenant device running a lightweight VM
///   monitor — the paper's "physically-isolated device clusters" option.
/// - `Strong` = TEE **or** single-tenant. On CPUs: enclave (shared
///   device OK). The `tee_if_cpu` refinement from Table 1 forces the
///   enclave choice on CPUs. On accelerators: single-tenant.
/// - `Medium` = provider's choice among unikernel / lightweight VM /
///   sandboxed container; we pick the cheapest cold-start (unikernel)
///   for compute and a lightweight VM for I/O-heavy kinds.
/// - `Weak` (or unspecified) = container.
/// - An explicit `tenancy = single_tenant` upgrades any plan to an
///   exclusive device.
pub fn select_env(
    aspect: &ExecEnvAspect,
    on: ResourceKind,
) -> Result<EnvironmentPlan, SelectError> {
    let level = aspect.isolation.unwrap_or(IsolationLevel::Weak);
    let tee_possible = on == ResourceKind::Cpu;
    let forced_single = aspect.tenancy == Some(Tenancy::SingleTenant);

    let mut plan = match level {
        IsolationLevel::Strongest => {
            if tee_possible {
                EnvironmentPlan {
                    kind: EnvKind::TeeEnclave,
                    single_tenant: true,
                    user_verifiable: true,
                }
            } else {
                // No TEE on accelerators: physically-isolated device.
                EnvironmentPlan {
                    kind: EnvKind::LightweightVm,
                    single_tenant: true,
                    user_verifiable: true,
                }
            }
        }
        IsolationLevel::Strong => {
            if tee_possible && (aspect.tee_if_cpu || !forced_single) {
                EnvironmentPlan {
                    kind: EnvKind::TeeEnclave,
                    single_tenant: forced_single,
                    user_verifiable: true,
                }
            } else {
                EnvironmentPlan {
                    kind: EnvKind::LightweightVm,
                    single_tenant: true,
                    user_verifiable: true,
                }
            }
        }
        IsolationLevel::Medium => {
            let kind = if on.is_compute() {
                EnvKind::Unikernel
            } else {
                EnvKind::LightweightVm
            };
            EnvironmentPlan {
                kind,
                single_tenant: false,
                user_verifiable: false,
            }
        }
        IsolationLevel::Weak => EnvironmentPlan {
            kind: EnvKind::Container,
            single_tenant: false,
            user_verifiable: false,
        },
    };

    if aspect.tee_if_cpu && tee_possible {
        plan.kind = EnvKind::TeeEnclave;
        plan.user_verifiable = true;
    }
    if forced_single {
        plan.single_tenant = true;
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspect(level: IsolationLevel) -> ExecEnvAspect {
        ExecEnvAspect::isolation(level)
    }

    #[test]
    fn strongest_on_cpu_is_tee_single_tenant() {
        let p = select_env(&aspect(IsolationLevel::Strongest), ResourceKind::Cpu).unwrap();
        assert_eq!(p.kind, EnvKind::TeeEnclave);
        assert!(p.single_tenant);
        assert!(p.user_verifiable);
    }

    #[test]
    fn strongest_on_gpu_is_physically_isolated() {
        let p = select_env(&aspect(IsolationLevel::Strongest), ResourceKind::Gpu).unwrap();
        assert_ne!(p.kind, EnvKind::TeeEnclave, "no TEE on GPUs (§3.3)");
        assert!(p.single_tenant, "accelerator security = exclusive device");
        assert!(p.user_verifiable);
    }

    #[test]
    fn strong_on_cpu_prefers_tee_shared() {
        let p = select_env(&aspect(IsolationLevel::Strong), ResourceKind::Cpu).unwrap();
        assert_eq!(p.kind, EnvKind::TeeEnclave);
        assert!(!p.single_tenant, "strong = TEE *or* single-tenant");
    }

    #[test]
    fn strong_on_fpga_is_single_tenant() {
        let p = select_env(&aspect(IsolationLevel::Strong), ResourceKind::Fpga).unwrap();
        assert!(p.single_tenant);
        assert!(p.user_verifiable);
    }

    #[test]
    fn medium_is_provider_choice_not_verifiable() {
        let p = select_env(&aspect(IsolationLevel::Medium), ResourceKind::Cpu).unwrap();
        assert!(matches!(
            p.kind,
            EnvKind::Unikernel | EnvKind::LightweightVm | EnvKind::SandboxedContainer
        ));
        assert!(!p.user_verifiable, "medium requires trusting the provider");
    }

    #[test]
    fn weak_is_container() {
        let p = select_env(&aspect(IsolationLevel::Weak), ResourceKind::Cpu).unwrap();
        assert_eq!(p.kind, EnvKind::Container);
        assert!(!p.single_tenant);
    }

    #[test]
    fn unspecified_falls_back_to_weak() {
        let p = select_env(&ExecEnvAspect::default(), ResourceKind::Cpu).unwrap();
        assert_eq!(p.kind, EnvKind::Container);
    }

    #[test]
    fn tee_if_cpu_forces_enclave_on_cpu_only() {
        let a = ExecEnvAspect::isolation(IsolationLevel::Strong).with_tee_if_cpu();
        let on_cpu = select_env(&a, ResourceKind::Cpu).unwrap();
        assert_eq!(on_cpu.kind, EnvKind::TeeEnclave);
        let on_gpu = select_env(&a, ResourceKind::Gpu).unwrap();
        assert_ne!(on_gpu.kind, EnvKind::TeeEnclave);
    }

    #[test]
    fn explicit_single_tenant_upgrades_plan() {
        let a = ExecEnvAspect::isolation(IsolationLevel::Weak).with_tenancy(Tenancy::SingleTenant);
        let p = select_env(&a, ResourceKind::Cpu).unwrap();
        assert!(p.single_tenant);
        assert_eq!(p.kind, EnvKind::Container);
    }

    #[test]
    fn table1_a1_fastest_with_tee_if_cpu() {
        // Table 1, A1: "Single-tenant (or SGX enclave if CPU)".
        let a = ExecEnvAspect::isolation(IsolationLevel::Strong)
            .with_tee_if_cpu()
            .with_tenancy(Tenancy::SingleTenant);
        let p = select_env(&a, ResourceKind::Cpu).unwrap();
        assert_eq!(p.kind, EnvKind::TeeEnclave);
        assert!(p.single_tenant);
    }
}
