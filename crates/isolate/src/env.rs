//! Environment classes, their cost models, and their threat models.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The execution-environment classes named in §3.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EnvKind {
    /// Plain container (weak isolation).
    Container,
    /// Sandboxed container, gVisor-like (medium).
    SandboxedContainer,
    /// Unikernel / library OS (medium).
    Unikernel,
    /// Lightweight VM, Firecracker-like (medium).
    LightweightVm,
    /// Full virtual machine.
    FullVm,
    /// Trusted execution environment (SGX-enclave-like). CPU only.
    TeeEnclave,
}

impl EnvKind {
    /// All kinds, cheapest-to-start first.
    pub const ALL: [EnvKind; 6] = [
        EnvKind::Unikernel,
        EnvKind::Container,
        EnvKind::LightweightVm,
        EnvKind::SandboxedContainer,
        EnvKind::TeeEnclave,
        EnvKind::FullVm,
    ];

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Container => "container",
            EnvKind::SandboxedContainer => "sandboxed_container",
            EnvKind::Unikernel => "unikernel",
            EnvKind::LightweightVm => "lightweight_vm",
            EnvKind::FullVm => "full_vm",
            EnvKind::TeeEnclave => "tee_enclave",
        }
    }

    /// The cost model of this class.
    ///
    /// Calibrated to the relative magnitudes of 2021 systems: unikernels
    /// boot in tens of milliseconds [Madhavapeddy et al.], Firecracker in
    /// ~125 ms [Agache et al.], gVisor adds syscall-interception
    /// overhead [gVisor docs], SGX enclave creation is slow and EPC
    /// paging costs runtime [Brasser et al.]. Absolute values are
    /// simulation constants; experiments compare shapes.
    pub fn cost_model(self) -> CostModel {
        match self {
            EnvKind::Container => CostModel {
                cold_start_us: 120_000,
                warm_start_us: 5_000,
                runtime_overhead: 1.02,
                teardown_us: 10_000,
            },
            EnvKind::SandboxedContainer => CostModel {
                cold_start_us: 400_000,
                warm_start_us: 15_000,
                runtime_overhead: 1.15,
                teardown_us: 20_000,
            },
            EnvKind::Unikernel => CostModel {
                cold_start_us: 30_000,
                warm_start_us: 4_000,
                runtime_overhead: 1.01,
                teardown_us: 2_000,
            },
            EnvKind::LightweightVm => CostModel {
                cold_start_us: 150_000,
                warm_start_us: 10_000,
                runtime_overhead: 1.05,
                teardown_us: 15_000,
            },
            EnvKind::FullVm => CostModel {
                cold_start_us: 8_000_000,
                warm_start_us: 500_000,
                runtime_overhead: 1.08,
                teardown_us: 300_000,
            },
            EnvKind::TeeEnclave => CostModel {
                cold_start_us: 900_000,
                warm_start_us: 200_000,
                runtime_overhead: 1.25,
                teardown_us: 50_000,
            },
        }
    }

    /// Whether this environment is a TEE.
    pub fn is_tee(self) -> bool {
        self == EnvKind::TeeEnclave
    }

    /// Attack vectors this environment defends against *by itself*
    /// (single-tenant placement adds [`AttackVector::HardwareSideChannel`]
    /// defense on top — see [`defends`]).
    pub fn intrinsic_defenses(self) -> BTreeSet<AttackVector> {
        let mut s = BTreeSet::new();
        match self {
            EnvKind::Container => {
                s.insert(AttackVector::CoTenantProcess);
            }
            EnvKind::SandboxedContainer
            | EnvKind::Unikernel
            | EnvKind::LightweightVm
            | EnvKind::FullVm => {
                s.insert(AttackVector::CoTenantProcess);
                s.insert(AttackVector::CoTenantKernel);
            }
            EnvKind::TeeEnclave => {
                s.insert(AttackVector::CoTenantProcess);
                s.insert(AttackVector::CoTenantKernel);
                // TEEs "provide protection against system software and
                // physical attacks" (§3.3).
                s.insert(AttackVector::SystemSoftware);
                s.insert(AttackVector::Physical);
            }
        }
        s
    }
}

impl fmt::Display for EnvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Attack vectors in the paper's threat discussion (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AttackVector {
    /// Another tenant's process on the same OS.
    CoTenantProcess,
    /// Another tenant exploiting the shared host kernel.
    CoTenantKernel,
    /// A malicious or compromised provider software stack
    /// (hypervisor/OS).
    SystemSoftware,
    /// Physical access to the machine (bus snooping, cold boot).
    Physical,
    /// Hardware-based side channels (cache attacks, §3.3's cites
    /// \[8, 21, 28, 29, 41\]).
    HardwareSideChannel,
}

/// Startup/runtime cost model of an environment class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cold-start latency in microseconds.
    pub cold_start_us: u64,
    /// Start latency when taken from a warm pool.
    pub warm_start_us: u64,
    /// Multiplier on module execution time (>= 1.0).
    pub runtime_overhead: f64,
    /// Teardown latency.
    pub teardown_us: u64,
}

/// The full defense set of an environment given its tenancy placement.
///
/// "Single-tenant execution (where the entire hardware is dedicated to
/// one tenant) protects against hardware-based side-channel attacks."
pub fn defends(kind: EnvKind, single_tenant: bool) -> BTreeSet<AttackVector> {
    let mut s = kind.intrinsic_defenses();
    if single_tenant {
        s.insert(AttackVector::HardwareSideChannel);
        // With no co-tenant on the hardware at all, co-tenant vectors
        // are moot as well.
        s.insert(AttackVector::CoTenantProcess);
        s.insert(AttackVector::CoTenantKernel);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikernel_fastest_cold_start() {
        let uni = EnvKind::Unikernel.cost_model().cold_start_us;
        for k in EnvKind::ALL {
            assert!(k.cost_model().cold_start_us >= uni, "{k}");
        }
    }

    #[test]
    fn full_vm_slowest_cold_start() {
        let vm = EnvKind::FullVm.cost_model().cold_start_us;
        for k in EnvKind::ALL {
            assert!(k.cost_model().cold_start_us <= vm, "{k}");
        }
    }

    #[test]
    fn warm_always_faster_than_cold() {
        for k in EnvKind::ALL {
            let m = k.cost_model();
            assert!(m.warm_start_us < m.cold_start_us, "{k}");
        }
    }

    #[test]
    fn overhead_at_least_one() {
        for k in EnvKind::ALL {
            assert!(k.cost_model().runtime_overhead >= 1.0, "{k}");
        }
    }

    #[test]
    fn tee_defends_system_software_and_physical() {
        let d = EnvKind::TeeEnclave.intrinsic_defenses();
        assert!(d.contains(&AttackVector::SystemSoftware));
        assert!(d.contains(&AttackVector::Physical));
        assert!(!d.contains(&AttackVector::HardwareSideChannel));
    }

    #[test]
    fn container_defends_least() {
        let c = EnvKind::Container.intrinsic_defenses();
        assert_eq!(c.len(), 1);
        for k in EnvKind::ALL {
            assert!(k.intrinsic_defenses().is_superset(&c), "{k}");
        }
    }

    #[test]
    fn single_tenant_adds_side_channel_defense() {
        let without = defends(EnvKind::TeeEnclave, false);
        let with = defends(EnvKind::TeeEnclave, true);
        assert!(!without.contains(&AttackVector::HardwareSideChannel));
        assert!(with.contains(&AttackVector::HardwareSideChannel));
        // Strongest = TEE + single-tenant defends everything we model.
        assert_eq!(with.len(), 5);
    }

    #[test]
    fn tee_plus_single_tenant_is_strictly_strongest() {
        let strongest = defends(EnvKind::TeeEnclave, true);
        for k in EnvKind::ALL {
            for st in [false, true] {
                if k == EnvKind::TeeEnclave && st {
                    continue;
                }
                assert!(
                    strongest.is_superset(&defends(k, st)),
                    "{k} single_tenant={st}"
                );
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = EnvKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), EnvKind::ALL.len());
    }
}
