//! Warm pools: the provider-side mitigation for §3.3's cold-start
//! challenge ("As secure environments are usually slower to start up,
//! (cold) starting many environments for many modules can significantly
//! slow down the entire application").
//!
//! The provider pre-starts a bounded number of instances per environment
//! class; module launches draw from the pool when possible and fall back
//! to cold starts. Experiment E6 sweeps pool sizes against fan-out.

use crate::env::EnvKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use udc_hal::DeviceId;
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry, TraceCtx};

/// Warm-pool sizing per environment class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmPoolConfig {
    /// Instances kept warm per class.
    pub target_per_kind: BTreeMap<EnvKind, usize>,
}

impl WarmPoolConfig {
    /// No warm instances at all (every start is cold).
    pub fn disabled() -> Self {
        Self {
            target_per_kind: BTreeMap::new(),
        }
    }

    /// A uniform target for every class.
    pub fn uniform(n: usize) -> Self {
        Self {
            target_per_kind: EnvKind::ALL.iter().map(|&k| (k, n)).collect(),
        }
    }

    /// Builder-style: sets the target for one class.
    pub fn with(mut self, kind: EnvKind, n: usize) -> Self {
        self.target_per_kind.insert(kind, n);
        self
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmPoolStats {
    /// Launches served from the pool.
    pub hits: u64,
    /// Launches that had to cold-start.
    pub misses: u64,
    /// Instances pre-started in total (provider cost).
    pub prewarmed: u64,
}

impl WarmPoolStats {
    /// Hit rate in \[0, 1\] (0 when no launches).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One pre-started instance waiting in the pool. An instance may be
/// pinned to the device it was booted on; unpinned instances are
/// provider-global (migratable) and survive any device crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmInstance {
    /// Device hosting the pre-started instance, when pinned.
    pub device: Option<DeviceId>,
}

/// Outcome of a warm-pool acquisition, including where the instance
/// came from (callers that care about placement, e.g. the repair loop's
/// crash-safety property, inspect `device`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmAcquire {
    /// Startup latency paid: warm on hit, cold on miss.
    pub latency_us: u64,
    /// Whether a pooled instance was used.
    pub warm: bool,
    /// Device the pooled instance was pinned to (`None` for unpinned
    /// instances and for cold starts).
    pub device: Option<DeviceId>,
}

/// A warm pool across all environment classes.
#[derive(Debug, Clone)]
pub struct WarmPool {
    config: WarmPoolConfig,
    ready: BTreeMap<EnvKind, Vec<WarmInstance>>,
    stats: WarmPoolStats,
    /// Observability hub (disabled no-op by default).
    obs: Telemetry,
}

impl WarmPool {
    /// Creates a pool filled to its targets (the provider pre-warms at
    /// deployment time). Pre-warmed instances start unpinned.
    pub fn new(config: WarmPoolConfig) -> Self {
        let ready: BTreeMap<EnvKind, Vec<WarmInstance>> = config
            .target_per_kind
            .iter()
            .map(|(&k, &n)| (k, vec![WarmInstance { device: None }; n]))
            .collect();
        let prewarmed: u64 = ready.values().map(|v| v.len() as u64).sum();
        Self {
            config,
            ready,
            stats: WarmPoolStats {
                prewarmed,
                ..Default::default()
            },
            obs: Telemetry::disabled(),
        }
    }

    /// Installs the observability hub: hits/misses become
    /// `isolate.warmpool.*` counters, start latencies feed histograms,
    /// and every miss logs a cold-start flight event.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.obs = obs;
    }

    /// [`WarmPool::acquire`] under an explicit trace context: the
    /// `isolate.acquire` span joins the caller's trace, so environment
    /// acquisition shows up on a deployment's critical path.
    pub fn acquire_traced(&mut self, kind: EnvKind, ctx: Option<&TraceCtx>) -> u64 {
        let _span = if self.obs.is_enabled() {
            Some(self.obs.span_opt(ctx, "isolate.acquire"))
        } else {
            None
        };
        self.acquire(kind)
    }

    /// Attempts to draw a warm instance of `kind`. Returns the startup
    /// latency: warm on hit, cold on miss.
    pub fn acquire(&mut self, kind: EnvKind) -> u64 {
        self.acquire_detailed(kind).latency_us
    }

    /// Like [`WarmPool::acquire`], but reports which device (if any)
    /// the pooled instance was pinned to. Oldest instances are drawn
    /// first (FIFO), so draw order is deterministic.
    pub fn acquire_detailed(&mut self, kind: EnvKind) -> WarmAcquire {
        let m = kind.cost_model();
        match self.ready.get_mut(&kind) {
            Some(v) if !v.is_empty() => {
                let inst = v.remove(0);
                self.stats.hits += 1;
                self.obs.incr("isolate.warmpool.hits", Labels::none(), 1);
                self.obs
                    .observe("isolate.warm_start_us", Labels::none(), m.warm_start_us);
                WarmAcquire {
                    latency_us: m.warm_start_us,
                    warm: true,
                    device: inst.device,
                }
            }
            _ => {
                self.stats.misses += 1;
                self.obs.incr("isolate.warmpool.misses", Labels::none(), 1);
                self.obs
                    .observe("isolate.cold_start_us", Labels::none(), m.cold_start_us);
                self.obs.event(
                    EventKind::ColdStart,
                    Labels::none(),
                    &[
                        ("env", FieldValue::from(kind.name())),
                        ("latency_us", FieldValue::from(m.cold_start_us)),
                    ],
                );
                WarmAcquire {
                    latency_us: m.cold_start_us,
                    warm: false,
                    device: None,
                }
            }
        }
    }

    /// Adds one pre-started instance of `kind` pinned to `device` (the
    /// provider pre-warmed on specific hardware). Pinned instances are
    /// dropped by [`WarmPool::invalidate_device`] when that device
    /// crashes.
    pub fn prewarm_on(&mut self, kind: EnvKind, device: DeviceId) {
        self.ready.entry(kind).or_default().push(WarmInstance {
            device: Some(device),
        });
        self.stats.prewarmed += 1;
    }

    /// Drops every cached instance pinned to `device` (it crashed: the
    /// pre-started isolates on it are gone). Returns how many instances
    /// were invalidated. Unpinned instances are unaffected.
    pub fn invalidate_device(&mut self, device: DeviceId) -> usize {
        let mut dropped = 0;
        for v in self.ready.values_mut() {
            let before = v.len();
            v.retain(|i| i.device != Some(device));
            dropped += before - v.len();
        }
        if dropped > 0 {
            self.obs.incr(
                "isolate.warmpool.invalidated",
                Labels::none(),
                dropped as u64,
            );
        }
        dropped
    }

    /// Refills the pool toward its targets with unpinned instances,
    /// returning the number pre-started (background provider work,
    /// charged to the provider not the tenant).
    pub fn refill(&mut self) -> usize {
        let mut started = 0;
        for (&kind, &target) in &self.config.target_per_kind {
            let cur = self.ready.entry(kind).or_default();
            if cur.len() < target {
                let add = target - cur.len();
                started += add;
                self.stats.prewarmed += add as u64;
                cur.extend(std::iter::repeat_n(WarmInstance { device: None }, add));
            }
        }
        started
    }

    /// Instances ready for `kind` right now.
    pub fn ready(&self, kind: EnvKind) -> usize {
        self.ready.get(&kind).map(|v| v.len()).unwrap_or(0)
    }

    /// Statistics so far.
    pub fn stats(&self) -> WarmPoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_until_drained_then_miss() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::TeeEnclave, 2));
        let m = EnvKind::TeeEnclave.cost_model();
        assert_eq!(p.acquire(EnvKind::TeeEnclave), m.warm_start_us);
        assert_eq!(p.acquire(EnvKind::TeeEnclave), m.warm_start_us);
        assert_eq!(p.acquire(EnvKind::TeeEnclave), m.cold_start_us);
        assert_eq!(p.stats().hits, 2);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn disabled_pool_always_cold() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled());
        for k in EnvKind::ALL {
            assert_eq!(p.acquire(k), k.cost_model().cold_start_us);
        }
        assert_eq!(p.stats().hit_rate(), 0.0);
    }

    #[test]
    fn refill_restores_targets() {
        let mut p = WarmPool::new(WarmPoolConfig::uniform(1));
        p.acquire(EnvKind::Container);
        p.acquire(EnvKind::Unikernel);
        assert_eq!(p.ready(EnvKind::Container), 0);
        let started = p.refill();
        assert_eq!(started, 2);
        assert_eq!(p.ready(EnvKind::Container), 1);
        assert_eq!(p.ready(EnvKind::Unikernel), 1);
    }

    #[test]
    fn unconfigured_kind_misses() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::Container, 5));
        assert_eq!(
            p.acquire(EnvKind::FullVm),
            EnvKind::FullVm.cost_model().cold_start_us
        );
    }

    #[test]
    fn stats_track_prewarm_cost() {
        let p = WarmPool::new(WarmPoolConfig::uniform(3));
        assert_eq!(p.stats().prewarmed, 3 * EnvKind::ALL.len() as u64);
    }

    #[test]
    fn observer_records_hits_misses_and_cold_start_events() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::Container, 1));
        let obs = Telemetry::enabled();
        p.set_observer(obs.clone());
        p.acquire(EnvKind::Container); // hit
        p.acquire(EnvKind::Container); // miss -> cold start
        assert_eq!(obs.counter("isolate.warmpool.hits", &Labels::none()), 1);
        assert_eq!(obs.counter("isolate.warmpool.misses", &Labels::none()), 1);
        let cold = obs
            .histogram("isolate.cold_start_us", &Labels::none())
            .expect("cold-start histogram exists");
        assert_eq!(cold.count, 1);
        let events = obs.snapshot().events;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::ColdStart);
    }

    #[test]
    fn invalidate_device_drops_pinned_instances() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled());
        p.prewarm_on(EnvKind::Container, DeviceId(7));
        p.prewarm_on(EnvKind::Container, DeviceId(7));
        p.prewarm_on(EnvKind::Container, DeviceId(9));
        p.prewarm_on(EnvKind::Unikernel, DeviceId(7));
        assert_eq!(p.ready(EnvKind::Container), 3);

        // Device 7 crashes: its pinned instances vanish, device 9's stays.
        assert_eq!(p.invalidate_device(DeviceId(7)), 3);
        assert_eq!(p.ready(EnvKind::Container), 1);
        assert_eq!(p.ready(EnvKind::Unikernel), 0);

        // A post-crash acquire never hands back an instance from the
        // crashed device.
        let got = p.acquire_detailed(EnvKind::Container);
        assert!(got.warm);
        assert_eq!(got.device, Some(DeviceId(9)));
        let next = p.acquire_detailed(EnvKind::Container);
        assert!(!next.warm, "pool drained: cold start, not a dead instance");
        assert_eq!(next.device, None);
        assert_ne!(got.device, Some(DeviceId(7)));
    }

    #[test]
    fn invalidate_device_spares_unpinned() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::Container, 2));
        assert_eq!(p.invalidate_device(DeviceId(0)), 0);
        assert_eq!(p.ready(EnvKind::Container), 2);
        let got = p.acquire_detailed(EnvKind::Container);
        assert!(got.warm);
        assert_eq!(got.device, None);
    }

    #[test]
    fn hit_rate_mixed() {
        let mut p = WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::Container, 1));
        p.acquire(EnvKind::Container);
        p.acquire(EnvKind::Container);
        assert!((p.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
