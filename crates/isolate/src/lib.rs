//! # udc-isolate — execution environments and security features (§3.3)
//!
//! "Many existing execution environments like virtual machines,
//! lightweight VMs, unikernels, containers, and TEEs could be used to
//! fulfill different user requirements." This crate models all of them:
//!
//! - [`env::EnvKind`] — the six environment classes with calibrated
//!   startup-cost, runtime-overhead, and threat models;
//! - [`select::select_env`] — maps a user's declarative
//!   [`udc_spec::ExecEnvAspect`] plus the target hardware kind to a
//!   concrete [`select::EnvironmentPlan`] (the provider's realization
//!   choice, Design Principle 2), including the paper's rule that TEEs
//!   only exist on CPUs so secure accelerators need physically-isolated
//!   single-tenant devices;
//! - [`instance::Environment`] — a launched environment with lifecycle,
//!   virtual-time startup accounting, and TEE measurement via
//!   `udc-crypto`'s root of trust;
//! - [`warmpool::WarmPool`] — the cold-start mitigation §3.3 calls for
//!   ("(cold) starting many environments for many modules can
//!   significantly slow down the entire application").

pub mod env;
pub mod instance;
pub mod select;
pub mod warmpool;

pub use env::{defends, AttackVector, CostModel, EnvKind};
pub use instance::{EnvState, Environment, InstanceId};
pub use select::{select_env, EnvironmentPlan, SelectError};
pub use warmpool::{WarmAcquire, WarmInstance, WarmPool, WarmPoolConfig, WarmPoolStats};
