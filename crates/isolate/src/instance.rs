//! Launched environment instances with lifecycle and TEE measurement.

use crate::env::CostModel;
use crate::select::EnvironmentPlan;
use serde::{Deserialize, Serialize};
use std::fmt;
use udc_crypto::attest::RootOfTrust;

/// Unique instance identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "env{}", self.0)
    }
}

/// Lifecycle state of an environment instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvState {
    /// Created but not yet started.
    Cold,
    /// Running and able to execute module code.
    Running,
    /// Stopped; resources released.
    Stopped,
}

/// A launched execution environment hosting one module (vertical
/// bundling keeps this 1:1 — Design Principle 3).
#[derive(Debug)]
pub struct Environment {
    /// Instance id.
    pub id: InstanceId,
    /// The realization plan this instance implements.
    pub plan: EnvironmentPlan,
    /// Lifecycle state.
    pub state: EnvState,
    /// Virtual time spent starting this instance (cold or warm).
    pub startup_cost_us: u64,
    /// TEE root of trust, present only for enclave instances.
    rot: Option<RootOfTrust>,
}

impl Environment {
    /// Creates a cold instance. For TEE plans a fresh root of trust is
    /// fused with `device_key` so quotes can later be produced.
    pub fn new(id: InstanceId, plan: EnvironmentPlan, device_key: [u8; 32]) -> Self {
        let rot = if plan.kind.is_tee() {
            Some(RootOfTrust::new(format!("{id}"), device_key))
        } else {
            None
        };
        Self {
            id,
            plan,
            state: EnvState::Cold,
            startup_cost_us: 0,
            rot,
        }
    }

    /// The cost model of this instance's class.
    pub fn cost_model(&self) -> CostModel {
        self.plan.kind.cost_model()
    }

    /// Starts the instance, returning the startup latency in
    /// microseconds. `warm` indicates the instance came from a warm pool.
    /// TEE instances measure the runtime and module identity into the
    /// root of trust as part of startup.
    pub fn start(&mut self, warm: bool, module_identity: &str) -> u64 {
        assert_eq!(
            self.state,
            EnvState::Cold,
            "start() requires a cold instance"
        );
        let m = self.cost_model();
        let latency = if warm {
            m.warm_start_us
        } else {
            m.cold_start_us
        };
        if let Some(rot) = &mut self.rot {
            rot.measure("boot: udc-runtime v1");
            rot.measure(&format!("load: {module_identity}"));
        }
        self.state = EnvState::Running;
        self.startup_cost_us = latency;
        latency
    }

    /// Stops the instance, returning the teardown latency.
    pub fn stop(&mut self) -> u64 {
        assert_eq!(
            self.state,
            EnvState::Running,
            "stop() requires a running instance"
        );
        self.state = EnvState::Stopped;
        self.cost_model().teardown_us
    }

    /// Effective execution time for `base_us` of work, after this
    /// environment's runtime overhead.
    pub fn effective_exec_us(&self, base_us: u64) -> u64 {
        (base_us as f64 * self.cost_model().runtime_overhead).ceil() as u64
    }

    /// Access to the TEE root of trust (None for non-TEE instances) —
    /// used by the verification service to request quotes.
    pub fn root_of_trust(&self) -> Option<&RootOfTrust> {
        self.rot.as_ref()
    }

    /// Mutable access to the root of trust.
    pub fn root_of_trust_mut(&mut self) -> Option<&mut RootOfTrust> {
        self.rot.as_mut()
    }

    /// True when running.
    pub fn is_running(&self) -> bool {
        self.state == EnvState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvKind;
    use crate::select::EnvironmentPlan;

    fn plan(kind: EnvKind) -> EnvironmentPlan {
        EnvironmentPlan {
            kind,
            single_tenant: false,
            user_verifiable: kind.is_tee(),
        }
    }

    #[test]
    fn lifecycle_cold_running_stopped() {
        let mut e = Environment::new(InstanceId(0), plan(EnvKind::Container), [0u8; 32]);
        assert_eq!(e.state, EnvState::Cold);
        let cold = e.start(false, "A1");
        assert_eq!(cold, EnvKind::Container.cost_model().cold_start_us);
        assert!(e.is_running());
        let td = e.stop();
        assert_eq!(td, EnvKind::Container.cost_model().teardown_us);
        assert_eq!(e.state, EnvState::Stopped);
    }

    #[test]
    fn warm_start_cheaper() {
        let mut cold = Environment::new(InstanceId(0), plan(EnvKind::TeeEnclave), [0u8; 32]);
        let mut warm = Environment::new(InstanceId(1), plan(EnvKind::TeeEnclave), [0u8; 32]);
        assert!(warm.start(true, "A1") < cold.start(false, "A1"));
    }

    #[test]
    #[should_panic(expected = "cold instance")]
    fn double_start_panics() {
        let mut e = Environment::new(InstanceId(0), plan(EnvKind::Container), [0u8; 32]);
        e.start(false, "A1");
        e.start(false, "A1");
    }

    #[test]
    fn tee_instance_measures_module() {
        let mut e = Environment::new(InstanceId(0), plan(EnvKind::TeeEnclave), [7u8; 32]);
        assert!(e.root_of_trust().is_some());
        let before = e.root_of_trust().unwrap().measurement();
        e.start(false, "A2-cnn-inference");
        let after = e.root_of_trust().unwrap().measurement();
        assert_ne!(before, after, "startup must extend measurements");
    }

    #[test]
    fn non_tee_has_no_rot() {
        let e = Environment::new(InstanceId(0), plan(EnvKind::Unikernel), [0u8; 32]);
        assert!(e.root_of_trust().is_none());
    }

    #[test]
    fn different_modules_different_measurements() {
        let mut a = Environment::new(InstanceId(0), plan(EnvKind::TeeEnclave), [7u8; 32]);
        let mut b = Environment::new(InstanceId(1), plan(EnvKind::TeeEnclave), [7u8; 32]);
        a.start(false, "A1");
        b.start(false, "A2");
        assert_ne!(
            a.root_of_trust().unwrap().measurement(),
            b.root_of_trust().unwrap().measurement()
        );
    }

    #[test]
    fn effective_exec_applies_overhead() {
        let mut e = Environment::new(InstanceId(0), plan(EnvKind::TeeEnclave), [0u8; 32]);
        e.start(false, "A1");
        // TEE overhead is 1.25.
        assert_eq!(e.effective_exec_us(1000), 1250);
        let mut c = Environment::new(InstanceId(1), plan(EnvKind::Unikernel), [0u8; 32]);
        c.start(false, "A1");
        assert!(c.effective_exec_us(1000) < 1250);
    }
}
