//! Property-based tests for the spec crate: text-format round-trips,
//! conflict-resolution invariants, and validation robustness.

use proptest::prelude::*;
use udc_spec::aspect::*;
use udc_spec::conflict::{detect_conflicts, resolve, ConflictPolicy};
use udc_spec::dag::{AppSpec, DataSpec, EdgeKind, TaskSpec};
use udc_spec::parser::parse_app;
use udc_spec::printer::print_app;

fn arb_kind() -> impl Strategy<Value = ResourceKind> {
    prop::sample::select(ResourceKind::ALL.to_vec())
}

fn arb_goal() -> impl Strategy<Value = Option<Goal>> {
    prop_oneof![
        Just(None),
        Just(Some(Goal::Fastest)),
        Just(Some(Goal::Cheapest))
    ]
}

fn arb_isolation() -> impl Strategy<Value = Option<IsolationLevel>> {
    prop_oneof![
        Just(None),
        Just(Some(IsolationLevel::Weak)),
        Just(Some(IsolationLevel::Medium)),
        Just(Some(IsolationLevel::Strong)),
        Just(Some(IsolationLevel::Strongest)),
    ]
}

fn arb_consistency() -> impl Strategy<Value = ConsistencyLevel> {
    prop::sample::select(vec![
        ConsistencyLevel::Eventual,
        ConsistencyLevel::Release,
        ConsistencyLevel::Causal,
        ConsistencyLevel::Sequential,
        ConsistencyLevel::Linearizable,
    ])
}

fn arb_protection() -> impl Strategy<Value = DataProtection> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(c, i, r)| DataProtection {
        confidentiality: c,
        integrity: i,
        replay: r,
    })
}

fn arb_resource_aspect() -> impl Strategy<Value = ResourceAspect> {
    (
        arb_goal(),
        prop::collection::vec((arb_kind(), 1u64..10_000), 0..4),
        prop::collection::vec(arb_kind(), 0..3),
    )
        .prop_map(|(goal, demands, cands)| {
            let mut a = ResourceAspect {
                goal,
                ..Default::default()
            };
            for (k, v) in demands {
                let cur = a.demand.get(k);
                a.demand.set(k, cur.saturating_add(v));
            }
            for c in cands {
                if !a.candidates.contains(&c) {
                    a.candidates.push(c);
                }
            }
            a
        })
}

fn arb_exec_aspect() -> impl Strategy<Value = ExecEnvAspect> {
    (
        arb_isolation(),
        prop_oneof![
            Just(None),
            Just(Some(Tenancy::Shared)),
            Just(Some(Tenancy::SingleTenant))
        ],
        any::<bool>(),
        prop_oneof![Just(None), arb_protection().prop_map(Some)],
    )
        .prop_map(|(isolation, tenancy, tee, protection)| ExecEnvAspect {
            isolation,
            tenancy,
            tee_if_cpu: tee,
            protection,
        })
}

fn arb_dist_aspect() -> impl Strategy<Value = DistributedAspect> {
    (
        1u32..=8,
        prop_oneof![Just(None), arb_consistency().prop_map(Some)],
        prop::sample::select(vec![
            OpPreference::None,
            OpPreference::Reader,
            OpPreference::Writer,
        ]),
        prop_oneof![
            Just(None),
            Just(Some(FailureHandling::Reexecute)),
            (1u64..100_000)
                .prop_map(|interval_ms| Some(FailureHandling::Checkpoint { interval_ms })),
        ],
        prop_oneof![Just(None), "[a-z][a-z0-9]{0,6}".prop_map(Some)],
    )
        .prop_map(
            |(replication, consistency, preference, failure, failure_domain)| DistributedAspect {
                replication,
                consistency,
                preference,
                failure,
                failure_domain,
            },
        )
}

/// Generates a valid application: `n_tasks` tasks in a chain plus
/// `n_data` data modules each accessed by one task.
fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        1usize..6,
        0usize..4,
        prop::collection::vec(arb_resource_aspect(), 10),
        prop::collection::vec(arb_exec_aspect(), 10),
        prop::collection::vec(arb_dist_aspect(), 10),
        prop::collection::vec(prop_oneof![Just(None), arb_consistency().prop_map(Some)], 4),
    )
        .prop_map(|(n_tasks, n_data, res, exec, dist, reqs)| {
            let mut app = AppSpec::new("gen");
            for i in 0..n_tasks {
                let mut exec_a = exec[i].clone();
                // Keep the generated app valid: strongest isolation
                // implies single-tenant.
                if exec_a.isolation == Some(IsolationLevel::Strongest) {
                    exec_a.tenancy = Some(Tenancy::SingleTenant);
                }
                let mut dist_a = dist[i].clone();
                dist_a.consistency = None; // Tasks cannot carry consistency.
                app.add_task(
                    TaskSpec::new(&format!("T{i}"))
                        .with_resource(res[i].clone())
                        .with_exec_env(exec_a)
                        .with_dist(dist_a),
                );
            }
            for i in 1..n_tasks {
                app.add_edge(
                    &format!("T{}", i - 1),
                    &format!("T{i}"),
                    EdgeKind::Dependency,
                )
                .unwrap();
            }
            for j in 0..n_data {
                let mut exec_a = exec[5 + j].clone();
                if exec_a.isolation == Some(IsolationLevel::Strongest) {
                    exec_a.tenancy = Some(Tenancy::SingleTenant);
                }
                app.add_data(
                    DataSpec::new(&format!("S{j}"))
                        .with_resource(res[5 + j].clone())
                        .with_exec_env(exec_a)
                        .with_dist(dist[5 + j].clone()),
                );
                let accessor = format!("T{}", j % n_tasks);
                app.add_access_with(&accessor, &format!("S{j}"), reqs[j], None)
                    .unwrap();
            }
            app
        })
}

proptest! {
    /// The canonical printer and parser are inverse: parse(print(app)) == app.
    #[test]
    fn print_parse_round_trip(app in arb_app()) {
        let text = print_app(&app);
        let back = parse_app(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back, app);
    }

    /// Generated apps validate (the generator only emits coherent specs).
    #[test]
    fn generated_apps_validate(app in arb_app()) {
        prop_assert!(app.validate().is_ok(), "{:?}", app.validate());
    }

    /// JSON serde round-trips.
    #[test]
    fn json_round_trip(app in arb_app()) {
        let js = serde_json::to_string(&app).unwrap();
        let back: AppSpec = serde_json::from_str(&js).unwrap();
        prop_assert_eq!(back, app);
    }

    /// Strictest-wins resolution never weakens any aspect: every module's
    /// consistency, isolation, protection, and replication in the resolved
    /// app are >= the original.
    #[test]
    fn resolution_is_monotone(app in arb_app()) {
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        for (id, orig) in &app.modules {
            let new = resolved.module(id).unwrap();
            prop_assert!(new.dist.replication >= orig.dist.replication);
            if let Some(oc) = orig.dist.consistency {
                prop_assert!(new.dist.consistency.unwrap() >= oc);
            }
            if let Some(oi) = orig.exec_env.isolation {
                prop_assert!(new.exec_env.isolation.unwrap() >= oi);
            }
            if let Some(op) = orig.exec_env.protection {
                prop_assert!(op.subsumed_by(new.exec_env.protection.unwrap_or(op)));
            }
        }
    }

    /// After strictest-wins resolution, every data module's consistency is
    /// an upper bound of all its accessors' requirements.
    #[test]
    fn resolution_is_upper_bound(app in arb_app()) {
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        for e in &resolved.edges {
            let Some(req) = e.require_consistency else { continue };
            // Identify the data endpoint.
            let data_id = [&e.from, &e.to]
                .into_iter()
                .find(|id| {
                    resolved.module(id).map(|m| m.kind == udc_spec::dag::ModuleKind::Data)
                        == Some(true)
                });
            let Some(data_id) = data_id else { continue };
            let data = resolved.module(data_id).unwrap();
            let effective = data.dist.consistency.unwrap_or(ConsistencyLevel::Eventual);
            // Only guaranteed when a conflict was detected (>=2 distinct
            // levels); a single uncontested accessor requirement stays on
            // the edge. Strictest-wins handles the *conflicting* case.
            let report = detect_conflicts(&app);
            let conflicted = report.conflicts.iter().any(|c| matches!(
                c,
                udc_spec::conflict::ConflictKind::Consistency { data: d, .. } if d == data_id
            ));
            if conflicted {
                prop_assert!(effective >= req,
                    "data {data_id}: effective {effective:?} < required {req:?}");
            }
        }
    }

    /// Error policy fails exactly when conflicts exist.
    #[test]
    fn error_policy_iff_conflicts(app in arb_app()) {
        let report = detect_conflicts(&app);
        let res = resolve(&app, ConflictPolicy::Error);
        prop_assert_eq!(report.is_clean(), res.is_ok());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(input in "\\PC{0,200}") {
        let _ = parse_app(&input);
    }

    /// Resource-vector arithmetic: add then subtract restores the original
    /// when there is no clamping (b fits in a+b trivially).
    #[test]
    fn vector_add_sub_inverse(pairs in prop::collection::vec((arb_kind(), 0u64..1_000_000), 0..6)) {
        let mut a = ResourceVector::new();
        let mut b = ResourceVector::new();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i % 2 == 0 { let cur = a.get(*k); a.set(*k, cur + v); }
            else { let cur = b.get(*k); b.set(*k, cur + v); }
        }
        let sum = a.saturating_add(&b);
        let back = sum.saturating_sub(&b);
        prop_assert_eq!(back, a);
        prop_assert!(b.fits_in(&sum));
    }
}
