//! Parser for the `.udc` declarative text format.
//!
//! The format is the concrete syntax for Design Principle 2: the IT team
//! "specif\[ies\] aspects in a declarative way", decoupled from their
//! realization. Grammar (informal):
//!
//! ```text
//! app <name> {
//!   task <id> ["description"] { <aspect-blocks and attrs> }
//!   data <id> ["description"] { <aspect-blocks and attrs> }
//!   edge <id> -> <id>
//!   access <id> -> <id> [ consistency = <level>; protect = <flags> ]
//!   colocate <id> <id>
//!   affinity <id> <id>
//! }
//!
//! aspect-blocks:
//!   resource { goal = fastest|cheapest; demand = 4cpu+2048dram; candidates = cpu,gpu }
//!   exec { isolation = weak|medium|strong|strongest; tenancy = shared|single_tenant;
//!          tee_if_cpu = true; protect = confidentiality,integrity,replay }
//!   dist { replication = 2; consistency = sequential; preference = reader;
//!          failure = reexecute | checkpoint(500); domain = "d0" }
//! attrs: work = 100   bytes = 4096
//! ```
//!
//! Statements inside `{}` are separated by newlines or `;`. `#` starts a
//! line comment. [`crate::printer::print_app`] emits the canonical form;
//! `parse(print(app)) == app` is property-tested.

use crate::aspect::{
    ConsistencyLevel, DataProtection, DistributedAspect, ExecEnvAspect, FailureHandling, Goal,
    IsolationLevel, OpPreference, ResourceAspect, ResourceKind, ResourceVector, Tenancy,
};
use crate::dag::{AppSpec, DataSpec, EdgeKind, TaskSpec};
use crate::error::{SpecError, SpecResult};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(u64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Eq,
    Comma,
    Plus,
    Arrow,
    Semi,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(input: &str) -> SpecResult<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                // Newlines act as statement separators inside blocks.
                toks.push(SpannedTok {
                    tok: Tok::Semi,
                    line,
                });
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                toks.push(SpannedTok {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                toks.push(SpannedTok {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                toks.push(SpannedTok {
                    tok: Tok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                toks.push(SpannedTok {
                    tok: Tok::RBracket,
                    line,
                });
                i += 1;
            }
            '(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '=' => {
                toks.push(SpannedTok { tok: Tok::Eq, line });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            '+' => {
                toks.push(SpannedTok {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            ';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(SpannedTok {
                        tok: Tok::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    // Part of an identifier like `pre-process`; handled in
                    // the identifier branch, so a bare `-` is an error.
                    return Err(SpecError::Parse {
                        line,
                        message: "unexpected `-`".into(),
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(SpecError::Parse {
                            line,
                            message: "unterminated string".into(),
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SpecError::Parse {
                        line,
                        message: "unterminated string".into(),
                    });
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(input[start..j].to_string()),
                    line,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // `4cpu` lexes as Num(4) + Ident(cpu): if a letter
                // follows, stop the number here.
                let n: u64 = input[start..i].parse().map_err(|_| SpecError::Parse {
                    line,
                    message: format!("number out of range: {}", &input[start..i]),
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Num(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        i += 1;
                    } else if b == b'-' && i + 1 < bytes.len() && bytes[i + 1] != b'>' {
                        // Hyphen inside an identifier, but not the start
                        // of `->`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(input[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(SpecError::Parse {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), Some(Tok::Semi)) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: &Tok) -> SpecResult<()> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {want:?}, found {t:?}"))),
            None => Err(self.err(format!("expected {want:?}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> SpecResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected identifier, found {t:?}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_num(&mut self) -> SpecResult<u64> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(t) => Err(self.err(format!("expected number, found {t:?}"))),
            None => Err(self.err("expected number, found end of input")),
        }
    }
}

/// Parses a `.udc` document into an [`AppSpec`].
///
/// The returned spec is *not* validated; call [`AppSpec::validate`]
/// afterwards (the parser only enforces syntax, mirroring the paper's
/// split between writing a spec and the cloud checking it).
pub fn parse_app(input: &str) -> SpecResult<AppSpec> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    p.skip_semis();
    let kw = p.expect_ident()?;
    if kw != "app" {
        return Err(p.err(format!("expected `app`, found `{kw}`")));
    }
    let name = p.expect_ident()?;
    let mut app = match crate::ids::AppName::new(&name) {
        Some(_) => AppSpec::new(&name),
        None => return Err(p.err(format!("invalid app name `{name}`"))),
    };
    p.expect(&Tok::LBrace)?;
    loop {
        p.skip_semis();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.pos += 1;
                break;
            }
            Some(Tok::Ident(_)) => parse_statement(&mut p, &mut app)?,
            Some(t) => return Err(p.err(format!("unexpected {t:?} in app body"))),
            None => return Err(p.err("unexpected end of input in app body")),
        }
    }
    p.skip_semis();
    if p.peek().is_some() {
        return Err(p.err("trailing input after app body"));
    }
    Ok(app)
}

fn parse_statement(p: &mut Parser, app: &mut AppSpec) -> SpecResult<()> {
    let kw = p.expect_ident()?;
    match kw.as_str() {
        "task" | "data" => parse_module(p, app, &kw),
        "edge" => {
            let from = p.expect_ident()?;
            p.expect(&Tok::Arrow)?;
            let to = p.expect_ident()?;
            app.add_edge(&from, &to, EdgeKind::Dependency)
        }
        "access" => {
            let from = p.expect_ident()?;
            p.expect(&Tok::Arrow)?;
            let to = p.expect_ident()?;
            let mut consistency = None;
            let mut protection = None;
            if matches!(p.peek(), Some(Tok::LBracket)) {
                p.pos += 1;
                loop {
                    p.skip_semis();
                    if matches!(p.peek(), Some(Tok::RBracket)) {
                        p.pos += 1;
                        break;
                    }
                    let key = p.expect_ident()?;
                    p.expect(&Tok::Eq)?;
                    match key.as_str() {
                        "consistency" => {
                            let v = p.expect_ident()?;
                            consistency = Some(
                                ConsistencyLevel::from_name(&v)
                                    .ok_or_else(|| p.err(format!("unknown consistency `{v}`")))?,
                            );
                        }
                        "protect" => protection = Some(parse_protection(p)?),
                        other => return Err(p.err(format!("unknown access attribute `{other}`"))),
                    }
                }
            }
            app.add_access_with(&from, &to, consistency, protection)
        }
        "colocate" => {
            let a = p.expect_ident()?;
            let b = p.expect_ident()?;
            app.colocate(&a, &b)
        }
        "affinity" => {
            let a = p.expect_ident()?;
            let b = p.expect_ident()?;
            app.affinity(&a, &b)
        }
        other => Err(p.err(format!("unknown statement `{other}`"))),
    }
}

fn parse_module(p: &mut Parser, app: &mut AppSpec, kind: &str) -> SpecResult<()> {
    let id = p.expect_ident()?;
    let description = match p.peek() {
        Some(Tok::Str(_)) => match p.next() {
            Some(Tok::Str(s)) => Some(s),
            _ => unreachable!("peeked a string"),
        },
        _ => None,
    };
    if crate::ids::ModuleId::new(&id).is_none() {
        return Err(p.err(format!("invalid module id `{id}`")));
    }

    let mut resource = ResourceAspect::default();
    let mut exec_env = ExecEnvAspect::default();
    let mut dist = DistributedAspect::default();
    let mut work_units = None;
    let mut bytes = None;

    if matches!(p.peek(), Some(Tok::LBrace)) {
        p.pos += 1;
        loop {
            p.skip_semis();
            match p.peek() {
                Some(Tok::RBrace) => {
                    p.pos += 1;
                    break;
                }
                Some(Tok::Ident(_)) => {
                    let key = p.expect_ident()?;
                    match key.as_str() {
                        "resource" => resource = parse_resource_block(p)?,
                        "exec" => exec_env = parse_exec_block(p)?,
                        "dist" => dist = parse_dist_block(p)?,
                        "work" => {
                            p.expect(&Tok::Eq)?;
                            work_units = Some(p.expect_num()?);
                        }
                        "bytes" => {
                            p.expect(&Tok::Eq)?;
                            bytes = Some(p.expect_num()?);
                        }
                        other => return Err(p.err(format!("unknown module attribute `{other}`"))),
                    }
                }
                Some(t) => return Err(p.err(format!("unexpected {t:?} in module body"))),
                None => return Err(p.err("unexpected end of input in module body")),
            }
        }
    }

    let mut spec = if kind == "task" {
        TaskSpec::new(&id).build()
    } else {
        DataSpec::new(&id).build()
    };
    spec.description = description;
    spec.resource = resource;
    spec.exec_env = exec_env;
    spec.dist = dist;
    spec.work_units = work_units;
    spec.bytes = bytes;
    app.add_module(spec);
    Ok(())
}

fn parse_resource_block(p: &mut Parser) -> SpecResult<ResourceAspect> {
    let mut aspect = ResourceAspect::default();
    p.expect(&Tok::LBrace)?;
    loop {
        p.skip_semis();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.pos += 1;
                break;
            }
            _ => {
                let key = p.expect_ident()?;
                p.expect(&Tok::Eq)?;
                match key.as_str() {
                    "goal" => {
                        let v = p.expect_ident()?;
                        aspect.goal = Some(
                            Goal::from_name(&v)
                                .ok_or_else(|| p.err(format!("unknown goal `{v}`")))?,
                        );
                    }
                    "demand" => aspect.demand = parse_resource_vector(p)?,
                    "candidates" => loop {
                        let v = p.expect_ident()?;
                        let k = ResourceKind::from_name(&v)
                            .ok_or_else(|| p.err(format!("unknown resource kind `{v}`")))?;
                        if !aspect.candidates.contains(&k) {
                            aspect.candidates.push(k);
                        }
                        if matches!(p.peek(), Some(Tok::Comma)) {
                            p.pos += 1;
                        } else {
                            break;
                        }
                    },
                    other => return Err(p.err(format!("unknown resource attribute `{other}`"))),
                }
            }
        }
    }
    Ok(aspect)
}

fn parse_resource_vector(p: &mut Parser) -> SpecResult<ResourceVector> {
    let mut v = ResourceVector::new();
    loop {
        let n = p.expect_num()?;
        let kind_name = p.expect_ident()?;
        let kind = ResourceKind::from_name(&kind_name)
            .ok_or_else(|| p.err(format!("unknown resource kind `{kind_name}`")))?;
        v.set(kind, v.get(kind).saturating_add(n));
        if matches!(p.peek(), Some(Tok::Plus)) {
            p.pos += 1;
        } else {
            break;
        }
    }
    Ok(v)
}

fn parse_protection(p: &mut Parser) -> SpecResult<DataProtection> {
    let mut prot = DataProtection::NONE;
    loop {
        let flag = p.expect_ident()?;
        match flag.as_str() {
            "confidentiality" => prot.confidentiality = true,
            "integrity" => prot.integrity = true,
            "replay" => prot.replay = true,
            "none" => {}
            other => return Err(p.err(format!("unknown protection flag `{other}`"))),
        }
        if matches!(p.peek(), Some(Tok::Comma)) {
            p.pos += 1;
        } else {
            break;
        }
    }
    Ok(prot)
}

fn parse_exec_block(p: &mut Parser) -> SpecResult<ExecEnvAspect> {
    let mut aspect = ExecEnvAspect::default();
    p.expect(&Tok::LBrace)?;
    loop {
        p.skip_semis();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.pos += 1;
                break;
            }
            _ => {
                let key = p.expect_ident()?;
                p.expect(&Tok::Eq)?;
                match key.as_str() {
                    "isolation" => {
                        let v = p.expect_ident()?;
                        aspect.isolation = Some(
                            IsolationLevel::from_name(&v)
                                .ok_or_else(|| p.err(format!("unknown isolation `{v}`")))?,
                        );
                    }
                    "tenancy" => {
                        let v = p.expect_ident()?;
                        aspect.tenancy = Some(match v.as_str() {
                            "shared" => Tenancy::Shared,
                            "single_tenant" => Tenancy::SingleTenant,
                            other => return Err(p.err(format!("unknown tenancy `{other}`"))),
                        });
                    }
                    "tee_if_cpu" => {
                        let v = p.expect_ident()?;
                        aspect.tee_if_cpu = match v.as_str() {
                            "true" => true,
                            "false" => false,
                            other => return Err(p.err(format!("expected bool, found `{other}`"))),
                        };
                    }
                    "protect" => aspect.protection = Some(parse_protection(p)?),
                    other => return Err(p.err(format!("unknown exec attribute `{other}`"))),
                }
            }
        }
    }
    Ok(aspect)
}

fn parse_dist_block(p: &mut Parser) -> SpecResult<DistributedAspect> {
    let mut aspect = DistributedAspect::default();
    p.expect(&Tok::LBrace)?;
    loop {
        p.skip_semis();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.pos += 1;
                break;
            }
            _ => {
                let key = p.expect_ident()?;
                p.expect(&Tok::Eq)?;
                match key.as_str() {
                    "replication" => {
                        let n = p.expect_num()?;
                        aspect.replication = u32::try_from(n)
                            .map_err(|_| p.err(format!("replication {n} out of range")))?;
                    }
                    "consistency" => {
                        let v = p.expect_ident()?;
                        aspect.consistency = Some(
                            ConsistencyLevel::from_name(&v)
                                .ok_or_else(|| p.err(format!("unknown consistency `{v}`")))?,
                        );
                    }
                    "preference" => {
                        let v = p.expect_ident()?;
                        aspect.preference = OpPreference::from_name(&v)
                            .ok_or_else(|| p.err(format!("unknown preference `{v}`")))?;
                    }
                    "failure" => {
                        let v = p.expect_ident()?;
                        aspect.failure = Some(match v.as_str() {
                            "reexecute" => FailureHandling::Reexecute,
                            "checkpoint" => {
                                p.expect(&Tok::LParen)?;
                                let interval_ms = p.expect_num()?;
                                p.expect(&Tok::RParen)?;
                                FailureHandling::Checkpoint { interval_ms }
                            }
                            other => return Err(p.err(format!("unknown failure mode `{other}`"))),
                        });
                    }
                    "domain" => {
                        let v = match p.next() {
                            Some(Tok::Str(s)) => s,
                            Some(Tok::Ident(s)) => s,
                            _ => return Err(p.err("expected domain name")),
                        };
                        aspect.failure_domain = Some(v);
                    }
                    other => return Err(p.err(format!("unknown dist attribute `{other}`"))),
                }
            }
        }
    }
    Ok(aspect)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Medical pipeline fragment (Fig. 2).
app medical {
  task A1 "preprocess" {
    resource { goal = fastest }
    exec { isolation = strong; tee_if_cpu = true }
    work = 10
  }
  task A2 "cnn-inference" {
    resource { demand = 1gpu+4096dram; candidates = gpu }
    exec { tenancy = single_tenant }
    dist { failure = checkpoint(500) }
  }
  data S1 "records" {
    resource { demand = 8192ssd }
    exec { protect = confidentiality, integrity }
    dist { replication = 3; consistency = sequential }
    bytes = 1048576
  }
  edge A1 -> A2
  access A2 -> S1 [consistency = sequential]
  colocate A1 A2
  affinity A2 S1
}
"#;

    #[test]
    fn parses_sample() {
        let app = parse_app(SAMPLE).unwrap();
        assert_eq!(app.name.as_str(), "medical");
        assert_eq!(app.len(), 3);
        let a2 = app.module(&"A2".into()).unwrap();
        assert_eq!(a2.resource.demand.get(ResourceKind::Gpu), 1);
        assert_eq!(a2.resource.demand.get(ResourceKind::Dram), 4096);
        assert_eq!(a2.exec_env.tenancy, Some(Tenancy::SingleTenant));
        assert_eq!(
            a2.dist.failure,
            Some(FailureHandling::Checkpoint { interval_ms: 500 })
        );
        let s1 = app.module(&"S1".into()).unwrap();
        assert_eq!(s1.dist.replication, 3);
        assert_eq!(s1.dist.consistency, Some(ConsistencyLevel::Sequential));
        assert_eq!(
            s1.exec_env.protection,
            Some(DataProtection::ENCRYPT_AND_INTEGRITY)
        );
        assert_eq!(s1.bytes, Some(1048576));
        assert_eq!(app.edges.len(), 2);
        assert_eq!(app.hints.len(), 2);
        app.validate().unwrap();
    }

    #[test]
    fn description_is_optional() {
        let app = parse_app("app a { task T }").unwrap();
        assert!(app.module(&"T".into()).unwrap().description.is_none());
    }

    #[test]
    fn module_without_body() {
        let app = parse_app("app a { task T \"t\" \n data S }").unwrap();
        assert_eq!(app.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let input = "app a {\n  task T {\n    bogus = 1\n  }\n}";
        match parse_app(input) {
            Err(SpecError::Parse { line, message }) => {
                assert_eq!(line, 3, "{message}");
                assert!(message.contains("bogus"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(
            parse_app("app a { task T \"oops \n }"),
            Err(SpecError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_statement_rejected() {
        assert!(parse_app("app a { teleport T }").is_err());
    }

    #[test]
    fn edge_to_unknown_module_rejected() {
        assert!(matches!(
            parse_app("app a { task T \n edge T -> U }"),
            Err(SpecError::UnknownModule(_))
        ));
    }

    #[test]
    fn demand_repeated_kind_accumulates() {
        let app = parse_app("app a { task T { resource { demand = 2cpu+3cpu } } }").unwrap();
        assert_eq!(
            app.module(&"T".into())
                .unwrap()
                .resource
                .demand
                .get(ResourceKind::Cpu),
            5
        );
    }

    #[test]
    fn access_requirements_parsed() {
        let app = parse_app(
            "app a { task T \n data S \n access T -> S [consistency = release; protect = integrity, replay] }",
        )
        .unwrap();
        let e = &app.edges[0];
        assert_eq!(e.require_consistency, Some(ConsistencyLevel::Release));
        let p = e.require_protection.unwrap();
        assert!(p.integrity && p.replay && !p.confidentiality);
    }

    #[test]
    fn hyphenated_identifiers() {
        let app = parse_app("app my-app { task pre-process }").unwrap();
        assert!(app.module(&"pre-process".into()).is_some());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_app("app a { task T } extra").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_app("").is_err());
        assert!(parse_app("   \n  # just a comment\n").is_err());
    }
}
