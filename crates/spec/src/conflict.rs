//! Conflict detection and resolution for user definitions (§3.4).
//!
//! "Users may define conflicting specifications for different modules,
//! e.g., two modules sharing data and one specified as sequential
//! consistency and the other as release consistency. UDC needs to detect
//! such conflicts and either chooses the strictest specification or
//! returns an error to the user."
//!
//! We detect four conflict classes:
//! - **consistency**: accessors of a shared data module require different
//!   consistency levels (or stronger than the data module declares);
//! - **protection**: an accessor requires stronger data protection than
//!   the data module declares;
//! - **isolation**: colocated tasks request different isolation levels or
//!   tenancy — they cannot share one hardware unit as specified;
//! - **replication**: modules in the same user-declared failure domain
//!   request different replication factors.
//!
//! [`resolve`] applies the paper's strictest-wins rule, returning a new
//! `AppSpec` whose aspects are the least upper bound of all requirements;
//! with [`ConflictPolicy::Error`] it instead returns
//! [`SpecError::Conflict`] listing every conflict.

use crate::aspect::{ConsistencyLevel, DataProtection, IsolationLevel, Tenancy};
use crate::dag::{AppSpec, EdgeKind, LocalityHint, ModuleKind};
use crate::error::{SpecError, SpecResult};
use crate::ids::ModuleId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How detected conflicts are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum ConflictPolicy {
    /// Upgrade every conflicting aspect to the strictest requirement.
    #[default]
    StrictestWins,
    /// Refuse the application, reporting all conflicts.
    Error,
}

/// One detected conflict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictKind {
    /// Accessors disagree on the consistency of a shared data module.
    Consistency {
        /// The shared data module.
        data: ModuleId,
        /// The distinct levels requested (data module's own + accessors').
        levels: Vec<ConsistencyLevel>,
        /// The strictest-wins resolution.
        resolved: ConsistencyLevel,
    },
    /// An accessor requires stronger protection than the data module has.
    Protection {
        /// The shared data module.
        data: ModuleId,
        /// The accessor whose requirement exceeds the declaration.
        accessor: ModuleId,
        /// The strictest-wins resolution (union of all requirements).
        resolved: DataProtection,
    },
    /// Colocated tasks request incompatible isolation or tenancy.
    Isolation {
        /// First task of the colocate hint.
        a: ModuleId,
        /// Second task of the colocate hint.
        b: ModuleId,
        /// Strictest-wins isolation for the shared unit.
        resolved_isolation: Option<IsolationLevel>,
        /// Strictest-wins tenancy for the shared unit.
        resolved_tenancy: Option<Tenancy>,
    },
    /// Modules in one failure domain request different replication.
    Replication {
        /// The failure domain.
        domain: String,
        /// The distinct factors requested.
        factors: Vec<u32>,
        /// The strictest-wins resolution (maximum).
        resolved: u32,
    },
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::Consistency {
                data,
                levels,
                resolved,
            } => {
                let names: Vec<&str> = levels.iter().map(|l| l.name()).collect();
                write!(
                    f,
                    "data `{data}` accessed with conflicting consistency [{}], strictest = {}",
                    names.join(", "),
                    resolved.name()
                )
            }
            ConflictKind::Protection { data, accessor, .. } => write!(
                f,
                "accessor `{accessor}` requires stronger protection than data `{data}` declares"
            ),
            ConflictKind::Isolation { a, b, .. } => write!(
                f,
                "colocated tasks `{a}` and `{b}` request incompatible isolation/tenancy"
            ),
            ConflictKind::Replication {
                domain,
                factors,
                resolved,
            } => write!(
                f,
                "failure domain `{domain}` has conflicting replication factors {factors:?}, \
                 strictest = {resolved}"
            ),
        }
    }
}

/// The full set of conflicts found in an application.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictReport {
    /// All conflicts, in deterministic order.
    pub conflicts: Vec<ConflictKind>,
}

impl ConflictReport {
    /// True when no conflicts were found.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Number of conflicts.
    pub fn len(&self) -> usize {
        self.conflicts.len()
    }

    /// True when the report is empty.
    pub fn is_empty(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Scans an application for aspect conflicts (§3.4).
///
/// Detection is pure: the app is not modified. Use [`resolve`] to apply
/// a [`ConflictPolicy`].
pub fn detect_conflicts(app: &AppSpec) -> ConflictReport {
    let mut conflicts = Vec::new();

    // Consistency + protection conflicts on shared data modules.
    for data in app.iter_modules().filter(|m| m.kind == ModuleKind::Data) {
        let mut levels: Vec<ConsistencyLevel> = Vec::new();
        if let Some(own) = data.dist.consistency {
            levels.push(own);
        }
        let declared_prot = data.exec_env.protection.unwrap_or(DataProtection::NONE);
        let mut union_prot = declared_prot;
        for e in &app.edges {
            if e.kind != EdgeKind::Access {
                continue;
            }
            let (accessor, touched) = if e.to == data.id {
                (&e.from, &e.to)
            } else if e.from == data.id {
                (&e.to, &e.from)
            } else {
                continue;
            };
            debug_assert_eq!(touched, &data.id);
            if let Some(req) = e.require_consistency {
                if !levels.contains(&req) {
                    levels.push(req);
                }
            }
            if let Some(req) = e.require_protection {
                if !req.subsumed_by(declared_prot) {
                    union_prot = union_prot.union(req);
                    conflicts.push(ConflictKind::Protection {
                        data: data.id.clone(),
                        accessor: accessor.clone(),
                        resolved: union_prot,
                    });
                }
            }
        }
        if levels.len() > 1 {
            let resolved = *levels.iter().max().expect("levels non-empty");
            levels.sort();
            conflicts.push(ConflictKind::Consistency {
                data: data.id.clone(),
                levels,
                resolved,
            });
        }
    }

    // Isolation conflicts on colocated tasks.
    for h in &app.hints {
        let LocalityHint::Colocate(a, b) = h else {
            continue;
        };
        let (Some(ma), Some(mb)) = (app.module(a), app.module(b)) else {
            continue;
        };
        let iso_conflict = match (ma.exec_env.isolation, mb.exec_env.isolation) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        };
        let ten_conflict = match (ma.exec_env.tenancy, mb.exec_env.tenancy) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        };
        if iso_conflict || ten_conflict {
            conflicts.push(ConflictKind::Isolation {
                a: a.clone(),
                b: b.clone(),
                resolved_isolation: ma.exec_env.isolation.max(mb.exec_env.isolation),
                resolved_tenancy: ma.exec_env.tenancy.max(mb.exec_env.tenancy),
            });
        }
    }

    // Replication conflicts within failure domains.
    let mut domains: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for m in app.iter_modules() {
        if let Some(d) = &m.dist.failure_domain {
            domains
                .entry(d.as_str())
                .or_default()
                .push(m.dist.replication);
        }
    }
    for (domain, mut factors) in domains {
        factors.sort_unstable();
        factors.dedup();
        if factors.len() > 1 {
            let resolved = *factors.last().expect("non-empty");
            conflicts.push(ConflictKind::Replication {
                domain: domain.to_string(),
                factors,
                resolved,
            });
        }
    }

    ConflictReport { conflicts }
}

/// Applies a [`ConflictPolicy`] to an application.
///
/// With [`ConflictPolicy::StrictestWins`], returns a copy of the app in
/// which every conflicting aspect has been upgraded to the strictest
/// requirement (the paper's first option). With
/// [`ConflictPolicy::Error`], returns [`SpecError::Conflict`] describing
/// every conflict (the paper's second option). A conflict-free app is
/// returned unchanged under either policy.
pub fn resolve(app: &AppSpec, policy: ConflictPolicy) -> SpecResult<AppSpec> {
    let report = detect_conflicts(app);
    if report.is_clean() {
        return Ok(app.clone());
    }
    match policy {
        ConflictPolicy::Error => {
            let msgs: Vec<String> = report.conflicts.iter().map(|c| c.to_string()).collect();
            Err(SpecError::Conflict(msgs.join("; ")))
        }
        ConflictPolicy::StrictestWins => {
            let mut out = app.clone();
            for c in &report.conflicts {
                match c {
                    ConflictKind::Consistency { data, resolved, .. } => {
                        if let Some(m) = out.modules.get_mut(data) {
                            m.dist.consistency = Some(*resolved);
                        }
                    }
                    ConflictKind::Protection { data, resolved, .. } => {
                        if let Some(m) = out.modules.get_mut(data) {
                            let cur = m.exec_env.protection.unwrap_or(DataProtection::NONE);
                            m.exec_env.protection = Some(cur.union(*resolved));
                        }
                    }
                    ConflictKind::Isolation {
                        a,
                        b,
                        resolved_isolation,
                        resolved_tenancy,
                    } => {
                        for id in [a, b] {
                            if let Some(m) = out.modules.get_mut(id) {
                                if resolved_isolation.is_some() {
                                    m.exec_env.isolation =
                                        m.exec_env.isolation.max(*resolved_isolation);
                                }
                                if resolved_tenancy.is_some() {
                                    m.exec_env.tenancy = m.exec_env.tenancy.max(*resolved_tenancy);
                                }
                            }
                        }
                    }
                    ConflictKind::Replication {
                        domain, resolved, ..
                    } => {
                        for m in out.modules.values_mut() {
                            if m.dist.failure_domain.as_deref() == Some(domain.as_str()) {
                                m.dist.replication = m.dist.replication.max(*resolved);
                            }
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{DistributedAspect, ExecEnvAspect};
    use crate::dag::{DataSpec, TaskSpec};

    fn shared_data_app(a_level: ConsistencyLevel, b_level: ConsistencyLevel) -> AppSpec {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_task(TaskSpec::new("B"));
        app.add_data(DataSpec::new("S"));
        app.add_access_with("A", "S", Some(a_level), None).unwrap();
        app.add_access_with("B", "S", Some(b_level), None).unwrap();
        app
    }

    #[test]
    fn papers_example_sequential_vs_release() {
        let app = shared_data_app(ConsistencyLevel::Sequential, ConsistencyLevel::Release);
        let report = detect_conflicts(&app);
        assert_eq!(report.len(), 1);
        match &report.conflicts[0] {
            ConflictKind::Consistency { data, resolved, .. } => {
                assert_eq!(data.as_str(), "S");
                assert_eq!(*resolved, ConsistencyLevel::Sequential);
            }
            other => panic!("unexpected conflict {other:?}"),
        }
    }

    #[test]
    fn agreeing_accessors_no_conflict() {
        let app = shared_data_app(ConsistencyLevel::Sequential, ConsistencyLevel::Sequential);
        assert!(detect_conflicts(&app).is_clean());
    }

    #[test]
    fn strictest_wins_upgrades_data_module() {
        let app = shared_data_app(ConsistencyLevel::Release, ConsistencyLevel::Sequential);
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        let s = resolved.module(&"S".into()).unwrap();
        assert_eq!(s.dist.consistency, Some(ConsistencyLevel::Sequential));
        // Resolution is idempotent: re-detection finds the same conflict
        // (accessors still disagree) but the resolved level stays fixed.
        let again = resolve(&resolved, ConflictPolicy::StrictestWins).unwrap();
        let s2 = again.module(&"S".into()).unwrap();
        assert_eq!(s2.dist.consistency, Some(ConsistencyLevel::Sequential));
    }

    #[test]
    fn error_policy_reports_all_conflicts() {
        let app = shared_data_app(ConsistencyLevel::Sequential, ConsistencyLevel::Release);
        let err = resolve(&app, ConflictPolicy::Error).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sequential"), "{msg}");
        assert!(msg.contains("release"), "{msg}");
    }

    #[test]
    fn protection_conflict_detected_and_unioned() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_data(DataSpec::new("S")); // No declared protection.
        app.add_access_with("A", "S", None, Some(DataProtection::ENCRYPT_AND_INTEGRITY))
            .unwrap();
        let report = detect_conflicts(&app);
        assert_eq!(report.len(), 1);
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        let s = resolved.module(&"S".into()).unwrap();
        assert_eq!(
            s.exec_env.protection,
            Some(DataProtection::ENCRYPT_AND_INTEGRITY)
        );
    }

    #[test]
    fn protection_subsumed_no_conflict() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_data(
            DataSpec::new("S")
                .with_exec_env(ExecEnvAspect::default().with_protection(DataProtection::FULL)),
        );
        app.add_access_with("A", "S", None, Some(DataProtection::INTEGRITY_ONLY))
            .unwrap();
        assert!(detect_conflicts(&app).is_clean());
    }

    #[test]
    fn isolation_conflict_on_colocated_tasks() {
        let mut app = AppSpec::new("x");
        app.add_task(
            TaskSpec::new("A").with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Weak)),
        );
        app.add_task(
            TaskSpec::new("B").with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Strongest)),
        );
        app.colocate("A", "B").unwrap();
        let report = detect_conflicts(&app);
        assert_eq!(report.len(), 1);
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        for id in ["A", "B"] {
            assert_eq!(
                resolved.module(&id.into()).unwrap().exec_env.isolation,
                Some(IsolationLevel::Strongest)
            );
        }
    }

    #[test]
    fn colocated_without_explicit_isolation_no_conflict() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_task(
            TaskSpec::new("B").with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Strong)),
        );
        app.colocate("A", "B").unwrap();
        // `A` left its isolation to the provider; it adopts B's choice
        // without this being a user-visible conflict.
        assert!(detect_conflicts(&app).is_clean());
    }

    #[test]
    fn replication_conflict_within_failure_domain() {
        let mut app = AppSpec::new("x");
        app.add_data(
            DataSpec::new("S1").with_dist(
                DistributedAspect::default()
                    .replication(3)
                    .failure_domain("d0"),
            ),
        );
        app.add_data(
            DataSpec::new("S2").with_dist(
                DistributedAspect::default()
                    .replication(2)
                    .failure_domain("d0"),
            ),
        );
        let report = detect_conflicts(&app);
        assert_eq!(report.len(), 1);
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).unwrap();
        assert_eq!(resolved.module(&"S1".into()).unwrap().dist.replication, 3);
        assert_eq!(resolved.module(&"S2".into()).unwrap().dist.replication, 3);
    }

    #[test]
    fn distinct_domains_do_not_conflict() {
        let mut app = AppSpec::new("x");
        app.add_data(
            DataSpec::new("S1").with_dist(
                DistributedAspect::default()
                    .replication(3)
                    .failure_domain("d0"),
            ),
        );
        app.add_data(
            DataSpec::new("S2").with_dist(
                DistributedAspect::default()
                    .replication(2)
                    .failure_domain("d1"),
            ),
        );
        assert!(detect_conflicts(&app).is_clean());
    }

    #[test]
    fn clean_app_returned_unchanged() {
        let app = shared_data_app(ConsistencyLevel::Causal, ConsistencyLevel::Causal);
        let resolved = resolve(&app, ConflictPolicy::Error).unwrap();
        assert_eq!(resolved, app);
    }

    #[test]
    fn multiple_conflicts_all_reported() {
        let mut app = shared_data_app(ConsistencyLevel::Sequential, ConsistencyLevel::Release);
        app.add_data(
            DataSpec::new("S1").with_dist(
                DistributedAspect::default()
                    .replication(3)
                    .failure_domain("d0"),
            ),
        );
        app.add_data(
            DataSpec::new("S2").with_dist(
                DistributedAspect::default()
                    .replication(1)
                    .failure_domain("d0"),
            ),
        );
        let report = detect_conflicts(&app);
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn conflict_display_is_readable() {
        let app = shared_data_app(ConsistencyLevel::Sequential, ConsistencyLevel::Release);
        let report = detect_conflicts(&app);
        let text = report.conflicts[0].to_string();
        assert!(text.contains('S'), "{text}");
        assert!(text.contains("strictest"), "{text}");
    }
}
