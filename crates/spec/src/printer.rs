//! Canonical printer for the `.udc` text format.
//!
//! [`print_app`] emits a document that [`crate::parser::parse_app`]
//! parses back to an equal [`AppSpec`] (property-tested round-trip).

use crate::aspect::{
    DataProtection, DistributedAspect, ExecEnvAspect, FailureHandling, OpPreference,
    ResourceAspect, Tenancy,
};
use crate::dag::{AppSpec, EdgeKind, LocalityHint, ModuleKind, ModuleSpec};
use std::fmt::Write as _;

/// Renders an application spec in canonical `.udc` form.
pub fn print_app(app: &AppSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "app {} {{", app.name);
    for m in app.iter_modules() {
        print_module(&mut out, m);
    }
    for e in &app.edges {
        match e.kind {
            EdgeKind::Dependency => {
                let _ = writeln!(out, "  edge {} -> {}", e.from, e.to);
            }
            EdgeKind::Access => {
                let _ = write!(out, "  access {} -> {}", e.from, e.to);
                let mut attrs: Vec<String> = Vec::new();
                if let Some(c) = e.require_consistency {
                    attrs.push(format!("consistency = {}", c.name()));
                }
                if let Some(p) = e.require_protection {
                    attrs.push(format!("protect = {}", protection_str(p)));
                }
                if !attrs.is_empty() {
                    let _ = write!(out, " [{}]", attrs.join("; "));
                }
                out.push('\n');
            }
        }
    }
    for h in &app.hints {
        match h {
            LocalityHint::Colocate(a, b) => {
                let _ = writeln!(out, "  colocate {a} {b}");
            }
            LocalityHint::Affinity { task, data } => {
                let _ = writeln!(out, "  affinity {task} {data}");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn print_module(out: &mut String, m: &ModuleSpec) {
    let kw = match m.kind {
        ModuleKind::Task => "task",
        ModuleKind::Data => "data",
    };
    let _ = write!(out, "  {kw} {}", m.id);
    if let Some(d) = &m.description {
        let _ = write!(out, " \"{d}\"");
    }
    let mut body: Vec<String> = Vec::new();
    if !m.resource.is_unspecified() {
        body.push(resource_str(&m.resource));
    }
    if !m.exec_env.is_unspecified() {
        body.push(exec_str(&m.exec_env));
    }
    if !m.dist.is_unspecified() {
        body.push(dist_str(&m.dist));
    }
    if let Some(w) = m.work_units {
        body.push(format!("work = {w}"));
    }
    if let Some(b) = m.bytes {
        body.push(format!("bytes = {b}"));
    }
    if body.is_empty() {
        out.push('\n');
    } else {
        let _ = writeln!(out, " {{");
        for line in body {
            let _ = writeln!(out, "    {line}");
        }
        out.push_str("  }\n");
    }
}

fn resource_str(r: &ResourceAspect) -> String {
    let mut attrs: Vec<String> = Vec::new();
    if let Some(g) = r.goal {
        attrs.push(format!("goal = {}", g.name()));
    }
    if !r.demand.is_zero() {
        let parts: Vec<String> = r.demand.iter().map(|(k, v)| format!("{v}{k}")).collect();
        attrs.push(format!("demand = {}", parts.join("+")));
    }
    if !r.candidates.is_empty() {
        let names: Vec<&str> = r.candidates.iter().map(|k| k.name()).collect();
        attrs.push(format!("candidates = {}", names.join(", ")));
    }
    format!("resource {{ {} }}", attrs.join("; "))
}

fn exec_str(e: &ExecEnvAspect) -> String {
    let mut attrs: Vec<String> = Vec::new();
    if let Some(i) = e.isolation {
        attrs.push(format!("isolation = {}", i.name()));
    }
    if let Some(t) = e.tenancy {
        attrs.push(format!(
            "tenancy = {}",
            match t {
                Tenancy::Shared => "shared",
                Tenancy::SingleTenant => "single_tenant",
            }
        ));
    }
    if e.tee_if_cpu {
        attrs.push("tee_if_cpu = true".to_string());
    }
    if let Some(p) = e.protection {
        attrs.push(format!("protect = {}", protection_str(p)));
    }
    format!("exec {{ {} }}", attrs.join("; "))
}

fn dist_str(d: &DistributedAspect) -> String {
    let mut attrs: Vec<String> = Vec::new();
    if d.replication != 1 {
        attrs.push(format!("replication = {}", d.replication));
    }
    if let Some(c) = d.consistency {
        attrs.push(format!("consistency = {}", c.name()));
    }
    if d.preference != OpPreference::None {
        attrs.push(format!("preference = {}", d.preference.name()));
    }
    if let Some(f) = d.failure {
        attrs.push(match f {
            FailureHandling::Reexecute => "failure = reexecute".to_string(),
            FailureHandling::Checkpoint { interval_ms } => {
                format!("failure = checkpoint({interval_ms})")
            }
        });
    }
    if let Some(dom) = &d.failure_domain {
        attrs.push(format!("domain = \"{dom}\""));
    }
    format!("dist {{ {} }}", attrs.join("; "))
}

fn protection_str(p: DataProtection) -> String {
    let mut flags: Vec<&str> = Vec::new();
    if p.confidentiality {
        flags.push("confidentiality");
    }
    if p.integrity {
        flags.push("integrity");
    }
    if p.replay {
        flags.push("replay");
    }
    if flags.is_empty() {
        flags.push("none");
    }
    flags.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{ConsistencyLevel, Goal, IsolationLevel, ResourceKind};
    use crate::dag::{DataSpec, TaskSpec};
    use crate::parser::parse_app;

    fn rich_app() -> AppSpec {
        let mut app = AppSpec::new("rich");
        app.add_task(
            TaskSpec::new("A1")
                .describe("preprocess")
                .with_resource(
                    ResourceAspect::goal(Goal::Fastest)
                        .with_candidate(ResourceKind::Cpu)
                        .with_candidate(ResourceKind::Gpu),
                )
                .with_exec_env(
                    ExecEnvAspect::isolation(IsolationLevel::Strong)
                        .with_tee_if_cpu()
                        .with_tenancy(Tenancy::SingleTenant),
                )
                .with_work(10),
        );
        app.add_data(
            DataSpec::new("S1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Ssd, 8192))
                .with_exec_env(
                    ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
                )
                .with_dist(
                    DistributedAspect::default()
                        .replication(3)
                        .consistency(ConsistencyLevel::Sequential)
                        .preference(OpPreference::Reader)
                        .failure(FailureHandling::Checkpoint { interval_ms: 250 })
                        .failure_domain("d0"),
                )
                .with_bytes(1 << 20),
        );
        app.add_access_with(
            "A1",
            "S1",
            Some(ConsistencyLevel::Sequential),
            Some(DataProtection::INTEGRITY_ONLY),
        )
        .unwrap();
        app.affinity("A1", "S1").unwrap();
        app
    }

    #[test]
    fn round_trip_rich_app() {
        let app = rich_app();
        let text = print_app(&app);
        let back = parse_app(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(back, app, "round-trip mismatch; printed:\n{text}");
    }

    #[test]
    fn round_trip_minimal_app() {
        let mut app = AppSpec::new("min");
        app.add_task(TaskSpec::new("T"));
        let back = parse_app(&print_app(&app)).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn printed_form_is_stable() {
        let app = rich_app();
        let once = print_app(&app);
        let twice = print_app(&parse_app(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn protection_none_prints_and_parses() {
        let mut app = AppSpec::new("p");
        app.add_task(TaskSpec::new("T"));
        app.add_data(DataSpec::new("S"));
        app.add_access_with("T", "S", None, Some(DataProtection::NONE))
            .unwrap();
        let text = print_app(&app);
        let back = parse_app(&text).unwrap();
        assert_eq!(back.edges[0].require_protection, Some(DataProtection::NONE));
    }
}
