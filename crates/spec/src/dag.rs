//! Application DAGs of modules (§3.1).
//!
//! A user program is "a DAG of modules. A module could be a code block
//! representing a task (e.g., A1 to A4, B1 and B2) or one or more data
//! structures representing a set of data (S1 to S4), and edges across
//! modules represent their dependencies." The DAG is enhanced with
//! *locality hints* ("executed together on the same hardware unit", "a
//! data object is frequently used by a computation task").

use crate::aspect::{DistributedAspect, ExecEnvAspect, ResourceAspect};
use crate::error::{SpecError, SpecResult};
use crate::ids::{AppName, ModuleId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a module is executable code or passive data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ModuleKind {
    /// A code block representing a task (A1–A4, B1–B2 in Fig. 2).
    Task,
    /// One or more data structures (S1–S4 in Fig. 2).
    Data,
}

/// Kinds of edges between modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EdgeKind {
    /// One task follows another task (control/data-flow dependency).
    Dependency,
    /// A task module accessing a data module.
    Access,
}

/// A directed edge in the application DAG.
///
/// `Access` edges may carry per-access requirements: the consistency
/// level and data protection *this* accessor needs when touching the data
/// module. These are the source of the spec conflicts §3.4 discusses
/// ("two modules sharing data and one specified as sequential consistency
/// and the other as release consistency") — see [`crate::conflict`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source module.
    pub from: ModuleId,
    /// Destination module.
    pub to: ModuleId,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Consistency this accessor requires of the data module
    /// (access edges only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub require_consistency: Option<crate::aspect::ConsistencyLevel>,
    /// Protection this accessor requires for the data module
    /// (access edges only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub require_protection: Option<crate::aspect::DataProtection>,
}

/// A locality hint guiding the runtime scheduler (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum LocalityHint {
    /// Execute two task modules on the same hardware unit (e.g. A1, A2).
    Colocate(ModuleId, ModuleId),
    /// A data module is frequently used by a task (e.g. S1 by A3):
    /// place them near each other.
    Affinity {
        /// The task module.
        task: ModuleId,
        /// The data module it frequently accesses.
        data: ModuleId,
    },
}

impl LocalityHint {
    /// The two module ids the hint relates.
    pub fn endpoints(&self) -> (&ModuleId, &ModuleId) {
        match self {
            LocalityHint::Colocate(a, b) => (a, b),
            LocalityHint::Affinity { task, data } => (task, data),
        }
    }
}

/// One module of an application: kind, human description, and the three
/// aspects (each optional, Design Principle 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Unique id within the app.
    pub id: ModuleId,
    /// Task or data.
    pub kind: ModuleKind,
    /// Optional human-readable description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Resource aspect (§3.2).
    #[serde(default, skip_serializing_if = "ResourceAspect::is_unspecified")]
    pub resource: ResourceAspect,
    /// Execution-environment aspect (§3.3).
    #[serde(default, skip_serializing_if = "ExecEnvAspect::is_unspecified")]
    pub exec_env: ExecEnvAspect,
    /// Distributed aspect (§3.4).
    #[serde(default, skip_serializing_if = "DistributedAspect::is_unspecified")]
    pub dist: DistributedAspect,
    /// Estimated work in abstract compute units (used by the simulator to
    /// derive runtimes; a dry-run profile would populate this in §3.2).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub work_units: Option<u64>,
    /// Estimated size of the module's output / data set in bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bytes: Option<u64>,
}

/// Builder for a task module.
#[derive(Debug, Clone)]
pub struct TaskSpec(ModuleSpec);

impl TaskSpec {
    /// Creates a task module with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a valid identifier (see [`ModuleId::new`]).
    pub fn new(id: &str) -> Self {
        Self(ModuleSpec {
            id: ModuleId::from(id),
            kind: ModuleKind::Task,
            description: None,
            resource: ResourceAspect::default(),
            exec_env: ExecEnvAspect::default(),
            dist: DistributedAspect::default(),
            work_units: None,
            bytes: None,
        })
    }

    /// Sets the human-readable description.
    pub fn describe(mut self, d: impl Into<String>) -> Self {
        self.0.description = Some(d.into());
        self
    }

    /// Sets the resource aspect.
    pub fn with_resource(mut self, r: ResourceAspect) -> Self {
        self.0.resource = r;
        self
    }

    /// Sets the execution-environment aspect.
    pub fn with_exec_env(mut self, e: ExecEnvAspect) -> Self {
        self.0.exec_env = e;
        self
    }

    /// Sets the distributed aspect.
    pub fn with_dist(mut self, d: DistributedAspect) -> Self {
        self.0.dist = d;
        self
    }

    /// Sets the estimated work units.
    pub fn with_work(mut self, units: u64) -> Self {
        self.0.work_units = Some(units);
        self
    }

    /// Sets the estimated output size in bytes.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.0.bytes = Some(bytes);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ModuleSpec {
        self.0
    }
}

/// Builder for a data module.
#[derive(Debug, Clone)]
pub struct DataSpec(ModuleSpec);

impl DataSpec {
    /// Creates a data module with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a valid identifier (see [`ModuleId::new`]).
    pub fn new(id: &str) -> Self {
        Self(ModuleSpec {
            id: ModuleId::from(id),
            kind: ModuleKind::Data,
            description: None,
            resource: ResourceAspect::default(),
            exec_env: ExecEnvAspect::default(),
            dist: DistributedAspect::default(),
            work_units: None,
            bytes: None,
        })
    }

    /// Sets the human-readable description.
    pub fn describe(mut self, d: impl Into<String>) -> Self {
        self.0.description = Some(d.into());
        self
    }

    /// Sets the resource aspect.
    pub fn with_resource(mut self, r: ResourceAspect) -> Self {
        self.0.resource = r;
        self
    }

    /// Sets the execution-environment aspect.
    pub fn with_exec_env(mut self, e: ExecEnvAspect) -> Self {
        self.0.exec_env = e;
        self
    }

    /// Sets the distributed aspect.
    pub fn with_dist(mut self, d: DistributedAspect) -> Self {
        self.0.dist = d;
        self
    }

    /// Sets the data-set size in bytes.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.0.bytes = Some(bytes);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ModuleSpec {
        self.0
    }
}

/// A complete application specification: modules, edges and locality
/// hints. This is the unit a tenant submits to the UDC control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name.
    pub name: AppName,
    /// Modules keyed by id (BTreeMap for deterministic iteration).
    pub modules: BTreeMap<ModuleId, ModuleSpec>,
    /// DAG edges.
    pub edges: Vec<Edge>,
    /// Locality hints.
    pub hints: Vec<LocalityHint>,
}

impl AppSpec {
    /// Creates an empty application.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a valid identifier.
    pub fn new(name: &str) -> Self {
        Self {
            name: AppName::new(name).unwrap_or_else(|| panic!("invalid app name: {name:?}")),
            modules: BTreeMap::new(),
            edges: Vec::new(),
            hints: Vec::new(),
        }
    }

    /// Adds a task module. Replaces any existing module with the same id.
    pub fn add_task(&mut self, t: TaskSpec) -> &mut Self {
        let m = t.build();
        self.modules.insert(m.id.clone(), m);
        self
    }

    /// Adds a data module. Replaces any existing module with the same id.
    pub fn add_data(&mut self, d: DataSpec) -> &mut Self {
        let m = d.build();
        self.modules.insert(m.id.clone(), m);
        self
    }

    /// Adds a pre-built module.
    pub fn add_module(&mut self, m: ModuleSpec) -> &mut Self {
        self.modules.insert(m.id.clone(), m);
        self
    }

    /// Adds an edge between two existing modules.
    ///
    /// Returns [`SpecError::UnknownModule`] if either endpoint does not
    /// exist, and [`SpecError::InvalidEdge`] for self-loops.
    pub fn add_edge(&mut self, from: &str, to: &str, kind: EdgeKind) -> SpecResult<()> {
        let from = self.lookup(from)?;
        let to = self.lookup(to)?;
        if from == to {
            return Err(SpecError::InvalidEdge {
                from: from.to_string(),
                to: to.to_string(),
                reason: "self-loop".into(),
            });
        }
        self.edges.push(Edge {
            from,
            to,
            kind,
            require_consistency: None,
            require_protection: None,
        });
        Ok(())
    }

    /// Adds an `Access` edge carrying per-access requirements (the inputs
    /// to conflict detection, §3.4).
    pub fn add_access_with(
        &mut self,
        from: &str,
        to: &str,
        require_consistency: Option<crate::aspect::ConsistencyLevel>,
        require_protection: Option<crate::aspect::DataProtection>,
    ) -> SpecResult<()> {
        let from = self.lookup(from)?;
        let to = self.lookup(to)?;
        if from == to {
            return Err(SpecError::InvalidEdge {
                from: from.to_string(),
                to: to.to_string(),
                reason: "self-loop".into(),
            });
        }
        self.edges.push(Edge {
            from,
            to,
            kind: EdgeKind::Access,
            require_consistency,
            require_protection,
        });
        Ok(())
    }

    /// Adds a colocate hint between two task modules.
    pub fn colocate(&mut self, a: &str, b: &str) -> SpecResult<()> {
        let a = self.lookup(a)?;
        let b = self.lookup(b)?;
        self.hints.push(LocalityHint::Colocate(a, b));
        Ok(())
    }

    /// Adds a task→data affinity hint.
    pub fn affinity(&mut self, task: &str, data: &str) -> SpecResult<()> {
        let task = self.lookup(task)?;
        let data = self.lookup(data)?;
        self.hints.push(LocalityHint::Affinity { task, data });
        Ok(())
    }

    /// Looks up a module id by name.
    pub fn lookup(&self, name: &str) -> SpecResult<ModuleId> {
        let id = ModuleId::new(name).ok_or_else(|| SpecError::UnknownModule(name.to_string()))?;
        if self.modules.contains_key(&id) {
            Ok(id)
        } else {
            Err(SpecError::UnknownModule(name.to_string()))
        }
    }

    /// Returns the module with the given id, if present.
    pub fn module(&self, id: &ModuleId) -> Option<&ModuleSpec> {
        self.modules.get(id)
    }

    /// Iterates over modules in deterministic (id) order.
    pub fn iter_modules(&self) -> impl Iterator<Item = &ModuleSpec> {
        self.modules.values()
    }

    /// Task modules only.
    pub fn tasks(&self) -> impl Iterator<Item = &ModuleSpec> {
        self.iter_modules().filter(|m| m.kind == ModuleKind::Task)
    }

    /// Data modules only.
    pub fn data(&self) -> impl Iterator<Item = &ModuleSpec> {
        self.iter_modules().filter(|m| m.kind == ModuleKind::Data)
    }

    /// Outgoing edges of `id`.
    pub fn edges_from<'a>(&'a self, id: &'a ModuleId) -> impl Iterator<Item = &'a Edge> {
        self.edges.iter().filter(move |e| &e.from == id)
    }

    /// Incoming edges of `id`.
    pub fn edges_to<'a>(&'a self, id: &'a ModuleId) -> impl Iterator<Item = &'a Edge> {
        self.edges.iter().filter(move |e| &e.to == id)
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when the app has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The task modules that access a data module, per the `Access` edges
    /// (in either direction — tasks may read from or write to data).
    pub fn accessors_of<'a>(&'a self, data: &'a ModuleId) -> Vec<&'a ModuleId> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.kind != EdgeKind::Access {
                continue;
            }
            if &e.to == data {
                out.push(&e.from);
            } else if &e.from == data {
                out.push(&e.to);
            }
        }
        out
    }

    /// Validates the application (see [`crate::validate`]).
    pub fn validate(&self) -> SpecResult<()> {
        crate::validate::validate(self)
    }

    /// Returns the modules in a topological order of the `Dependency`
    /// edges, or an error if those edges contain a cycle.
    pub fn topo_order(&self) -> SpecResult<Vec<ModuleId>> {
        crate::validate::topo_order(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::Goal;

    fn two_module_app() -> AppSpec {
        let mut app = AppSpec::new("t");
        app.add_task(TaskSpec::new("A1").with_resource(ResourceAspect::goal(Goal::Fastest)));
        app.add_data(DataSpec::new("S1").with_bytes(1024));
        app
    }

    #[test]
    fn add_and_lookup_modules() {
        let app = two_module_app();
        assert_eq!(app.len(), 2);
        assert_eq!(app.tasks().count(), 1);
        assert_eq!(app.data().count(), 1);
        assert!(app.lookup("A1").is_ok());
        assert!(matches!(
            app.lookup("missing"),
            Err(SpecError::UnknownModule(_))
        ));
    }

    #[test]
    fn edges_require_existing_endpoints() {
        let mut app = two_module_app();
        assert!(app.add_edge("A1", "S1", EdgeKind::Access).is_ok());
        assert!(app.add_edge("A1", "nope", EdgeKind::Dependency).is_err());
        assert!(app.add_edge("nope", "A1", EdgeKind::Dependency).is_err());
    }

    #[test]
    fn self_loops_rejected() {
        let mut app = two_module_app();
        let err = app.add_edge("A1", "A1", EdgeKind::Dependency).unwrap_err();
        assert!(matches!(err, SpecError::InvalidEdge { .. }));
    }

    #[test]
    fn hints_require_existing_modules() {
        let mut app = two_module_app();
        assert!(app.affinity("A1", "S1").is_ok());
        assert!(app.colocate("A1", "ghost").is_err());
        assert_eq!(app.hints.len(), 1);
        let (a, b) = app.hints[0].endpoints();
        assert_eq!(a.as_str(), "A1");
        assert_eq!(b.as_str(), "S1");
    }

    #[test]
    fn accessors_found_in_both_directions() {
        let mut app = two_module_app();
        app.add_task(TaskSpec::new("A2"));
        app.add_edge("A1", "S1", EdgeKind::Access).unwrap();
        app.add_edge("S1", "A2", EdgeKind::Access).unwrap();
        let s1 = ModuleId::from("S1");
        let acc = app.accessors_of(&s1);
        let names: Vec<&str> = acc.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, vec!["A1", "A2"]);
    }

    #[test]
    fn replacing_module_keeps_single_entry() {
        let mut app = two_module_app();
        app.add_task(TaskSpec::new("A1").with_work(99));
        assert_eq!(app.len(), 2);
        assert_eq!(
            app.module(&ModuleId::from("A1")).unwrap().work_units,
            Some(99)
        );
    }

    #[test]
    fn json_round_trip() {
        let mut app = two_module_app();
        app.add_edge("A1", "S1", EdgeKind::Access).unwrap();
        app.affinity("A1", "S1").unwrap();
        let js = serde_json::to_string_pretty(&app).unwrap();
        let back: AppSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(back, app);
    }
}
