//! Identifier newtypes shared across the spec.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Name of a module (task or data) inside an application DAG.
///
/// Module ids are user-chosen strings such as `A1` or `S3` (Fig. 2 of the
/// paper). They must be non-empty and consist of ASCII alphanumerics,
/// `_` or `-`; [`ModuleId::new`] enforces this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ModuleId(String);

impl ModuleId {
    /// Creates a module id, returning `None` when `name` is not a valid
    /// identifier (empty, or containing characters outside
    /// `[A-Za-z0-9_-]`).
    pub fn new(name: impl Into<String>) -> Option<Self> {
        let name = name.into();
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return None;
        }
        Some(Self(name))
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModuleId {
    /// Converts from a string literal.
    ///
    /// # Panics
    ///
    /// Panics when `s` is not a valid identifier. Use [`ModuleId::new`]
    /// for fallible construction.
    fn from(s: &str) -> Self {
        ModuleId::new(s).unwrap_or_else(|| panic!("invalid module id: {s:?}"))
    }
}

/// Name of an application (the DAG as a whole).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AppName(String);

impl AppName {
    /// Creates an application name; same identifier rules as [`ModuleId`].
    pub fn new(name: impl Into<String>) -> Option<Self> {
        let name = name.into();
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return None;
        }
        Some(Self(name))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_module_ids() {
        for ok in ["A1", "S3", "pre-process", "nlp_infer", "x"] {
            assert!(ModuleId::new(ok).is_some(), "{ok} should be valid");
        }
    }

    #[test]
    fn invalid_module_ids() {
        for bad in ["", "a b", "A1!", "é", "x.y"] {
            assert!(ModuleId::new(bad).is_none(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn display_round_trip() {
        let id = ModuleId::new("A1").unwrap();
        assert_eq!(id.to_string(), "A1");
        assert_eq!(id.as_str(), "A1");
    }

    #[test]
    fn app_name_rules_match_module_rules() {
        assert!(AppName::new("medical").is_some());
        assert!(AppName::new("").is_none());
        assert!(AppName::new("a b").is_none());
    }

    #[test]
    fn module_id_serde_is_transparent() {
        let id = ModuleId::new("A1").unwrap();
        let js = serde_json::to_string(&id).unwrap();
        assert_eq!(js, "\"A1\"");
        let back: ModuleId = serde_json::from_str(&js).unwrap();
        assert_eq!(back, id);
    }
}
