//! Error types for specification handling.

use std::fmt;

/// Result alias for spec operations.
pub type SpecResult<T> = Result<T, SpecError>;

/// Errors produced while building, validating or parsing specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A referenced module does not exist in the application.
    UnknownModule(String),
    /// An edge is structurally invalid (self-loop, wrong kinds, ...).
    InvalidEdge {
        /// Source endpoint.
        from: String,
        /// Destination endpoint.
        to: String,
        /// Why the edge was rejected.
        reason: String,
    },
    /// The `Dependency` edges contain a cycle involving this module.
    Cycle(String),
    /// A module-level validation failure.
    InvalidModule {
        /// The offending module.
        module: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Aspect specifications on shared data conflict and the policy was
    /// [`crate::conflict::ConflictPolicy::Error`].
    Conflict(String),
    /// A parse error in the `.udc` text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An application-level validation failure.
    InvalidApp(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            SpecError::InvalidEdge { from, to, reason } => {
                write!(f, "invalid edge {from} -> {to}: {reason}")
            }
            SpecError::Cycle(m) => write!(f, "dependency cycle involving `{m}`"),
            SpecError::InvalidModule { module, reason } => {
                write!(f, "invalid module `{module}`: {reason}")
            }
            SpecError::Conflict(msg) => write!(f, "conflicting specifications: {msg}"),
            SpecError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SpecError::InvalidApp(msg) => write!(f, "invalid application: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpecError::UnknownModule("A9".into());
        assert!(e.to_string().contains("A9"));
        let e = SpecError::Parse {
            line: 7,
            message: "expected `{`".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = SpecError::Cycle("A1".into());
        assert!(e.to_string().contains("cycle"));
    }
}
