//! # udc-spec — the UDC aspect-specification language
//!
//! Implements §3 of the paper: applications are DAGs of fine-grained
//! *modules* (tasks and data), and each module carries up to three
//! orthogonal, declaratively specified *aspects*:
//!
//! 1. **Resource aspect** (§3.2) — what hardware a module needs, as exact
//!    demands, a candidate set, or a goal (`fastest` / `cheapest`).
//! 2. **Execution-environment aspect** (§3.3) — isolation level, tenancy,
//!    and data-protection requirements (confidentiality, integrity, replay
//!    protection).
//! 3. **Distributed aspect** (§3.4) — replication factor, consistency
//!    level, operation preference, failure domain, and failure handling.
//!
//! Aspects are *decoupled* from each other and from their realization
//! (Design Principle 2): any aspect may be omitted, in which case the
//! provider default applies ("falling back to today's cloud").
//!
//! The crate also provides:
//! - locality hints (`colocate`, `affinity`) used by the runtime scheduler
//!   (§3.1),
//! - DAG validation,
//! - conflict detection for incompatible aspects on shared data (§3.4),
//!   with both strictest-wins resolution and error reporting,
//! - a declarative text format (`.udc`) with a parser and canonical
//!   printer, plus JSON via serde.
//!
//! # Examples
//!
//! ```
//! use udc_spec::prelude::*;
//!
//! let mut app = AppSpec::new("demo");
//! app.add_task(TaskSpec::new("A1").with_resource(ResourceAspect::goal(Goal::Fastest)));
//! app.add_data(DataSpec::new("S1").with_dist(
//!     DistributedAspect::default().replication(3).consistency(ConsistencyLevel::Sequential),
//! ));
//! app.add_edge("A1", "S1", EdgeKind::Access).unwrap();
//! app.validate().unwrap();
//! ```

pub mod aspect;
pub mod conflict;
pub mod dag;
pub mod error;
pub mod ids;
pub mod parser;
pub mod printer;
pub mod validate;

pub use aspect::{
    ConsistencyLevel, DataProtection, DistributedAspect, ExecEnvAspect, FailureHandling, Goal,
    IsolationLevel, OpPreference, ResourceAspect, ResourceKind, ResourceVector, Tenancy,
};
pub use conflict::{detect_conflicts, resolve, ConflictKind, ConflictPolicy, ConflictReport};
pub use dag::{AppSpec, DataSpec, EdgeKind, LocalityHint, ModuleKind, ModuleSpec, TaskSpec};
pub use error::{SpecError, SpecResult};
pub use ids::{AppName, ModuleId};
pub use parser::parse_app;
pub use printer::print_app;

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::aspect::{
        ConsistencyLevel, DataProtection, DistributedAspect, ExecEnvAspect, FailureHandling, Goal,
        IsolationLevel, OpPreference, ResourceAspect, ResourceKind, ResourceVector, Tenancy,
    };
    pub use crate::conflict::{detect_conflicts, resolve, ConflictPolicy};
    pub use crate::dag::{AppSpec, DataSpec, EdgeKind, LocalityHint, ModuleKind, TaskSpec};
    pub use crate::error::{SpecError, SpecResult};
    pub use crate::ids::ModuleId;
    pub use crate::parser::parse_app;
    pub use crate::printer::print_app;
}
