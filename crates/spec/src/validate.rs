//! Structural validation of application specifications.
//!
//! Checks the properties the control plane relies on before compiling an
//! app to IR: the dependency subgraph is acyclic, edges have sensible
//! endpoint kinds, hints reference appropriate module kinds, and each
//! module's aspects are internally coherent.

use crate::aspect::{IsolationLevel, Tenancy};
use crate::dag::{AppSpec, EdgeKind, LocalityHint, ModuleKind};
use crate::error::{SpecError, SpecResult};
use crate::ids::ModuleId;
use std::collections::{BTreeMap, VecDeque};

/// Maximum replication factor we accept. Table 1 uses at most 3; we allow
/// headroom but reject absurd values that would exhaust the simulator.
pub const MAX_REPLICATION: u32 = 16;

/// Validates an application specification.
///
/// Checks, in order:
/// 1. every edge endpoint exists (guaranteed by [`AppSpec::add_edge`] but
///    re-checked for deserialized specs);
/// 2. `Dependency` edges connect two tasks; `Access` edges connect a task
///    and a data module;
/// 3. the `Dependency` subgraph is acyclic;
/// 4. `Colocate` hints connect two tasks, `Affinity` hints a task and a
///    data module;
/// 5. per-module coherence: replication within bounds, consistency levels
///    only on data modules, checkpoint intervals non-zero, and isolation /
///    tenancy combinations consistent (e.g. `Strongest` implies
///    single-tenant, so an explicit `Shared` tenancy contradicts it).
pub fn validate(app: &AppSpec) -> SpecResult<()> {
    if app.is_empty() {
        return Err(SpecError::InvalidApp("application has no modules".into()));
    }

    for e in &app.edges {
        let from = app
            .module(&e.from)
            .ok_or_else(|| SpecError::UnknownModule(e.from.to_string()))?;
        let to = app
            .module(&e.to)
            .ok_or_else(|| SpecError::UnknownModule(e.to.to_string()))?;
        if e.from == e.to {
            return Err(SpecError::InvalidEdge {
                from: e.from.to_string(),
                to: e.to.to_string(),
                reason: "self-loop".into(),
            });
        }
        match e.kind {
            EdgeKind::Dependency => {
                if e.require_consistency.is_some() || e.require_protection.is_some() {
                    return Err(SpecError::InvalidEdge {
                        from: e.from.to_string(),
                        to: e.to.to_string(),
                        reason: "access requirements are only valid on access edges".into(),
                    });
                }
                if from.kind != ModuleKind::Task || to.kind != ModuleKind::Task {
                    return Err(SpecError::InvalidEdge {
                        from: e.from.to_string(),
                        to: e.to.to_string(),
                        reason: "dependency edges must connect two tasks".into(),
                    });
                }
            }
            EdgeKind::Access => {
                let task_data = from.kind == ModuleKind::Task && to.kind == ModuleKind::Data;
                let data_task = from.kind == ModuleKind::Data && to.kind == ModuleKind::Task;
                if !task_data && !data_task {
                    return Err(SpecError::InvalidEdge {
                        from: e.from.to_string(),
                        to: e.to.to_string(),
                        reason: "access edges must connect a task and a data module".into(),
                    });
                }
            }
        }
    }

    topo_order(app)?;

    for h in &app.hints {
        match h {
            LocalityHint::Colocate(a, b) => {
                for id in [a, b] {
                    let m = app
                        .module(id)
                        .ok_or_else(|| SpecError::UnknownModule(id.to_string()))?;
                    if m.kind != ModuleKind::Task {
                        return Err(SpecError::InvalidApp(format!(
                            "colocate hint references non-task module `{id}`"
                        )));
                    }
                }
            }
            LocalityHint::Affinity { task, data } => {
                let t = app
                    .module(task)
                    .ok_or_else(|| SpecError::UnknownModule(task.to_string()))?;
                let d = app
                    .module(data)
                    .ok_or_else(|| SpecError::UnknownModule(data.to_string()))?;
                if t.kind != ModuleKind::Task || d.kind != ModuleKind::Data {
                    return Err(SpecError::InvalidApp(format!(
                        "affinity hint must pair a task with a data module ({task}, {data})"
                    )));
                }
            }
        }
    }

    for m in app.iter_modules() {
        let id = m.id.to_string();
        if m.dist.replication == 0 {
            return Err(SpecError::InvalidModule {
                module: id,
                reason: "replication factor must be at least 1".into(),
            });
        }
        if m.dist.replication > MAX_REPLICATION {
            return Err(SpecError::InvalidModule {
                module: id,
                reason: format!(
                    "replication factor {} exceeds maximum {MAX_REPLICATION}",
                    m.dist.replication
                ),
            });
        }
        if m.kind == ModuleKind::Task && m.dist.consistency.is_some() {
            return Err(SpecError::InvalidModule {
                module: id,
                reason: "consistency levels apply to data modules only".into(),
            });
        }
        if let Some(crate::aspect::FailureHandling::Checkpoint { interval_ms }) = m.dist.failure {
            if interval_ms == 0 {
                return Err(SpecError::InvalidModule {
                    module: id,
                    reason: "checkpoint interval must be non-zero".into(),
                });
            }
        }
        if m.exec_env.isolation == Some(IsolationLevel::Strongest)
            && m.exec_env.tenancy == Some(Tenancy::Shared)
        {
            return Err(SpecError::InvalidModule {
                module: id,
                reason: "strongest isolation requires single-tenant hardware, \
                         but tenancy = shared was specified"
                    .into(),
            });
        }
        if let Some(0) = m.work_units {
            return Err(SpecError::InvalidModule {
                module: id,
                reason: "work_units, when given, must be non-zero".into(),
            });
        }
    }

    Ok(())
}

/// Kahn topological sort over the `Dependency` edges.
///
/// Data modules and tasks without dependencies appear first (in id
/// order); returns [`SpecError::Cycle`] naming one module on a cycle.
pub fn topo_order(app: &AppSpec) -> SpecResult<Vec<ModuleId>> {
    let mut indeg: BTreeMap<&ModuleId, usize> = app.modules.keys().map(|k| (k, 0)).collect();
    for e in &app.edges {
        if e.kind == EdgeKind::Dependency {
            if let Some(d) = indeg.get_mut(&e.to) {
                *d += 1;
            }
        }
    }
    let mut queue: VecDeque<&ModuleId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&k, _)| k)
        .collect();
    let mut order = Vec::with_capacity(app.len());
    while let Some(id) = queue.pop_front() {
        order.push(id.clone());
        for e in app.edges_from(id) {
            if e.kind != EdgeKind::Dependency {
                continue;
            }
            if let Some(d) = indeg.get_mut(&e.to) {
                *d -= 1;
                if *d == 0 {
                    queue.push_back(&e.to);
                }
            }
        }
    }
    if order.len() != app.len() {
        let stuck = indeg
            .iter()
            .find(|(_, &d)| d > 0)
            .map(|(k, _)| k.to_string())
            .unwrap_or_default();
        return Err(SpecError::Cycle(stuck));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{
        ConsistencyLevel, DistributedAspect, ExecEnvAspect, FailureHandling, IsolationLevel,
        Tenancy,
    };
    use crate::dag::{DataSpec, TaskSpec};

    fn chain(n: usize) -> AppSpec {
        let mut app = AppSpec::new("chain");
        for i in 0..n {
            app.add_task(TaskSpec::new(&format!("T{i}")));
        }
        for i in 1..n {
            app.add_edge(
                &format!("T{}", i - 1),
                &format!("T{i}"),
                EdgeKind::Dependency,
            )
            .unwrap();
        }
        app
    }

    #[test]
    fn empty_app_invalid() {
        let app = AppSpec::new("empty");
        assert!(matches!(app.validate(), Err(SpecError::InvalidApp(_))));
    }

    #[test]
    fn chain_is_valid_and_topo_ordered() {
        let app = chain(5);
        app.validate().unwrap();
        let order = app.topo_order().unwrap();
        let pos: std::collections::HashMap<_, _> = order
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i))
            .collect();
        for e in &app.edges {
            assert!(pos[&e.from] < pos[&e.to], "{} before {}", e.from, e.to);
        }
    }

    #[test]
    fn cycle_detected() {
        let mut app = chain(3);
        app.add_edge("T2", "T0", EdgeKind::Dependency).unwrap();
        assert!(matches!(app.validate(), Err(SpecError::Cycle(_))));
    }

    #[test]
    fn dependency_edge_to_data_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_data(DataSpec::new("S"));
        // Bypass add_edge's checks by pushing directly, as a deserialized
        // spec could contain this.
        app.edges.push(crate::dag::Edge {
            from: "A".into(),
            to: "S".into(),
            kind: EdgeKind::Dependency,
            require_consistency: None,
            require_protection: None,
        });
        assert!(matches!(app.validate(), Err(SpecError::InvalidEdge { .. })));
    }

    #[test]
    fn access_edge_between_tasks_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_task(TaskSpec::new("B"));
        app.add_edge("A", "B", EdgeKind::Access).unwrap();
        assert!(matches!(app.validate(), Err(SpecError::InvalidEdge { .. })));
    }

    #[test]
    fn replication_bounds_enforced() {
        let mut app = AppSpec::new("x");
        app.add_data(DataSpec::new("S").with_dist(DistributedAspect::default().replication(0)));
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));

        let mut app = AppSpec::new("x");
        app.add_data(
            DataSpec::new("S")
                .with_dist(DistributedAspect::default().replication(MAX_REPLICATION + 1)),
        );
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));
    }

    #[test]
    fn consistency_on_task_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(
            TaskSpec::new("A")
                .with_dist(DistributedAspect::default().consistency(ConsistencyLevel::Sequential)),
        );
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A").with_dist(
            DistributedAspect::default().failure(FailureHandling::Checkpoint { interval_ms: 0 }),
        ));
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));
    }

    #[test]
    fn strongest_isolation_with_shared_tenancy_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A").with_exec_env(
            ExecEnvAspect::isolation(IsolationLevel::Strongest).with_tenancy(Tenancy::Shared),
        ));
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));
    }

    #[test]
    fn colocate_hint_on_data_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_data(DataSpec::new("S"));
        app.colocate("A", "S").unwrap();
        assert!(matches!(app.validate(), Err(SpecError::InvalidApp(_))));
    }

    #[test]
    fn affinity_hint_wrong_direction_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A"));
        app.add_data(DataSpec::new("S"));
        app.affinity("S", "A").unwrap();
        assert!(matches!(app.validate(), Err(SpecError::InvalidApp(_))));
    }

    #[test]
    fn zero_work_units_rejected() {
        let mut app = AppSpec::new("x");
        app.add_task(TaskSpec::new("A").with_work(0));
        assert!(matches!(
            app.validate(),
            Err(SpecError::InvalidModule { .. })
        ));
    }

    #[test]
    fn diamond_topo_order() {
        let mut app = AppSpec::new("d");
        for t in ["A", "B", "C", "D"] {
            app.add_task(TaskSpec::new(t));
        }
        app.add_edge("A", "B", EdgeKind::Dependency).unwrap();
        app.add_edge("A", "C", EdgeKind::Dependency).unwrap();
        app.add_edge("B", "D", EdgeKind::Dependency).unwrap();
        app.add_edge("C", "D", EdgeKind::Dependency).unwrap();
        let order = app.topo_order().unwrap();
        assert_eq!(order.first().unwrap().as_str(), "A");
        assert_eq!(order.last().unwrap().as_str(), "D");
    }
}
