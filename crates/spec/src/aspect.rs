//! The three UDC aspects: resource (§3.2), execution environment &
//! security (§3.3), and distributed semantics (§3.4).
//!
//! All aspect types are plain data ("declarative", Design Principle 2):
//! they say *what* the user wants, never *how* to realize it. Realization
//! lives in `udc-sched`, `udc-isolate` and `udc-dist`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Resource aspect (§3.2)
// ---------------------------------------------------------------------------

/// A kind of disaggregated hardware resource.
///
/// Mirrors the device classes in Fig. 1 of the paper (CPU, GPU, FPGA,
/// DRAM, NVM, SSD, HDD, SoC). Compute kinds are counted in discrete units
/// (cores / devices); memory and storage kinds in mebibytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ResourceKind {
    /// General-purpose CPU cores.
    Cpu,
    /// GPU devices.
    Gpu,
    /// FPGA devices.
    Fpga,
    /// Volatile DRAM, in MiB.
    Dram,
    /// Non-volatile memory (e.g. Optane), in MiB.
    Nvm,
    /// Flash storage, in MiB.
    Ssd,
    /// Magnetic storage, in MiB.
    Hdd,
    /// SmartNIC / SoC offload engines.
    Soc,
}

impl ResourceKind {
    /// All resource kinds, in canonical order.
    pub const ALL: [ResourceKind; 8] = [
        ResourceKind::Cpu,
        ResourceKind::Gpu,
        ResourceKind::Fpga,
        ResourceKind::Dram,
        ResourceKind::Nvm,
        ResourceKind::Ssd,
        ResourceKind::Hdd,
        ResourceKind::Soc,
    ];

    /// Canonical lower-case name, as used in the `.udc` text format.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Gpu => "gpu",
            ResourceKind::Fpga => "fpga",
            ResourceKind::Dram => "dram",
            ResourceKind::Nvm => "nvm",
            ResourceKind::Ssd => "ssd",
            ResourceKind::Hdd => "hdd",
            ResourceKind::Soc => "soc",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this kind executes code (compute) rather than holding bytes.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            ResourceKind::Cpu | ResourceKind::Gpu | ResourceKind::Fpga | ResourceKind::Soc
        )
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A multi-dimensional resource quantity: units of each [`ResourceKind`].
///
/// Used both for demands ("this module needs 4 CPU cores and 8192 MiB
/// DRAM") and capacities. Arithmetic saturates rather than wrapping so
/// capacity math can never silently overflow.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResourceVector {
    amounts: BTreeMap<ResourceKind, u64>,
}

impl ResourceVector {
    /// The empty (all-zero) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: sets `kind` to `amount` (a zero amount removes the
    /// entry, keeping the representation canonical).
    pub fn with(mut self, kind: ResourceKind, amount: u64) -> Self {
        self.set(kind, amount);
        self
    }

    /// Sets `kind` to `amount`; zero removes the entry.
    pub fn set(&mut self, kind: ResourceKind, amount: u64) {
        if amount == 0 {
            self.amounts.remove(&kind);
        } else {
            self.amounts.insert(kind, amount);
        }
    }

    /// Returns the amount for `kind` (zero if absent).
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.amounts.get(&kind).copied().unwrap_or(0)
    }

    /// True when every dimension is zero.
    pub fn is_zero(&self) -> bool {
        self.amounts.is_empty()
    }

    /// Iterates over the non-zero `(kind, amount)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u64)> + '_ {
        self.amounts.iter().map(|(&k, &v)| (k, v))
    }

    /// Component-wise saturating addition.
    pub fn saturating_add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.saturating_add_assign(other);
        out
    }

    /// Component-wise saturating addition in place — the allocation-free
    /// form for accumulation loops.
    pub fn saturating_add_assign(&mut self, other: &Self) {
        for (k, v) in other.iter() {
            let cur = self.get(k);
            self.set(k, cur.saturating_add(v));
        }
    }

    /// Component-wise saturating subtraction (clamping at zero).
    pub fn saturating_sub(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.saturating_sub_assign(other);
        out
    }

    /// Component-wise saturating subtraction in place (clamping at zero).
    pub fn saturating_sub_assign(&mut self, other: &Self) {
        for (k, v) in other.iter() {
            let cur = self.get(k);
            self.set(k, cur.saturating_sub(v));
        }
    }

    /// True when `self` fits inside `other` in every dimension.
    pub fn fits_in(&self, other: &Self) -> bool {
        self.iter().all(|(k, v)| v <= other.get(k))
    }

    /// True when the two vectors demand at least one common kind.
    pub fn overlaps(&self, other: &Self) -> bool {
        self.iter().any(|(k, _)| other.get(k) > 0)
    }

    /// Scales every dimension by `factor` (saturating).
    pub fn scaled(&self, factor: u64) -> Self {
        let mut out = Self::new();
        for (k, v) in self.iter() {
            out.set(k, v.saturating_mul(factor));
        }
        out
    }

    /// Sum of all dimensions — a crude scalar "size" used only for
    /// ordering heuristics, never for correctness.
    pub fn scalar_size(&self) -> u64 {
        self.amounts
            .values()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("∅");
        }
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{v}{k}")?;
            first = false;
        }
        Ok(())
    }
}

/// Optimization goal when the user does not pin exact resources (§3.2:
/// "if users only provide a performance/cost goal, then UDC will select
/// resources based on load and available hardware at run time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Goal {
    /// Minimize end-to-end latency ("Fastest" in Table 1).
    Fastest,
    /// Minimize monetary cost ("Cheapest" in Table 1).
    Cheapest,
}

impl Goal {
    /// Canonical text-format name.
    pub fn name(self) -> &'static str {
        match self {
            Goal::Fastest => "fastest",
            Goal::Cheapest => "cheapest",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "fastest" => Some(Goal::Fastest),
            "cheapest" => Some(Goal::Cheapest),
            _ => None,
        }
    }
}

/// The resource aspect of a module (§3.2).
///
/// Users may specify any combination of:
/// - `demand` — exact amounts per resource kind (possibly from a dry-run
///   profile),
/// - `candidates` — a set of compute kinds the module *could* run on
///   (developer knowledge; the runtime picks one),
/// - `goal` — an optimization goal used when demand is absent or a
///   candidate must be chosen.
///
/// An entirely empty aspect means "provider decides" (the paper's
/// fall-back to today's cloud).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceAspect {
    /// Exact demand per resource kind; empty = unspecified.
    #[serde(default, skip_serializing_if = "ResourceVector::is_zero")]
    pub demand: ResourceVector,
    /// Candidate compute kinds the module may execute on.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub candidates: Vec<ResourceKind>,
    /// Optimization goal.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub goal: Option<Goal>,
}

impl ResourceAspect {
    /// Aspect consisting only of an optimization goal.
    pub fn goal(goal: Goal) -> Self {
        Self {
            goal: Some(goal),
            ..Self::default()
        }
    }

    /// Aspect with an exact demand vector.
    pub fn demand(demand: ResourceVector) -> Self {
        Self {
            demand,
            ..Self::default()
        }
    }

    /// Builder-style: adds a candidate compute kind.
    pub fn with_candidate(mut self, kind: ResourceKind) -> Self {
        if !self.candidates.contains(&kind) {
            self.candidates.push(kind);
        }
        self
    }

    /// Builder-style: sets the goal.
    pub fn with_goal(mut self, goal: Goal) -> Self {
        self.goal = Some(goal);
        self
    }

    /// Builder-style: sets one demand dimension.
    pub fn with_demand(mut self, kind: ResourceKind, amount: u64) -> Self {
        self.demand.set(kind, amount);
        self
    }

    /// True when the user left the whole aspect unspecified.
    pub fn is_unspecified(&self) -> bool {
        self.demand.is_zero() && self.candidates.is_empty() && self.goal.is_none()
    }
}

// ---------------------------------------------------------------------------
// Execution environment & security aspect (§3.3)
// ---------------------------------------------------------------------------

/// Isolation level for a module's execution environment (§3.3).
///
/// Ordered from weakest to strongest; the derived `Ord` gives the
/// strictness order used by strictest-wins conflict resolution. The
/// paper's taxonomy:
///
/// - *strongest*: single-tenant **and** TEE — defends against system
///   software, physical, and hardware side-channel attacks;
/// - *strong*: TEE **or** single-tenant — a subset of those defenses;
/// - *medium*: provider choice among unikernel / lightweight VM /
///   sandboxed container (requires trusting the provider);
/// - *weak*: plain containers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "snake_case")]
pub enum IsolationLevel {
    /// Plain containers (weakest).
    #[default]
    Weak,
    /// Provider-chosen unikernel, lightweight VM, or sandboxed container.
    Medium,
    /// TEE *or* single-tenant hardware; user-verifiable.
    Strong,
    /// TEE *and* single-tenant hardware; user-verifiable.
    Strongest,
}

impl IsolationLevel {
    /// Canonical text-format name.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::Weak => "weak",
            IsolationLevel::Medium => "medium",
            IsolationLevel::Strong => "strong",
            IsolationLevel::Strongest => "strongest",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "weak" => Some(IsolationLevel::Weak),
            "medium" => Some(IsolationLevel::Medium),
            "strong" => Some(IsolationLevel::Strong),
            "strongest" => Some(IsolationLevel::Strongest),
            _ => None,
        }
    }

    /// Whether the user can verify fulfillment without trusting the
    /// provider (§3.3: only the strongest and strong options "can enable
    /// verification by the user").
    pub fn user_verifiable(self) -> bool {
        matches!(self, IsolationLevel::Strong | IsolationLevel::Strongest)
    }
}

/// Tenancy requirement, orthogonal to the TEE requirement.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "snake_case")]
pub enum Tenancy {
    /// Hardware may be shared with other tenants.
    #[default]
    Shared,
    /// The entire hardware unit is dedicated to this tenant
    /// (defends against hardware side channels, §3.3).
    SingleTenant,
}

/// Protection options for data *leaving* the execution environment
/// (§3.3: "encryption, integrity protection, and replay protection").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataProtection {
    /// Encrypt data in flight / at rest outside the environment.
    #[serde(default)]
    pub confidentiality: bool,
    /// MAC / Merkle-protect data against tampering.
    #[serde(default)]
    pub integrity: bool,
    /// Monotonic-counter protection against replay of stale data.
    #[serde(default)]
    pub replay: bool,
}

impl DataProtection {
    /// No protection at all.
    pub const NONE: DataProtection = DataProtection {
        confidentiality: false,
        integrity: false,
        replay: false,
    };

    /// Confidentiality + integrity (Table 1's "Encryption & integrity
    /// protection").
    pub const ENCRYPT_AND_INTEGRITY: DataProtection = DataProtection {
        confidentiality: true,
        integrity: true,
        replay: false,
    };

    /// Integrity only (Table 1, S4).
    pub const INTEGRITY_ONLY: DataProtection = DataProtection {
        confidentiality: false,
        integrity: true,
        replay: false,
    };

    /// Full protection including replay defense.
    pub const FULL: DataProtection = DataProtection {
        confidentiality: true,
        integrity: true,
        replay: true,
    };

    /// Component-wise union — the strictest combination of two
    /// requirements (used by strictest-wins resolution).
    pub fn union(self, other: Self) -> Self {
        DataProtection {
            confidentiality: self.confidentiality || other.confidentiality,
            integrity: self.integrity || other.integrity,
            replay: self.replay || other.replay,
        }
    }

    /// True when `self` demands no more than `other` in every component.
    pub fn subsumed_by(self, other: Self) -> bool {
        (!self.confidentiality || other.confidentiality)
            && (!self.integrity || other.integrity)
            && (!self.replay || other.replay)
    }
}

/// The execution-environment & security aspect of a module (§3.3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecEnvAspect {
    /// Requested isolation level; `None` = provider default.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub isolation: Option<IsolationLevel>,
    /// Tenancy requirement; `None` = provider default.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tenancy: Option<Tenancy>,
    /// Require a TEE *when the module runs on a CPU* — Table 1's
    /// "SGX enclave if CPU" refinement for hardware-candidate modules.
    #[serde(default)]
    pub tee_if_cpu: bool,
    /// Protection for data leaving the environment.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub protection: Option<DataProtection>,
}

impl ExecEnvAspect {
    /// Aspect requesting a specific isolation level.
    pub fn isolation(level: IsolationLevel) -> Self {
        Self {
            isolation: Some(level),
            ..Self::default()
        }
    }

    /// Builder-style: sets tenancy.
    pub fn with_tenancy(mut self, t: Tenancy) -> Self {
        self.tenancy = Some(t);
        self
    }

    /// Builder-style: requires a TEE when placed on a CPU.
    pub fn with_tee_if_cpu(mut self) -> Self {
        self.tee_if_cpu = true;
        self
    }

    /// Builder-style: sets data protection.
    pub fn with_protection(mut self, p: DataProtection) -> Self {
        self.protection = Some(p);
        self
    }

    /// True when the user left the whole aspect unspecified.
    pub fn is_unspecified(&self) -> bool {
        self.isolation.is_none()
            && self.tenancy.is_none()
            && !self.tee_if_cpu
            && self.protection.is_none()
    }
}

// ---------------------------------------------------------------------------
// Distributed aspect (§3.4)
// ---------------------------------------------------------------------------

/// Consistency level for concurrent access to a data module (§3.4).
///
/// Ordered weakest → strictest; the derived `Ord` is the strictness order
/// used by conflict resolution ("UDC needs to detect such conflicts and
/// either chooses the strictest specification or returns an error").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "snake_case")]
pub enum ConsistencyLevel {
    /// Replicas converge eventually; reads may be arbitrarily stale.
    #[default]
    Eventual,
    /// Writes become visible at release (synchronization) points only.
    Release,
    /// Causally related operations are observed in order.
    Causal,
    /// All clients observe one total order of operations.
    Sequential,
    /// Sequential plus real-time ordering (the strictest we model).
    Linearizable,
}

impl ConsistencyLevel {
    /// Canonical text-format name.
    pub fn name(self) -> &'static str {
        match self {
            ConsistencyLevel::Eventual => "eventual",
            ConsistencyLevel::Release => "release",
            ConsistencyLevel::Causal => "causal",
            ConsistencyLevel::Sequential => "sequential",
            ConsistencyLevel::Linearizable => "linearizable",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "eventual" => Some(ConsistencyLevel::Eventual),
            "release" => Some(ConsistencyLevel::Release),
            "causal" => Some(ConsistencyLevel::Causal),
            "sequential" => Some(ConsistencyLevel::Sequential),
            "linearizable" => Some(ConsistencyLevel::Linearizable),
            _ => None,
        }
    }
}

/// Which operation class gets scheduling preference on a data module
/// (§3.4: "what type of operations they want to give preferences to
/// (e.g., read preference over write)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum OpPreference {
    /// No preference.
    #[default]
    None,
    /// Prefer readers (Table 1, S2: "Reader preference").
    Reader,
    /// Prefer writers.
    Writer,
}

impl OpPreference {
    /// Canonical text-format name.
    pub fn name(self) -> &'static str {
        match self {
            OpPreference::None => "none",
            OpPreference::Reader => "reader",
            OpPreference::Writer => "writer",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "none" => Some(OpPreference::None),
            "reader" => Some(OpPreference::Reader),
            "writer" => Some(OpPreference::Writer),
            _ => None,
        }
    }
}

/// How failures of a module's failure domain are handled (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum FailureHandling {
    /// Re-run the module from its inputs.
    #[default]
    Reexecute,
    /// Restore from the most recent checkpoint; `interval_ms` is the
    /// user-requested checkpoint cadence.
    Checkpoint {
        /// Checkpoint cadence in simulated milliseconds.
        interval_ms: u64,
    },
}

/// The distributed-semantics aspect of a module (§3.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedAspect {
    /// Number of replicas (1 = no replication). Table 1 uses 1–3.
    #[serde(default = "default_replication")]
    pub replication: u32,
    /// Consistency level for concurrent access (data modules).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub consistency: Option<ConsistencyLevel>,
    /// Operation-class preference.
    #[serde(default, skip_serializing_if = "is_default_pref")]
    pub preference: OpPreference,
    /// Failure-handling strategy.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failure: Option<FailureHandling>,
    /// User-assigned failure domain: modules sharing a domain fail as a
    /// whole; distinct domains fail independently. `None` = own domain.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failure_domain: Option<String>,
}

fn default_replication() -> u32 {
    1
}

fn is_default_pref(p: &OpPreference) -> bool {
    *p == OpPreference::None
}

impl Default for DistributedAspect {
    fn default() -> Self {
        Self {
            replication: 1,
            consistency: None,
            preference: OpPreference::None,
            failure: None,
            failure_domain: None,
        }
    }
}

impl DistributedAspect {
    /// Builder-style: sets the replication factor.
    pub fn replication(mut self, n: u32) -> Self {
        self.replication = n;
        self
    }

    /// Builder-style: sets the consistency level.
    pub fn consistency(mut self, c: ConsistencyLevel) -> Self {
        self.consistency = Some(c);
        self
    }

    /// Builder-style: sets the operation preference.
    pub fn preference(mut self, p: OpPreference) -> Self {
        self.preference = p;
        self
    }

    /// Builder-style: sets the failure-handling strategy.
    pub fn failure(mut self, f: FailureHandling) -> Self {
        self.failure = Some(f);
        self
    }

    /// Builder-style: assigns the module to a named failure domain.
    pub fn failure_domain(mut self, d: impl Into<String>) -> Self {
        self.failure_domain = Some(d.into());
        self
    }

    /// True when the aspect is entirely the provider default.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_vector_arithmetic() {
        let a = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Dram, 1024);
        let b = ResourceVector::new()
            .with(ResourceKind::Cpu, 2)
            .with(ResourceKind::Gpu, 1);
        let sum = a.saturating_add(&b);
        assert_eq!(sum.get(ResourceKind::Cpu), 6);
        assert_eq!(sum.get(ResourceKind::Gpu), 1);
        assert_eq!(sum.get(ResourceKind::Dram), 1024);
        let diff = a.saturating_sub(&b);
        assert_eq!(diff.get(ResourceKind::Cpu), 2);
        assert_eq!(diff.get(ResourceKind::Gpu), 0, "clamped at zero");
    }

    #[test]
    fn resource_vector_zero_canonicalization() {
        let mut v = ResourceVector::new().with(ResourceKind::Cpu, 4);
        v.set(ResourceKind::Cpu, 0);
        assert!(v.is_zero());
        assert_eq!(v, ResourceVector::new());
    }

    #[test]
    fn resource_vector_fits_and_overlap() {
        let small = ResourceVector::new().with(ResourceKind::Cpu, 2);
        let big = ResourceVector::new()
            .with(ResourceKind::Cpu, 8)
            .with(ResourceKind::Gpu, 1);
        assert!(small.fits_in(&big));
        assert!(!big.fits_in(&small));
        assert!(small.overlaps(&big));
        let disjoint = ResourceVector::new().with(ResourceKind::Ssd, 100);
        assert!(!small.overlaps(&disjoint));
        assert!(disjoint.fits_in(&big.saturating_add(&disjoint)));
    }

    #[test]
    fn resource_vector_saturates() {
        let v = ResourceVector::new().with(ResourceKind::Cpu, u64::MAX);
        let sum = v.saturating_add(&v);
        assert_eq!(sum.get(ResourceKind::Cpu), u64::MAX);
        let scaled = v.scaled(3);
        assert_eq!(scaled.get(ResourceKind::Cpu), u64::MAX);
    }

    #[test]
    fn isolation_strictness_order() {
        assert!(IsolationLevel::Weak < IsolationLevel::Medium);
        assert!(IsolationLevel::Medium < IsolationLevel::Strong);
        assert!(IsolationLevel::Strong < IsolationLevel::Strongest);
        assert!(IsolationLevel::Strongest.user_verifiable());
        assert!(IsolationLevel::Strong.user_verifiable());
        assert!(!IsolationLevel::Medium.user_verifiable());
        assert!(!IsolationLevel::Weak.user_verifiable());
    }

    #[test]
    fn consistency_strictness_order() {
        use ConsistencyLevel::*;
        let mut levels = [Linearizable, Eventual, Sequential, Release, Causal];
        levels.sort();
        assert_eq!(
            levels,
            [Eventual, Release, Causal, Sequential, Linearizable]
        );
    }

    #[test]
    fn protection_union_is_component_wise_or() {
        let a = DataProtection::ENCRYPT_AND_INTEGRITY;
        let b = DataProtection {
            replay: true,
            ..DataProtection::NONE
        };
        assert_eq!(a.union(b), DataProtection::FULL);
        assert!(a.subsumed_by(DataProtection::FULL));
        assert!(!DataProtection::FULL.subsumed_by(a));
        assert!(DataProtection::NONE.subsumed_by(a));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ResourceKind::from_name("tpu"), None);
    }

    #[test]
    fn enum_names_round_trip() {
        for l in [
            IsolationLevel::Weak,
            IsolationLevel::Medium,
            IsolationLevel::Strong,
            IsolationLevel::Strongest,
        ] {
            assert_eq!(IsolationLevel::from_name(l.name()), Some(l));
        }
        for c in [
            ConsistencyLevel::Eventual,
            ConsistencyLevel::Release,
            ConsistencyLevel::Causal,
            ConsistencyLevel::Sequential,
            ConsistencyLevel::Linearizable,
        ] {
            assert_eq!(ConsistencyLevel::from_name(c.name()), Some(c));
        }
        for p in [
            OpPreference::None,
            OpPreference::Reader,
            OpPreference::Writer,
        ] {
            assert_eq!(OpPreference::from_name(p.name()), Some(p));
        }
        for g in [Goal::Fastest, Goal::Cheapest] {
            assert_eq!(Goal::from_name(g.name()), Some(g));
        }
    }

    #[test]
    fn unspecified_aspects_are_detected() {
        assert!(ResourceAspect::default().is_unspecified());
        assert!(!ResourceAspect::goal(Goal::Fastest).is_unspecified());
        assert!(ExecEnvAspect::default().is_unspecified());
        assert!(!ExecEnvAspect::isolation(IsolationLevel::Weak).is_unspecified());
        assert!(DistributedAspect::default().is_unspecified());
        assert!(!DistributedAspect::default().replication(2).is_unspecified());
    }

    #[test]
    fn aspect_json_round_trip() {
        let a = ResourceAspect::goal(Goal::Cheapest)
            .with_candidate(ResourceKind::Gpu)
            .with_demand(ResourceKind::Dram, 2048);
        let js = serde_json::to_string(&a).unwrap();
        let back: ResourceAspect = serde_json::from_str(&js).unwrap();
        assert_eq!(back, a);

        let d = DistributedAspect::default()
            .replication(3)
            .consistency(ConsistencyLevel::Sequential)
            .failure(FailureHandling::Checkpoint { interval_ms: 500 });
        let js = serde_json::to_string(&d).unwrap();
        let back: DistributedAspect = serde_json::from_str(&js).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn display_resource_vector() {
        let v = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Gpu, 2);
        assert_eq!(v.to_string(), "4cpu+2gpu");
        assert_eq!(ResourceVector::new().to_string(), "∅");
    }

    #[test]
    fn compute_kind_classification() {
        assert!(ResourceKind::Cpu.is_compute());
        assert!(ResourceKind::Gpu.is_compute());
        assert!(ResourceKind::Soc.is_compute());
        assert!(!ResourceKind::Dram.is_compute());
        assert!(!ResourceKind::Ssd.is_compute());
    }
}
