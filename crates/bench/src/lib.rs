//! # udc-bench — experiment harness and micro-benchmarks
//!
//! One binary per experiment in DESIGN.md's per-experiment index
//! (E1–E15), each regenerating one figure/table/claim of the paper:
//!
//! ```text
//! cargo run -p udc-bench --release --bin exp_01_medical
//! cargo run -p udc-bench --release --bin exp_03_waste
//! ...
//! ```
//!
//! Criterion micro-benchmarks live in `benches/`:
//! `cargo bench -p udc-bench`.
//!
//! This library provides the shared table-rendering helpers so every
//! experiment prints uniform, paper-style tables.

pub mod harness;
pub mod report;

use std::fmt::Display;

/// A simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            out.push_str("| ");
            for (i, c) in cells.iter().enumerate() {
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
                out.push_str(" | ");
            }
            out.pop();
            out.push('\n');
        };
        line(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Prints the table to stderr — for experiments whose stdout is
    /// reserved for machine-readable output.
    pub fn eprint(&self) {
        eprint!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("=== {id}: {title} ===");
    println!("Paper claim: {claim}");
    println!();
}

/// Prints an experiment banner to stderr — the human-facing channel for
/// experiments that write structured JSON to `results/`.
pub fn banner_stderr(id: &str, title: &str, claim: &str) {
    eprintln!("=== {id}: {title} ===");
    eprintln!("Paper claim: {claim}");
    eprintln!();
}

/// Resolves `results/<name>` at the workspace root, independent of the
/// directory the experiment is launched from.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    root.join("results").join(name)
}

/// Formats microseconds human-readably.
pub fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

/// Formats micro-dollars human-readably.
pub fn fmt_cost(micro_dollars: u64) -> String {
    format!("${:.4}", micro_dollars as f64 / 1e6)
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "100000"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{r}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_us(500), "500 us");
        assert_eq!(fmt_us(50_000), "50.0 ms");
        assert_eq!(fmt_us(20_000_000), "20.0 s");
        assert_eq!(fmt_cost(1_500_000), "$1.5000");
        assert_eq!(pct(0.351), "35.1%");
    }
}
