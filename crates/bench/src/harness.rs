//! Experiment-driver harness: the in-order trial fan-out (shared with
//! the actor crate's parallelism module) plus `--threads` CLI parsing.
//!
//! Experiments stay deterministic at any thread count by construction:
//!
//! 1. every trial derives its RNG seed from its *index* (not from any
//!    global stream shared across trials),
//! 2. each trial records into a private `Telemetry` hub and returns it
//!    (or any other result) from its closure,
//! 3. [`fan_out`] hands results back **in trial order**, regardless of
//!    which worker finished when, so the driver absorbs/merges them in
//!    the same order a serial run would.
//!
//! The fan-out primitive itself lives in [`udc_actor::parallel`] — one
//! scoped-pool implementation serves both the experiment drivers here
//! and the actor crate's batch workloads — and is re-exported so every
//! existing `harness::fan_out` call site keeps working.

pub use udc_actor::parallel::fan_out;

/// Parses a `--threads N` / `--threads=N` flag out of an argument list.
/// Returns the worker count (default 1) or an error message for a
/// malformed or missing value.
pub fn parse_threads<I, S>(args: I) -> Result<usize, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut threads = 1usize;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        let value = if arg == "--threads" {
            match iter.next() {
                Some(v) => v.as_ref().to_string(),
                None => return Err("--threads requires a value".to_string()),
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_string()
        } else {
            continue;
        };
        threads = value
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --threads value: {value:?}"))?;
    }
    Ok(threads)
}

/// [`parse_threads`] over the process arguments; prints the error and
/// exits with status 2 on a malformed flag.
pub fn threads_from_args() -> usize {
    match parse_threads(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_trial_order_at_any_thread_count() {
        let serial = fan_out(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(fan_out(threads, 40, |i| i * i), serial);
        }
    }

    /// The driver shape every experiment binary relies on: per-trial
    /// private hubs, absorbed in trial order, produce an artifact that
    /// is byte-identical at any `--threads N`.
    #[test]
    fn absorbed_trial_hubs_are_identical_at_any_thread_count() {
        use udc_telemetry::{Labels, Telemetry};
        let run = |threads: usize| -> String {
            let main = Telemetry::enabled();
            let hubs = fan_out(threads, 12, |i| {
                let hub = Telemetry::enabled();
                // Trial index seeds the workload, never a shared stream.
                hub.incr("trial.ops", Labels::none(), (i as u64 + 3) * 7 % 11);
                hub.observe("trial.latency", Labels::none(), (i as u64 * 37) % 101);
                hub
            });
            for hub in &hubs {
                main.absorb(hub);
            }
            let ops = main.counter("trial.ops", &Labels::none());
            let lat = main.histogram("trial.latency", &Labels::none());
            format!("{ops} {lat:?}")
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        assert_eq!(fan_out(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(fan_out(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parse_accepts_both_flag_forms_and_defaults_to_one() {
        assert_eq!(parse_threads(Vec::<String>::new()), Ok(1));
        assert_eq!(parse_threads(["--threads", "8"]), Ok(8));
        assert_eq!(parse_threads(["--threads=4"]), Ok(4));
        assert_eq!(parse_threads(["other", "--threads", "2", "args"]), Ok(2));
    }

    #[test]
    fn parse_rejects_malformed_values() {
        assert!(parse_threads(["--threads"]).is_err());
        assert!(parse_threads(["--threads", "zero"]).is_err());
        assert!(parse_threads(["--threads=0"]).is_err());
        assert!(parse_threads(["--threads=-1"]).is_err());
    }
}
