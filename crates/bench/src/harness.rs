//! A zero-dependency scoped thread pool for fanning independent
//! experiment trials across worker threads.
//!
//! Experiments stay deterministic at any thread count by construction:
//!
//! 1. every trial derives its RNG seed from its *index* (not from any
//!    global stream shared across trials),
//! 2. each trial records into a private `Telemetry` hub and returns it
//!    (or any other result) from its closure,
//! 3. [`fan_out`] hands results back **in trial order**, regardless of
//!    which worker finished when, so the driver absorbs/merges them in
//!    the same order a serial run would.
//!
//! Nothing here depends on wall-clock time or OS scheduling for
//! anything observable — threads only decide *who* computes a trial,
//! never *what* it computes or where its result lands.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..trials)` across `threads` workers and returns the results
/// indexed by trial, exactly as a serial `(0..trials).map(f)` would.
///
/// Work is distributed by an atomic next-trial counter, so uneven trial
/// costs self-balance. With `threads <= 1` (or a single trial) no
/// threads are spawned and `f` runs inline on the caller's stack.
pub fn fan_out<T, F>(threads: usize, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || trials <= 1 {
        return (0..trials).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("fan_out slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("fan_out slot poisoned")
                .expect("every trial fills its slot")
        })
        .collect()
}

/// Parses a `--threads N` / `--threads=N` flag out of an argument list.
/// Returns the worker count (default 1) or an error message for a
/// malformed or missing value.
pub fn parse_threads<I, S>(args: I) -> Result<usize, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut threads = 1usize;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        let value = if arg == "--threads" {
            match iter.next() {
                Some(v) => v.as_ref().to_string(),
                None => return Err("--threads requires a value".to_string()),
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_string()
        } else {
            continue;
        };
        threads = value
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --threads value: {value:?}"))?;
    }
    Ok(threads)
}

/// [`parse_threads`] over the process arguments; prints the error and
/// exits with status 2 on a malformed flag.
pub fn threads_from_args() -> usize {
    match parse_threads(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_trial_order_at_any_thread_count() {
        let serial = fan_out(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(fan_out(threads, 40, |i| i * i), serial);
        }
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        assert_eq!(fan_out(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(fan_out(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parse_accepts_both_flag_forms_and_defaults_to_one() {
        assert_eq!(parse_threads(Vec::<String>::new()), Ok(1));
        assert_eq!(parse_threads(["--threads", "8"]), Ok(8));
        assert_eq!(parse_threads(["--threads=4"]), Ok(4));
        assert_eq!(parse_threads(["other", "--threads", "2", "args"]), Ok(2));
    }

    #[test]
    fn parse_rejects_malformed_values() {
        assert!(parse_threads(["--threads"]).is_err());
        assert!(parse_threads(["--threads", "zero"]).is_err());
        assert!(parse_threads(["--threads=0"]).is_err());
        assert!(parse_threads(["--threads=-1"]).is_err());
    }
}
