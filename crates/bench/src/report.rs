//! Shared telemetry-export plumbing for experiment binaries.
//!
//! Every experiment ends with the same ritual: snapshot the hub, write
//! `results/<name>.json`, tell the human on stderr and the machine on
//! stdout. This module is that ritual, so all 17 binaries produce
//! uniform artifacts that `udc-trace` and CI can consume.

use std::path::PathBuf;
use udc_telemetry::Telemetry;

/// Writes the hub's full snapshot to `results/<name>.json` at the
/// workspace root. The artifact path goes to stderr as a human-readable
/// note and to stdout bare, so harnesses can capture it with `$(...)`.
pub fn export(name: &str, tel: &Telemetry) -> PathBuf {
    let path = crate::results_path(&format!("{name}.json"));
    let written = tel
        .snapshot()
        .write_to(&path)
        .expect("telemetry export writes");
    eprintln!();
    eprintln!("Structured telemetry export: {}", written.display());
    println!("{}", written.display());
    written
}
