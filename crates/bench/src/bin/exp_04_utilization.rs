//! E4 — the 2× utilization claim: "deploying fine-grained application
//! modules on disaggregated clusters would largely improve resource
//! utilization (by 2x as shown by \[36\])".
//!
//! Equal total capacity is provisioned two ways — as whole servers
//! (bin-packing) and as disaggregated pools (exact fit) — and the same
//! demand stream is admitted until each side saturates. The admitted
//! count and achieved utilization at saturation give the consolidation
//! factor.

use udc_bench::{banner, pct, Table};
use udc_hal::pool::AllocConstraints;
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_sched::{PackAlgo, ServerCluster, ServerShape};
use udc_spec::{ResourceKind, ResourceVector};
use udc_workload::DemandSampler;

const SERVERS: u64 = 64;

/// The disaggregated datacenter holding exactly the same total capacity
/// as `SERVERS` standard GPU servers.
fn matched_pools() -> Datacenter {
    // ServerShape::standard(2): 64 cpu, 256 GiB dram, 2 TiB ssd, 2 gpus.
    Datacenter::new(DatacenterConfig {
        pools: vec![
            PoolConfig {
                kind: ResourceKind::Cpu,
                devices: SERVERS as usize,
                capacity_per_device: 64,
            },
            PoolConfig {
                kind: ResourceKind::Gpu,
                devices: (SERVERS / 4) as usize,
                capacity_per_device: 8,
            },
            PoolConfig {
                kind: ResourceKind::Dram,
                devices: SERVERS as usize,
                capacity_per_device: 256 * 1024,
            },
            PoolConfig {
                kind: ResourceKind::Ssd,
                devices: (SERVERS / 4) as usize,
                capacity_per_device: 8 * 1024 * 1024,
            },
        ],
        racks: 8,
        fabric: FabricConfig::default(),
    })
}

fn run_trial(skew_seed: u64) -> (usize, f64, usize, f64) {
    let mut sampler = DemandSampler::new(skew_seed);
    let demands: Vec<ResourceVector> = sampler.sample_n(4_000);

    // Servers: a fixed fleet of SERVERS machines; every demand that
    // fits neither an open server nor a new one within the cap is
    // rejected.
    let shape = ServerShape::standard(2);
    let mut cluster = ServerCluster::new(shape.clone());
    let mut admitted_srv = 0usize;
    for d in &demands {
        if cluster
            .place_bounded(d, PackAlgo::BestFit, SERVERS as usize)
            .is_some()
        {
            admitted_srv += 1;
        }
    }
    let srv_util = cluster.outcome().mean_utilization();

    // Pools: admit the same stream into matched-capacity pools.
    let mut dc = matched_pools();
    let mut admitted_pool = 0usize;
    for d in &demands {
        if dc
            .allocate_vector("t", d, &AllocConstraints::default())
            .is_ok()
        {
            admitted_pool += 1;
        }
    }
    let pool_util = {
        let report = dc.utilization_report();
        let fracs: Vec<f64> = report
            .iter()
            .filter(|(_, _, cap)| *cap > 0)
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        fracs.iter().sum::<f64>() / fracs.len() as f64
    };
    (admitted_srv, srv_util, admitted_pool, pool_util)
}

fn main() {
    banner(
        "E4",
        "Consolidation: server bin-packing vs disaggregated pools",
        "fine-grained disaggregated deployment improves utilization ~2x [36]",
    );

    let mut t = Table::new(&[
        "trial",
        "servers admitted",
        "server util",
        "pools admitted",
        "pool util",
        "admission gain",
        "util gain",
    ]);
    let mut gains = Vec::new();
    for seed in 1..=5u64 {
        let (a_srv, u_srv, a_pool, u_pool) = run_trial(seed);
        let admission_gain = a_pool as f64 / a_srv.max(1) as f64;
        let util_gain = u_pool / u_srv.max(1e-9);
        gains.push(util_gain);
        t.row(&[
            format!("seed {seed}"),
            a_srv.to_string(),
            pct(u_srv),
            a_pool.to_string(),
            pct(u_pool),
            format!("{admission_gain:.2}x"),
            format!("{util_gain:.2}x"),
        ]);
    }
    t.print();
    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    println!();
    println!(
        "Mean utilization gain on the balanced mix: {mean_gain:.2}x. The gain \
         comes from dimension decoupling: a server is full when ANY dimension \
         fills; a pool is full only when ITS dimension fills."
    );

    // Skew sweep — the LegoOS-style metric: to SERVE the whole workload,
    // how well is the provisioned hardware utilized? Servers must be
    // bought in bundled shapes, so a skewed demand ratio strands the
    // other dimensions; pools are provisioned per kind (device-granular)
    // and strand almost nothing.
    println!();
    println!("Skew sweep — provision-to-serve (fraction of memory-heavy vs CPU-heavy batch):");
    let mut s = Table::new(&[
        "mem-heavy fraction",
        "servers bought",
        "server util",
        "pool util",
        "util gain",
    ]);
    for pct_mem in [0u64, 25, 50, 75, 100] {
        let mut sampler = DemandSampler::new(100 + pct_mem);
        let demands: Vec<ResourceVector> = (0..2_000)
            .map(|i| {
                if (i as u64 * 100 / 2_000) < pct_mem {
                    sampler.sample_of(udc_workload::DemandClass::MemoryHeavy)
                } else {
                    sampler.sample_of(udc_workload::DemandClass::Batch)
                }
            })
            .collect();
        // Servers: open as many as the workload needs (the provider buys
        // whole machines); utilization over the demanded dimensions.
        let mut cluster = ServerCluster::new(ServerShape::standard(0));
        let outcome = cluster.pack_all(&demands, PackAlgo::BestFit);
        let demanded_dims: Vec<f64> = outcome
            .utilization
            .iter()
            .filter(|(_, used, _)| *used > 0)
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        let srv_util = demanded_dims.iter().sum::<f64>() / demanded_dims.len().max(1) as f64;

        // Pools: the provider buys devices of each kind to cover the
        // aggregate demand (device-granular rounding only).
        let total: ResourceVector = demands
            .iter()
            .fold(ResourceVector::new(), |acc, d| acc.saturating_add(d));
        let mut pool_fracs = Vec::new();
        for (kind, units) in total.iter() {
            let device_cap = match kind {
                ResourceKind::Cpu => 64,
                ResourceKind::Dram => 256 * 1024,
                _ => 1024,
            };
            let devices = units.div_ceil(device_cap);
            pool_fracs.push(units as f64 / (devices * device_cap) as f64);
        }
        let pool_util = pool_fracs.iter().sum::<f64>() / pool_fracs.len().max(1) as f64;
        s.row(&[
            format!("{pct_mem}%"),
            outcome.servers_used.to_string(),
            pct(srv_util),
            pct(pool_util),
            format!("{:.2}x", pool_util / srv_util.max(1e-9)),
        ]);
    }
    s.print();
    println!();
    println!(
        "Expected shape (paper, via LegoOS [36]): ~2x when demand ratios are \
         skewed away from the server shape; the gain shrinks when the mix \
         happens to match the bundle."
    );
}
