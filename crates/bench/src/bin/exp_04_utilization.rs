//! E4 — the 2× utilization claim: "deploying fine-grained application
//! modules on disaggregated clusters would largely improve resource
//! utilization (by 2x as shown by \[36\])".
//!
//! Equal total capacity is provisioned two ways — as whole servers
//! (bin-packing) and as disaggregated pools (exact fit) — and the same
//! demand stream is admitted until each side saturates. The pool side
//! runs with a `udc-telemetry` observer installed on the HAL, so the
//! admitted count comes from the real `hal.allocations` counter; every
//! trial's outcome is recorded as gauges and measurement events, the
//! tables are rendered *from* the registry, and the snapshot is exported
//! as structured JSON into `results/`. Human-readable output goes to
//! stderr; stdout carries only the path of the JSON artifact.
//!
//! Both the seed trials and the skew sweep are embarrassingly parallel:
//! every trial seeds its own sampler and records into a private
//! telemetry hub, so `--threads N` fans them across workers and the
//! absorbed-in-trial-order export is byte-identical at any thread
//! count.

use udc_bench::harness::{fan_out, threads_from_args};
use udc_bench::{banner_stderr, pct, Table};
use udc_hal::pool::AllocConstraints;
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_sched::{PackAlgo, ServerCluster, ServerShape};
use udc_spec::{ResourceKind, ResourceVector};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::DemandSampler;

const SERVERS: u64 = 64;

/// The disaggregated datacenter holding exactly the same total capacity
/// as `SERVERS` standard GPU servers.
fn matched_pools() -> Datacenter {
    // ServerShape::standard(2): 64 cpu, 256 GiB dram, 2 TiB ssd, 2 gpus.
    Datacenter::new(DatacenterConfig {
        pools: vec![
            PoolConfig {
                kind: ResourceKind::Cpu,
                devices: SERVERS as usize,
                capacity_per_device: 64,
            },
            PoolConfig {
                kind: ResourceKind::Gpu,
                devices: (SERVERS / 4) as usize,
                capacity_per_device: 8,
            },
            PoolConfig {
                kind: ResourceKind::Dram,
                devices: SERVERS as usize,
                capacity_per_device: 256 * 1024,
            },
            PoolConfig {
                kind: ResourceKind::Ssd,
                devices: (SERVERS / 4) as usize,
                capacity_per_device: 8 * 1024 * 1024,
            },
        ],
        racks: 8,
        fabric: FabricConfig::default(),
    })
}

/// Admits the same demand stream into a server fleet and into
/// matched-capacity pools, recording every outcome under the trial's
/// tenant label in a private hub (so trials can run on any worker).
fn run_trial(skew_seed: u64) -> Telemetry {
    let tel = Telemetry::enabled();
    let tenant = format!("seed{skew_seed}");
    let labels = Labels::tenant(&tenant);
    let mut sampler = DemandSampler::new(skew_seed);
    let demands: Vec<ResourceVector> = sampler.sample_n(4_000);

    // Servers: a fixed fleet of SERVERS machines; every demand that
    // fits neither an open server nor a new one within the cap is
    // rejected.
    let shape = ServerShape::standard(2);
    let mut cluster = ServerCluster::new(shape.clone());
    for d in &demands {
        if cluster
            .place_bounded(d, PackAlgo::BestFit, SERVERS as usize)
            .is_some()
        {
            tel.incr("exp4.server.admitted", labels.clone(), 1);
        }
    }
    let srv_util = cluster.outcome().mean_utilization();
    tel.gauge_set(
        "exp4.server.util_bp",
        labels.clone(),
        (srv_util * 10_000.0).round() as i64,
    );

    // Pools: admit the same stream into matched-capacity pools. The
    // observer makes every successful allocation show up on the real
    // `hal.allocations` counter under this trial's tenant.
    let mut dc = matched_pools();
    dc.set_observer(tel.clone());
    for d in &demands {
        let _ = dc.allocate_vector(&tenant, d, &AllocConstraints::default());
    }
    let pool_util = {
        let report = dc.utilization_report();
        let fracs: Vec<f64> = report
            .iter()
            .filter(|(_, _, cap)| *cap > 0)
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        fracs.iter().sum::<f64>() / fracs.len() as f64
    };
    tel.gauge_set(
        "exp4.pool.util_bp",
        labels.clone(),
        (pool_util * 10_000.0).round() as i64,
    );

    let a_srv = tel.counter("exp4.server.admitted", &labels);
    let a_pool = tel.counter("hal.allocations", &labels);
    tel.event(
        EventKind::Measurement,
        labels,
        &[
            ("demands", FieldValue::from(demands.len())),
            ("server_admitted", FieldValue::from(a_srv)),
            ("pool_admitted", FieldValue::from(a_pool)),
            ("server_util", FieldValue::from(srv_util)),
            ("pool_util", FieldValue::from(pool_util)),
            (
                "admission_gain",
                FieldValue::from(a_pool as f64 / a_srv.max(1) as f64),
            ),
            (
                "util_gain",
                FieldValue::from(pool_util / srv_util.max(1e-9)),
            ),
        ],
    );
    tel
}

fn main() {
    banner_stderr(
        "E4",
        "Consolidation: server bin-packing vs disaggregated pools",
        "fine-grained disaggregated deployment improves utilization ~2x [36]",
    );

    let threads = threads_from_args();
    let tel = Telemetry::enabled();
    for trial in fan_out(threads, 5, |i| run_trial(i as u64 + 1)) {
        tel.absorb(&trial);
    }

    // Human summary, rendered from the registry alone.
    let mut t = Table::new(&[
        "trial",
        "servers admitted",
        "server util",
        "pools admitted",
        "pool util",
        "admission gain",
        "util gain",
    ]);
    let mut gains = Vec::new();
    for seed in 1..=5u64 {
        let labels = Labels::tenant(format!("seed{seed}"));
        let a_srv = tel.counter("exp4.server.admitted", &labels);
        let a_pool = tel.counter("hal.allocations", &labels);
        let u_srv = tel.gauge("exp4.server.util_bp", &labels).unwrap().0 as f64 / 10_000.0;
        let u_pool = tel.gauge("exp4.pool.util_bp", &labels).unwrap().0 as f64 / 10_000.0;
        let util_gain = u_pool / u_srv.max(1e-9);
        gains.push(util_gain);
        t.row(&[
            format!("seed {seed}"),
            a_srv.to_string(),
            pct(u_srv),
            a_pool.to_string(),
            pct(u_pool),
            format!("{:.2}x", a_pool as f64 / a_srv.max(1) as f64),
            format!("{util_gain:.2}x"),
        ]);
    }
    t.eprint();
    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    eprintln!();
    eprintln!(
        "Mean utilization gain on the balanced mix: {mean_gain:.2}x. The gain \
         comes from dimension decoupling: a server is full when ANY dimension \
         fills; a pool is full only when ITS dimension fills."
    );

    // Skew sweep — the LegoOS-style metric: to SERVE the whole workload,
    // how well is the provisioned hardware utilized? Servers must be
    // bought in bundled shapes, so a skewed demand ratio strands the
    // other dimensions; pools are provisioned per kind (device-granular)
    // and strand almost nothing.
    eprintln!();
    eprintln!("Skew sweep — provision-to-serve (fraction of memory-heavy vs CPU-heavy batch):");
    let skews = [0u64, 25, 50, 75, 100];
    let run_skew = |pct_mem: u64| {
        let tel = Telemetry::enabled();
        let labels = Labels::tenant(format!("mem{pct_mem}"));
        let mut sampler = DemandSampler::new(100 + pct_mem);
        let demands: Vec<ResourceVector> = (0..2_000)
            .map(|i| {
                if (i as u64 * 100 / 2_000) < pct_mem {
                    sampler.sample_of(udc_workload::DemandClass::MemoryHeavy)
                } else {
                    sampler.sample_of(udc_workload::DemandClass::Batch)
                }
            })
            .collect();
        // Servers: open as many as the workload needs (the provider buys
        // whole machines); utilization over the demanded dimensions.
        let mut cluster = ServerCluster::new(ServerShape::standard(0));
        let outcome = cluster.pack_all(&demands, PackAlgo::BestFit);
        let demanded_dims: Vec<f64> = outcome
            .utilization
            .iter()
            .filter(|(_, used, _)| *used > 0)
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        let srv_util = demanded_dims.iter().sum::<f64>() / demanded_dims.len().max(1) as f64;

        // Pools: the provider buys devices of each kind to cover the
        // aggregate demand (device-granular rounding only).
        let total: ResourceVector = demands
            .iter()
            .fold(ResourceVector::new(), |acc, d| acc.saturating_add(d));
        let mut pool_fracs = Vec::new();
        for (kind, units) in total.iter() {
            let device_cap = match kind {
                ResourceKind::Cpu => 64,
                ResourceKind::Dram => 256 * 1024,
                _ => 1024,
            };
            let devices = units.div_ceil(device_cap);
            pool_fracs.push(units as f64 / (devices * device_cap) as f64);
        }
        let pool_util = pool_fracs.iter().sum::<f64>() / pool_fracs.len().max(1) as f64;

        tel.gauge_set(
            "exp4.skew.servers_bought",
            labels.clone(),
            outcome.servers_used as i64,
        );
        tel.gauge_set(
            "exp4.skew.server_util_bp",
            labels.clone(),
            (srv_util * 10_000.0).round() as i64,
        );
        tel.gauge_set(
            "exp4.skew.pool_util_bp",
            labels.clone(),
            (pool_util * 10_000.0).round() as i64,
        );
        tel.event(
            EventKind::Measurement,
            labels,
            &[
                (
                    "mem_heavy_fraction",
                    FieldValue::from(pct_mem as f64 / 100.0),
                ),
                ("servers_bought", FieldValue::from(outcome.servers_used)),
                ("server_util", FieldValue::from(srv_util)),
                ("pool_util", FieldValue::from(pool_util)),
                (
                    "util_gain",
                    FieldValue::from(pool_util / srv_util.max(1e-9)),
                ),
            ],
        );
        tel
    };
    for trial in fan_out(threads, skews.len(), |i| run_skew(skews[i])) {
        tel.absorb(&trial);
    }
    let mut s = Table::new(&[
        "mem-heavy fraction",
        "servers bought",
        "server util",
        "pool util",
        "util gain",
    ]);
    for pct_mem in [0u64, 25, 50, 75, 100] {
        let labels = Labels::tenant(format!("mem{pct_mem}"));
        let bought = tel.gauge("exp4.skew.servers_bought", &labels).unwrap().0;
        let srv_util = tel.gauge("exp4.skew.server_util_bp", &labels).unwrap().0 as f64 / 10_000.0;
        let pool_util = tel.gauge("exp4.skew.pool_util_bp", &labels).unwrap().0 as f64 / 10_000.0;
        s.row(&[
            format!("{pct_mem}%"),
            bought.to_string(),
            pct(srv_util),
            pct(pool_util),
            format!("{:.2}x", pool_util / srv_util.max(1e-9)),
        ]);
    }
    s.eprint();
    eprintln!();
    eprintln!(
        "Expected shape (paper, via LegoOS [36]): ~2x when demand ratios are \
         skewed away from the server shape; the gain shrinks when the mix \
         happens to match the bundle."
    );

    udc_bench::report::export("exp_04_utilization", &tel);
}
