//! E3 — §1's waste claim: "users pay for extra (35% according to \[14\])
//! computing resources they do not need because no cloud service matches
//! their precise needs."
//!
//! 2 000 tenant demands sampled from a realistic mixture are provisioned
//! (a) the IaaS way — smallest catalog instance that covers the demand —
//! and (b) the UDC way — exact-fit pool allocation. Every per-demand
//! data point is recorded into a `udc-telemetry` registry; the summary
//! table is rendered *from* the registry and the full snapshot (counters,
//! waste histograms, measurement events) is exported as structured JSON
//! into `results/`. Human-readable output goes to stderr; stdout carries
//! only the path of the JSON artifact.
//!
//! Demand classes are independent trials: each samples from its own
//! per-class-seeded stream into a private telemetry hub, so `--threads N`
//! fans them across workers and the absorbed-in-class-order export is
//! byte-identical at any thread count.

use udc_baseline::Catalog;
use udc_bench::harness::{fan_out, threads_from_args};
use udc_bench::{banner_stderr, pct, Table};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{DemandClass, DemandSampler};

const DEMANDS_PER_CLASS: usize = 400;

fn class_label(class: DemandClass) -> Labels {
    Labels::tenant(format!("{class:?}").to_lowercase())
}

/// UDC exact fit: the tenant pays unit prices for exactly the demand.
/// Unit prices come from the HAL profiles.
fn udc_hourly_microdollars(d: &udc_spec::ResourceVector) -> u64 {
    d.iter()
        .map(|(k, v)| {
            (udc_hal::PerfProfile::default_for(k).micro_dollars_per_unit_hour as f64 * v as f64)
                .round() as u64
        })
        .sum()
}

fn main() {
    banner_stderr(
        "E3",
        "Paid-but-unused resources: catalog shapes vs exact fit",
        "~35% of public-cloud spend is waste [14]; UDC eliminates shape \
         quantization entirely",
    );

    let classes = [
        DemandClass::Web,
        DemandClass::Batch,
        DemandClass::MemoryHeavy,
        DemandClass::Ml,
        DemandClass::StorageHeavy,
    ];
    let catalog = Catalog::aws_2021();
    let threads = threads_from_args();

    // Phase 1: provision each demand both ways, recording every data
    // point into the registry. Waste is stored in basis points so the
    // integer histogram keeps sub-percent resolution. Each class is one
    // trial: its own seed (2026 + class index) and its own private hub,
    // merged below in class order — so the export does not depend on
    // the thread count.
    let run_class = |idx: usize| {
        let class = classes[idx];
        let tel = Telemetry::enabled();
        let labels = class_label(class);
        let mut sampler = DemandSampler::new(2026 + idx as u64);
        for _ in 0..DEMANDS_PER_CLASS {
            let d = sampler.sample_of(class);
            match catalog.cheapest_fitting(&d) {
                Some(t) => {
                    tel.incr("exp3.demands", labels.clone(), 1);
                    tel.incr(
                        "exp3.iaas.hourly_microdollars",
                        labels.clone(),
                        t.hourly_micro_dollars,
                    );
                    tel.incr(
                        "exp3.udc.hourly_microdollars",
                        labels.clone(),
                        udc_hourly_microdollars(&d),
                    );
                    tel.observe(
                        "exp3.iaas.waste_bp",
                        labels.clone(),
                        (t.waste_fraction(&d) * 10_000.0).round() as u64,
                    );
                }
                None => tel.incr("exp3.unplaceable", labels.clone(), 1),
            }
        }
        let waste = tel
            .histogram("exp3.iaas.waste_bp", &labels)
            .expect("every class places at least one demand");
        tel.event(
            EventKind::Measurement,
            labels.clone(),
            &[
                ("n", FieldValue::from(tel.counter("exp3.demands", &labels))),
                ("iaas_mean_waste", FieldValue::from(waste.mean / 10_000.0)),
                (
                    "iaas_p95_waste",
                    FieldValue::from(waste.p95 as f64 / 10_000.0),
                ),
                ("udc_waste", FieldValue::from(0.0)),
                (
                    "iaas_hourly_microdollars",
                    FieldValue::from(tel.counter("exp3.iaas.hourly_microdollars", &labels)),
                ),
                (
                    "udc_hourly_microdollars",
                    FieldValue::from(tel.counter("exp3.udc.hourly_microdollars", &labels)),
                ),
            ],
        );
        tel
    };

    let tel = Telemetry::enabled();
    for trial in fan_out(threads, classes.len(), run_class) {
        tel.absorb(&trial);
    }

    // Phase 2: the human summary, rendered from the registry alone.
    let mut t = Table::new(&[
        "demand class",
        "n",
        "IaaS waste",
        "UDC waste",
        "IaaS $/h",
        "UDC-equivalent $/h",
    ]);
    let (mut n_all, mut waste_weighted, mut iaas_all, mut udc_all) = (0u64, 0.0f64, 0u64, 0u64);
    for class in classes {
        let labels = class_label(class);
        let n = tel.counter("exp3.demands", &labels);
        let waste = tel.histogram("exp3.iaas.waste_bp", &labels).unwrap();
        let iaas = tel.counter("exp3.iaas.hourly_microdollars", &labels);
        let udc = tel.counter("exp3.udc.hourly_microdollars", &labels);
        n_all += n;
        waste_weighted += waste.mean * n as f64;
        iaas_all += iaas;
        udc_all += udc;
        t.row(&[
            format!("{class:?}"),
            n.to_string(),
            pct(waste.mean / 10_000.0),
            pct(0.0),
            format!("${:.0}", iaas as f64 / 1e6),
            format!("${:.0}", udc as f64 / 1e6),
        ]);
    }
    t.row(&[
        "OVERALL".to_string(),
        n_all.to_string(),
        pct(waste_weighted / n_all.max(1) as f64 / 10_000.0),
        pct(0.0),
        format!("${:.0}", iaas_all as f64 / 1e6),
        format!("${:.0}", udc_all as f64 / 1e6),
    ]);
    t.eprint();

    // Paper's flagship case — 8 GPUs + 4 vCPUs of orchestration (§1).
    let mut d = udc_spec::ResourceVector::new();
    d.set(udc_spec::ResourceKind::Gpu, 8);
    d.set(udc_spec::ResourceKind::Cpu, 4);
    d.set(udc_spec::ResourceKind::Dram, 64 * 1024);
    let forced = catalog.cheapest_fitting(&d).expect("p3 shapes fit");
    tel.event(
        EventKind::Measurement,
        Labels::tenant("flagship"),
        &[
            ("forced_instance", FieldValue::from(forced.name)),
            ("waste", FieldValue::from(forced.waste_fraction(&d))),
            ("udc_waste", FieldValue::from(0.0)),
        ],
    );
    eprintln!();
    eprintln!("Paper's flagship case — 8 GPUs + 4 vCPUs of orchestration (§1):");
    eprintln!(
        "  forced instance: {} (64 vCPUs for a 4-vCPU need), waste = {}",
        forced.name,
        pct(forced.waste_fraction(&d))
    );
    eprintln!("  UDC: allocates exactly 8 GPU + 4 CPU + 64 GiB from the pools — waste = 0%");
    eprintln!();
    eprintln!(
        "Expected shape: IaaS overall waste in the 30-40% band (paper cites 35%); \
         UDC waste identically 0 by construction."
    );

    udc_bench::report::export("exp_03_waste", &tel);
}
