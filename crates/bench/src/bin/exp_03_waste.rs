//! E3 — §1's waste claim: "users pay for extra (35% according to \[14\])
//! computing resources they do not need because no cloud service matches
//! their precise needs."
//!
//! 2 000 tenant demands sampled from a realistic mixture are provisioned
//! (a) the IaaS way — smallest catalog instance that covers the demand —
//! and (b) the UDC way — exact-fit pool allocation. We report the
//! paid-but-unused fraction per class and overall.

use udc_baseline::{Catalog, IaasProvisioner};
use udc_bench::{banner, pct, Table};
use udc_workload::{DemandClass, DemandSampler};

fn main() {
    banner(
        "E3",
        "Paid-but-unused resources: catalog shapes vs exact fit",
        "~35% of public-cloud spend is waste [14]; UDC eliminates shape \
         quantization entirely",
    );

    let classes = [
        DemandClass::Web,
        DemandClass::Batch,
        DemandClass::MemoryHeavy,
        DemandClass::Ml,
        DemandClass::StorageHeavy,
    ];
    let catalog = Catalog::aws_2021();
    let iaas = IaasProvisioner::new();

    let mut t = Table::new(&[
        "demand class",
        "n",
        "IaaS waste",
        "UDC waste",
        "IaaS $/h",
        "UDC-equivalent $/h",
    ]);
    let mut sampler = DemandSampler::new(2026);
    let mut all = Vec::new();
    for class in classes {
        let demands: Vec<_> = (0..400).map(|_| sampler.sample_of(class)).collect();
        let out = iaas.provision(&demands);
        // UDC: exact fit — the tenant pays unit prices for exactly the
        // demand. Unit prices from the HAL profiles.
        let udc_hourly: f64 = demands
            .iter()
            .map(|d| {
                d.iter()
                    .map(|(k, v)| {
                        udc_hal::PerfProfile::default_for(k).micro_dollars_per_unit_hour as f64
                            * v as f64
                    })
                    .sum::<f64>()
            })
            .sum();
        t.row(&[
            format!("{class:?}"),
            demands.len().to_string(),
            pct(out.mean_waste),
            pct(0.0),
            format!("${:.0}", out.hourly_cost as f64 / 1e6),
            format!("${:.0}", udc_hourly / 1e6),
        ]);
        all.extend(demands);
    }
    let overall = iaas.provision(&all);
    t.row(&[
        "OVERALL".to_string(),
        all.len().to_string(),
        pct(overall.mean_waste),
        pct(0.0),
        format!("${:.0}", overall.hourly_cost as f64 / 1e6),
        "-".to_string(),
    ]);
    t.print();

    println!();
    println!("Paper's flagship case — 8 GPUs + 4 vCPUs of orchestration (§1):");
    let mut d = udc_spec::ResourceVector::new();
    d.set(udc_spec::ResourceKind::Gpu, 8);
    d.set(udc_spec::ResourceKind::Cpu, 4);
    d.set(udc_spec::ResourceKind::Dram, 64 * 1024);
    let forced = catalog.cheapest_fitting(&d).expect("p3 shapes fit");
    println!(
        "  forced instance: {} (64 vCPUs for a 4-vCPU need), waste = {}",
        forced.name,
        pct(forced.waste_fraction(&d))
    );
    println!("  UDC: allocates exactly 8 GPU + 4 CPU + 64 GiB from the pools — waste = 0%");
    println!();
    println!(
        "Expected shape: IaaS overall waste in the 30-40% band (paper cites 35%); \
         UDC waste identically 0 by construction."
    );
}
