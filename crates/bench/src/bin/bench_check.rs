//! Enforces performance floors over the machine-readable bench JSON
//! that the criterion shim writes when `UDC_BENCH_JSON` is set:
//!
//! ```text
//! UDC_BENCH_QUICK=1 UDC_BENCH_JSON=results/bench_control_plane.json \
//!     cargo bench -p udc-bench --bench bench_control_plane
//! UDC_BENCH_QUICK=1 UDC_BENCH_JSON=results/bench_telemetry.json \
//!     cargo bench -p udc-bench --bench bench_telemetry
//! cargo run -p udc-bench --bin bench_check -- \
//!     results/bench_control_plane.json results/bench_telemetry.json
//! ```
//!
//! Every threshold is stated next to its check. All files passed on the
//! command line are merged into one name → ns/iter map; a missing bench
//! name fails the run (a silently skipped check is a regression vector).
//! `--suite=control|telemetry|actor|economics` (repeatable) restricts which check
//! suites run, so a CI job that only ran one bench binary can enforce
//! exactly that binary's floors; with no `--suite=` flag every suite
//! runs. Exits 0 when every check holds, 1 otherwise.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn load_into(map: &mut BTreeMap<String, f64>, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let root = serde_json::parse_value(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let benches = root
        .get("benches")
        .and_then(|b| b.as_array())
        .ok_or_else(|| format!("{path}: no \"benches\" array"))?;
    for entry in benches {
        let name = entry
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{path}: bench entry without a name"))?;
        let ns = entry
            .get("ns_per_iter")
            .and_then(|n| n.as_f64())
            .ok_or_else(|| format!("{path}: bench {name:?} without ns_per_iter"))?;
        map.insert(name.to_string(), ns);
    }
    Ok(())
}

struct Checker {
    results: BTreeMap<String, f64>,
    failures: usize,
}

impl Checker {
    fn ns(&mut self, name: &str) -> Option<f64> {
        let found = self.results.get(name).copied();
        if found.is_none() {
            println!("FAIL  missing bench result: {name}");
            self.failures += 1;
        }
        found
    }

    /// Requires `slow` to be at least `min_ratio` times slower than
    /// `fast` — the floor on an optimization's measured speedup.
    fn speedup(&mut self, slow: &str, fast: &str, min_ratio: f64) {
        let (Some(s), Some(f)) = (self.ns(slow), self.ns(fast)) else {
            return;
        };
        let ratio = s / f.max(1e-9);
        let ok = ratio >= min_ratio;
        println!(
            "{}  {slow} / {fast} = {ratio:.2}x (floor {min_ratio:.2}x)",
            if ok { "ok  " } else { "FAIL" },
        );
        if !ok {
            self.failures += 1;
        }
    }

    /// Requires `name` to cost at most `max_ns` ns/iter.
    fn at_most_ns(&mut self, name: &str, max_ns: f64) {
        let Some(ns) = self.ns(name) else { return };
        let ok = ns <= max_ns;
        println!(
            "{}  {name} = {ns:.1} ns/iter (ceiling {max_ns:.1})",
            if ok { "ok  " } else { "FAIL" },
        );
        if !ok {
            self.failures += 1;
        }
    }

    /// Requires `a` to cost at most `max_ratio` times `b`.
    fn ratio_at_most(&mut self, a: &str, b: &str, max_ratio: f64) {
        let (Some(na), Some(nb)) = (self.ns(a), self.ns(b)) else {
            return;
        };
        let ratio = na / nb.max(1e-9);
        let ok = ratio <= max_ratio;
        println!(
            "{}  {a} / {b} = {ratio:.3} (ceiling {max_ratio:.3})",
            if ok { "ok  " } else { "FAIL" },
        );
        if !ok {
            self.failures += 1;
        }
    }
}

const SUITES: &[&str] = &["control", "telemetry", "actor", "economics"];

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut suites = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(name) = arg.strip_prefix("--suite=") {
            if !SUITES.contains(&name) {
                eprintln!("unknown suite {name:?} (one of: {SUITES:?})");
                return ExitCode::from(2);
            }
            suites.push(name.to_string());
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: bench_check [--suite=control|telemetry|actor|economics]... <bench-json>..."
        );
        return ExitCode::from(2);
    }
    let run = |name: &str| suites.is_empty() || suites.iter().any(|s| s == name);
    let mut results = BTreeMap::new();
    for path in &paths {
        if let Err(msg) = load_into(&mut results, path) {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    let mut c = Checker {
        results,
        failures: 0,
    };

    if run("control") {
        // Allocation fast path: the indexed pool must beat the retained
        // seed allocator by >= 3x on allocate/release churn at 16k
        // devices (the PR's acceptance floor; measured locally at
        // >1000x, so 3x only trips on a real regression, not CI noise).
        c.speedup("pool_churn/linear/16000", "pool_churn/indexed/16000", 3.0);
        // The gap must already show at 1k devices (floor 2x).
        c.speedup("pool_churn/linear/1000", "pool_churn/indexed/1000", 2.0);
        // Indexed bin-packing must beat the naive scan on FFD at 10k
        // demands (floor 1.5x; measured ~9x).
        c.speedup("binpack_10k/naive/ffd", "binpack_10k/indexed/ffd", 1.5);
        // Best-fit must at least not regress against the naive scan.
        c.speedup(
            "binpack_10k/naive/bestfit",
            "binpack_10k/indexed/bestfit",
            1.0,
        );
    }

    if run("economics") {
        // Quota-gated admission is one pure `admit` plus one `commit`
        // under a lock per placement: at most 5% over the ungated
        // placement (the PR's acceptance floor; measured ~1.00-1.02x).
        c.ratio_at_most(
            "sched/place_medical_quota_gated",
            "sched/place_medical",
            1.05,
        );
    }

    if run("telemetry") {
        // Disabled-telemetry overhead: a no-op counter bump is one
        // Option check and must stay under 25 ns/iter even on a noisy
        // runner.
        c.at_most_ns("telemetry/noop_incr", 25.0);
        c.at_most_ns("telemetry/noop_span", 25.0);
        // An instrumented placement with telemetry disabled must not
        // cost more than 1.15x the enabled run (it is normally well
        // below it; this trips if the disabled path ever starts doing
        // real work).
        c.ratio_at_most(
            "telemetry_overhead/place_medical/disabled",
            "telemetry_overhead/place_medical/enabled",
            1.15,
        );
    }

    if run("actor") {
        // The PR's acceptance floor: the optimized runtime must move
        // the 10k-actor ping storm (telemetry enabled) at >= 5x the
        // seed's msgs/sec (measured 5.3-5.6x on the dev machine; the
        // interleaved-group harness keeps the ratio honest on noisy
        // runners).
        c.speedup(
            "actor_ping_storm/naive/enabled",
            "actor_ping_storm/fast/enabled",
            5.0,
        );
        // Resolved-handle instruments with telemetry disabled must cost
        // at most 1.15x the enabled run (measured ~0.9x: the disabled
        // path is the same code minus cell stores).
        c.ratio_at_most(
            "actor_ping_storm/fast/disabled",
            "actor_ping_storm/fast/enabled",
            1.15,
        );
        // O(active) scheduling: a 64-hop walk through 10k mostly-idle
        // actors costs the seed a full population scan per hop. The
        // measured gap is ~9000x; 100x only trips on a real regression.
        c.speedup("actor_sparse_chain/naive", "actor_sparse_chain/fast", 100.0);
        // Message-spine throughput (fan-out cascade) and the
        // supervised failure/retry path must also stay well ahead of
        // the seed (measured ~4x each; floor 2x).
        c.speedup(
            "actor_fanout_cascade/naive/enabled",
            "actor_fanout_cascade/fast/enabled",
            2.0,
        );
        c.speedup(
            "actor_failure_churn/naive/enabled",
            "actor_failure_churn/fast/enabled",
            2.0,
        );
        // Work-stealing executor. Every thread count must be in the
        // artifact — a bench that silently skipped the parallel storm
        // is a regression vector, same as a missing floor.
        for t in [1, 2, 4] {
            let _ = c.ns(&format!("actor_ping_storm/parallel/{t}"));
        }
        // The `env/cpus` entry says how parallel the measuring machine
        // was, so the checker enforces a floor the hardware can
        // actually express. On >= 8 CPUs the 8-thread storm must beat
        // the single-threaded fast path by >= 3x (the PR's acceptance
        // floor). With fewer CPUs that speedup is physically
        // impossible — 8 workers share the cores — so the check
        // degrades to an oversubscription ceiling: the 8-thread run
        // may cost at most 2.5x the fast path (measured 1.6-1.8x on a
        // 1-CPU container; this bounds coordination overhead, which is
        // what a work-stealing regression would inflate first).
        match c.ns("env/cpus") {
            Some(cpus) if cpus >= 8.0 => {
                println!("      env/cpus = {cpus:.0} (>= 8): enforcing the parallel speedup floor");
                c.speedup(
                    "actor_ping_storm/fast/enabled",
                    "actor_ping_storm/parallel/8",
                    3.0,
                );
            }
            Some(cpus) => {
                println!(
                    "      env/cpus = {cpus:.0} (< 8): speedup floor not expressible on this \
                     machine; enforcing the oversubscription ceiling instead"
                );
                c.ratio_at_most(
                    "actor_ping_storm/parallel/8",
                    "actor_ping_storm/fast/enabled",
                    2.5,
                );
            }
            None => {} // missing env/cpus already counted as a failure
        }
    }

    if c.failures == 0 {
        println!("bench_check: all thresholds hold");
        ExitCode::SUCCESS
    } else {
        println!("bench_check: {} threshold(s) violated", c.failures);
        ExitCode::FAILURE
    }
}
