//! E14 — user-defined control-plane policies in the sandboxed extension
//! VM (Design Principles 1–2: users define, the provider executes the
//! definition safely).
//!
//! Measures: placement throughput with the native policy vs a
//! tenant-supplied bytecode policy; gas per invocation; and containment
//! of hostile extensions (infinite loops, stack bombs, veto-everything).

use std::time::Instant;
use udc_bench::{banner, Table};
use udc_extvm::{assemble, VmLimits};
use udc_hal::Datacenter;
use udc_sched::{ExtVmPolicy, SchedOptions, Scheduler};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{random_app, RandomDagConfig};

fn workload() -> udc_spec::AppSpec {
    let (app, _) = random_app(RandomDagConfig {
        tasks: 40,
        data: 10,
        edge_prob: 0.2,
        conflict_prob: 0.0,
        seed: 3,
    });
    app
}

fn time_placements(mut sched: Scheduler, rounds: usize) -> (f64, usize) {
    let app = workload();
    let start = Instant::now();
    let mut placed = 0;
    for _ in 0..rounds {
        let mut dc = Datacenter::default();
        if let Ok(p) = sched.place_app(&mut dc, &app) {
            placed += p.modules.len();
        }
    }
    (start.elapsed().as_secs_f64(), placed)
}

fn main() {
    banner(
        "E14",
        "Tenant extensions in the control plane (sandboxed policy VM)",
        "users can define their own placement policies; the provider runs \
         them with hard gas/memory bounds so hostile code cannot hurt the \
         control plane",
    );

    const ROUNDS: usize = 50;

    // Native provider policy.
    let (native_s, native_placed) =
        time_placements(Scheduler::new(SchedOptions::default()), ROUNDS);

    // Tenant policy: worst-fit (prefer the emptiest device) — a policy
    // the provider does not offer, expressed in 4 instructions.
    let worst_fit = assemble("arg 0\narg 4\nsub\nret").expect("valid policy");
    let (vm_s, vm_placed) = time_placements(
        Scheduler::new(SchedOptions {
            policy: Box::new(ExtVmPolicy::new(
                "tenant-worst-fit",
                worst_fit,
                VmLimits::default(),
            )),
            ..Default::default()
        }),
        ROUNDS,
    );

    // A richer tenant policy with loops (rack-distance scoring).
    let fancy = assemble(
        "
            arg 3
            push 0
            lt
            jnz no_pref
            push 1000
            arg 2
            arg 3
            hostcall 0.2
            push 100
            mul
            sub
            ret
        no_pref:
            arg 0
            arg 4
            sub
            ret
        ",
    )
    .expect("valid policy");
    let (fancy_s, fancy_placed) = time_placements(
        Scheduler::new(SchedOptions {
            policy: Box::new(ExtVmPolicy::new(
                "tenant-rack-aware",
                fancy,
                VmLimits::default(),
            )),
            ..Default::default()
        }),
        ROUNDS,
    );

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "policy",
        "modules placed",
        "total time",
        "per-placement overhead vs native",
    ]);
    let per_native = native_s / native_placed.max(1) as f64;
    for (name, secs, placed) in [
        ("native locality", native_s, native_placed),
        ("tenant worst-fit (VM)", vm_s, vm_placed),
        ("tenant rack-aware (VM)", fancy_s, fancy_placed),
    ] {
        let per = secs / placed.max(1) as f64;
        // Wall times stay out of the artifact (non-deterministic); the
        // placed counts are the reproducible claim.
        tel.event(
            EventKind::Measurement,
            Labels::tenant(name),
            &[("modules_placed", FieldValue::from(placed as u64))],
        );
        t.row(&[
            name.to_string(),
            placed.to_string(),
            format!("{secs:.3} s"),
            format!("{:.2}x", per / per_native),
        ]);
    }
    t.print();

    println!();
    println!("Hostile-extension containment:");
    let mut h = Table::new(&["extension", "behaviour", "outcome"]);
    for (name, src) in [
        ("infinite loop", "spin: jmp spin"),
        ("stack bomb", "grow: push 1\njmp grow"),
        ("divide by zero", "push 1\npush 0\ndiv\nret"),
        ("veto everything", "push -1\nret"),
    ] {
        let prog = assemble(src).expect("assembles");
        let mut sched = Scheduler::new(SchedOptions {
            policy: Box::new(ExtVmPolicy::new(
                name,
                prog,
                VmLimits {
                    max_gas: 50_000,
                    ..Default::default()
                },
            )),
            ..Default::default()
        });
        let mut dc = Datacenter::default();
        let result = sched.place_app(&mut dc, &workload());
        tel.event(
            EventKind::Measurement,
            Labels::tenant(name),
            &[
                ("contained", FieldValue::from(true)),
                ("placement_succeeded", FieldValue::from(result.is_ok())),
            ],
        );
        h.row(&[
            name.to_string(),
            "traps/vetoes every candidate".to_string(),
            match result {
                Ok(_) => "contained: placement fell back to allocator default".to_string(),
                Err(_) => "contained: placement refused, control plane alive".to_string(),
            },
        ]);
    }
    h.print();

    println!();
    println!(
        "Shape: VM-hosted policies cost a small constant factor per placement \
         (gas-metered interpretation); hostile extensions only hurt their own \
         tenant's placement quality — the control plane never crashes or hangs."
    );
    udc_bench::report::export("exp_14_extvm", &tel);
}
