//! E1 — Fig. 2 + Table 1: the medical pipeline under the exact user
//! definitions, end to end on UDC.
//!
//! Reproduces the paper's motivating example: every module is placed
//! with exactly its defined resources, execution environment and
//! distributed semantics, the pipeline runs, data protection is applied
//! on every protected access, and the user verifies fulfillment via
//! remote attestation.

use udc_bench::{banner, fmt_cost, fmt_us, pct, Table};
use udc_core::{CloudConfig, ModuleVerification, UdcCloud};
use udc_isolate::WarmPoolConfig;
use udc_workload::medical_pipeline;

fn main() {
    banner(
        "E1",
        "Medical pipeline (Fig. 2, Table 1)",
        "users define resources, exec env & security, and distributed \
         semantics per module; the cloud realizes them exactly",
    );

    let mut cloud = UdcCloud::new(CloudConfig {
        warm_pool: WarmPoolConfig::uniform(2),
        ..Default::default()
    });
    // Enabled before submission so the whole deployment — validation,
    // placement, allocation, launch — lands in one causal trace that
    // `udc-trace` can reconstruct from the exported artifact.
    let obs = cloud.enable_telemetry();
    let app = medical_pipeline();
    let mut dep = cloud
        .submit(&app)
        .expect("pipeline places on the default datacenter");
    let report = cloud.run(&dep);
    let verification = cloud.verify_deployment(&dep);

    let mut t = Table::new(&[
        "module",
        "kind",
        "placed on",
        "units",
        "env",
        "tenancy",
        "replicas",
        "start",
        "verify",
    ]);
    for (id, p) in &dep.placement.modules {
        let spec = app.module(id).expect("module exists");
        let v = match verification.modules.get(id) {
            Some(ModuleVerification::Verified) => "verified",
            Some(ModuleVerification::Failed(_)) => "FAILED",
            Some(ModuleVerification::NotVerifiable) => "trust provider",
            None => "-",
        };
        t.row(&[
            id.to_string(),
            format!("{:?}", spec.kind).to_lowercase(),
            p.placed_kind.to_string(),
            p.allocations
                .first()
                .map(|a| a.total_units().to_string())
                .unwrap_or_default(),
            p.env.kind.to_string(),
            if p.env.single_tenant {
                "single"
            } else {
                "shared"
            }
            .to_string(),
            p.replica_devices.len().to_string(),
            format!("{:?}", p.start_mode).to_lowercase(),
            v.to_string(),
        ]);
    }
    t.print();

    println!();
    let mut s = Table::new(&["metric", "value"]);
    s.row(&["end-to-end makespan", &fmt_us(report.makespan_us)]);
    s.row(&["total cost (run)", &fmt_cost(report.cost.total)]);
    s.row(&[
        "protected accesses sealed",
        &report.sealed_messages.to_string(),
    ]);
    s.row(&[
        "bytes under encryption/integrity",
        &format!("{} MiB", report.sealed_bytes >> 20),
    ]);
    s.row(&["warm-start fraction", &pct(report.warm_fraction)]);
    s.row(&[
        "modules verified / trust-required",
        &format!(
            "{} / {}",
            verification.verified(),
            verification.not_verifiable()
        ),
    ]);
    s.row(&[
        "all user definitions fulfilled",
        &verification.all_fulfilled().to_string(),
    ]);
    s.print();

    cloud.teardown(&mut dep);
    println!();
    println!(
        "Table 1 fulfillment check: S1 replicas=3 sequential, A4 strongest+2x, B2 weak \
         container — all encoded, placed and (where verifiable) attested."
    );
    udc_bench::report::export("exp_01_medical", &obs);
}
