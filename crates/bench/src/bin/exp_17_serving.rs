//! E17 — event-triggered ML inference serving (§1's motivating niche
//! workload): Poisson and bursty request streams served by (a) FaaS
//! (sandboxed containers, no GPU) and (b) UDC (GPU modules with a warm
//! pool). Reports latency percentiles and cost per 1 000 requests.
//!
//! "Many ML inference tasks are event-triggered and could benefit from
//! serverless computing and GPU acceleration. Despite the high demand
//! for such applications, no cloud provider has yet supported GPU in
//! their serverless computing offerings."

use udc_baseline::FaasRuntime;
use udc_bench::{banner, fmt_us, Table};
use udc_isolate::{EnvKind, WarmPool, WarmPoolConfig};
use udc_spec::{ResourceKind, ResourceVector};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{bursty_arrivals, poisson_arrivals};

const WORK_UNITS: u64 = 2_000; // One inference.
const GPU_RATE: f64 = 2_500.0; // Work units/s on one GPU (HAL profile).
const IDLE_EXPIRY_US: u64 = 60_000_000; // Instances cool down after 60 s idle.

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Serves a request stream on UDC: a pool of warm GPU module instances;
/// a request reuses a warm instance when one is idle, else cold-starts a
/// new lightweight-VM + GPU attach. Deterministic single-queue model.
fn serve_udc(arrivals: &[u64], warm_target: usize) -> (Vec<u64>, f64) {
    let exec_us = (WORK_UNITS as f64 / GPU_RATE * 1e6) as u64;
    let mut pool =
        WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::LightweightVm, warm_target));
    // (busy_until, last_used) per live instance.
    let mut instances: Vec<(u64, u64)> = Vec::new();
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut gpu_busy_us = 0u64;
    for &t in arrivals {
        // Expire idle instances (the provider reclaims them).
        instances.retain(|&(busy_until, last)| busy_until > t || t - last < IDLE_EXPIRY_US);
        // Pick an idle instance if any.
        let start = if let Some(slot) = instances.iter_mut().find(|(busy, _)| *busy <= t) {
            slot.0 = t + exec_us;
            slot.1 = t;
            0
        } else {
            let startup = pool.acquire(EnvKind::LightweightVm);
            instances.push((t + startup + exec_us, t));
            startup
        };
        latencies.push(start + exec_us);
        gpu_busy_us += exec_us;
        // The provider refills the warm pool in the background.
        pool.refill();
    }
    // Cost: GPU-time actually billed (pay per use) at $3/GPU-hour.
    let cost_per_1k = gpu_busy_us as f64 / 3_600e6 * 3.0 / arrivals.len() as f64 * 1_000.0;
    latencies.sort_unstable();
    (latencies, cost_per_1k)
}

/// Serves the stream on FaaS: per-request sandboxed container with a
/// cold-start probability from idle expiry, CPU-only (degraded) compute.
fn serve_faas(arrivals: &[u64]) -> (Vec<u64>, f64) {
    let faas = FaasRuntime::default();
    let mut demand = ResourceVector::new();
    demand.set(ResourceKind::Gpu, 1);
    demand.set(ResourceKind::Dram, 4096);
    let out = faas.run(&demand, WORK_UNITS).expect("fits the ladder");
    let mut warm_until = 0u64;
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut cost = 0.0;
    for &t in arrivals {
        let cold = t >= warm_until;
        let startup = if cold { faas.cold_start_us } else { 5_000 };
        latencies.push(startup + out.exec_us);
        warm_until = t + out.exec_us + IDLE_EXPIRY_US;
        cost += out.cost_per_invocation;
    }
    latencies.sort_unstable();
    // cost_per_invocation is in micro-dollars.
    (latencies, cost / 1e6 / arrivals.len() as f64 * 1_000.0)
}

fn main() {
    banner(
        "E17",
        "Event-triggered ML inference serving: FaaS vs UDC",
        "serverless cannot attach GPUs; UDC serves the same events on \
         real GPUs with warm-pooled fine-grained modules",
    );

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "stream",
        "scheme",
        "p50 latency",
        "p99 latency",
        "cost / 1k requests",
    ]);
    let streams: Vec<(&str, Vec<u64>)> = vec![
        ("poisson 2/s", poisson_arrivals(2.0, 2_000, 1)),
        ("poisson 20/s", poisson_arrivals(20.0, 2_000, 2)),
        (
            "bursty 100/s x100ms",
            bursty_arrivals(100.0, 100, 2_000, 2_000, 3),
        ),
    ];
    for (name, arrivals) in &streams {
        let (faas_lat, faas_cost) = serve_faas(arrivals);
        let (udc_cold_lat, udc_cold_cost) = serve_udc(arrivals, 0);
        let (udc_lat, udc_cost) = serve_udc(arrivals, 4);
        tel.event(
            EventKind::Measurement,
            Labels::tenant(*name),
            &[
                ("faas_p50_us", FieldValue::from(percentile(&faas_lat, 0.5))),
                ("faas_p99_us", FieldValue::from(percentile(&faas_lat, 0.99))),
                ("faas_cost_per_1k", FieldValue::from(faas_cost)),
                (
                    "udc_cold_p99_us",
                    FieldValue::from(percentile(&udc_cold_lat, 0.99)),
                ),
                ("udc_cold_cost_per_1k", FieldValue::from(udc_cold_cost)),
                ("udc_p50_us", FieldValue::from(percentile(&udc_lat, 0.5))),
                ("udc_p99_us", FieldValue::from(percentile(&udc_lat, 0.99))),
                ("udc_cost_per_1k", FieldValue::from(udc_cost)),
            ],
        );
        t.row(&[
            name.to_string(),
            "FaaS (CPU degraded)".to_string(),
            fmt_us(percentile(&faas_lat, 0.5)),
            fmt_us(percentile(&faas_lat, 0.99)),
            format!("${faas_cost:.3}"),
        ]);
        t.row(&[
            name.to_string(),
            "UDC (GPU, no warm pool)".to_string(),
            fmt_us(percentile(&udc_cold_lat, 0.5)),
            fmt_us(percentile(&udc_cold_lat, 0.99)),
            format!("${udc_cold_cost:.3}"),
        ]);
        t.row(&[
            name.to_string(),
            "UDC (GPU, warm pool 4)".to_string(),
            fmt_us(percentile(&udc_lat, 0.5)),
            fmt_us(percentile(&udc_lat, 0.99)),
            format!("${udc_cost:.3}"),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: FaaS p50 is dominated by degraded CPU inference (the 25x GPU \
         gap §1 implies); UDC's p50 is GPU-bound (~{}), with p99 showing the \
         cold-start tail that the warm pool caps. UDC also bills GPU-seconds \
         actually used — the serverless pay-per-use model on hardware \
         serverless does not offer.",
        fmt_us((WORK_UNITS as f64 / GPU_RATE * 1e6) as u64)
    );
    udc_bench::report::export("exp_17_serving", &tel);
}
