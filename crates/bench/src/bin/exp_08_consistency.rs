//! E8 — §3.4/Table 1: replication × consistency trade-offs. Users pick
//! "the consistency level of concurrent accesses to their data modules
//! (e.g., sequential consistency)" and a replication factor,
//! "with the understanding that more replicas is more expensive."
//!
//! Sweep replication 1–3 × all five levels on a mixed read/write
//! workload; report write/read latency, staleness exposure, and the
//! reader-preference effect of Table 1's S2.

use udc_bench::{banner, pct, Table};
use udc_dist::{Op, OpKind, PreferenceQueue, ReplicatedStore, ReplicationParams};
use udc_spec::{ConsistencyLevel, OpPreference};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

const LEVELS: [ConsistencyLevel; 5] = [
    ConsistencyLevel::Eventual,
    ConsistencyLevel::Release,
    ConsistencyLevel::Causal,
    ConsistencyLevel::Sequential,
    ConsistencyLevel::Linearizable,
];

fn main() {
    banner(
        "E8",
        "Replication factor x consistency level",
        "stricter consistency and more replicas cost latency; weaker \
         levels trade staleness for speed (Table 1's S1-S4 spectrum)",
    );

    let mut t = Table::new(&[
        "consistency",
        "replicas",
        "mean write lat (us)",
        "mean read lat (us)",
        "stale reads",
        "survives failures",
    ]);
    let tel = Telemetry::enabled();
    for level in LEVELS {
        for replicas in [1u32, 2, 3] {
            let mut store =
                ReplicatedStore::new(replicas, level, ReplicationParams::default()).expect("r>=1");
            store.set_observer(tel.clone());
            // 2 000 ops on one hot key, 30% writes; asynchronous
            // propagation completes every 10 ops.
            for i in 0..2_000u64 {
                if i % 10 == 3 || i % 10 == 6 || i % 10 == 9 {
                    store.write("hot", &i.to_le_bytes());
                } else {
                    store.read("hot");
                }
                if i % 10 == 0 {
                    store.release();
                    store.propagate();
                }
            }
            let s = store.stats();
            tel.event(
                EventKind::Measurement,
                Labels::tenant(format!("{}-r{replicas}", level.name())),
                &[
                    (
                        "mean_write_latency_us",
                        FieldValue::from(s.mean_write_latency_us()),
                    ),
                    (
                        "mean_read_latency_us",
                        FieldValue::from(s.mean_read_latency_us()),
                    ),
                    (
                        "stale_read_fraction",
                        FieldValue::from(s.stale_reads as f64 / s.reads.max(1) as f64),
                    ),
                ],
            );
            t.row(&[
                level.name().to_string(),
                replicas.to_string(),
                format!("{:.0}", s.mean_write_latency_us()),
                format!("{:.0}", s.mean_read_latency_us()),
                pct(s.stale_reads as f64 / s.reads.max(1) as f64),
                (replicas - 1).to_string(),
            ]);
        }
    }
    t.print();

    println!();
    println!(
        "In-network replication ablation (§3.4's programmable-network \
         direction, cites NOPaxos/Pegasus): switch-side fan-out makes \
         synchronous writes replica-count-flat"
    );
    let mut a = Table::new(&[
        "consistency",
        "replicas",
        "host fan-out write (us)",
        "in-network write (us)",
        "saving",
    ]);
    for level in [ConsistencyLevel::Sequential, ConsistencyLevel::Linearizable] {
        for replicas in [3u32, 5, 7] {
            let mut host =
                ReplicatedStore::new(replicas, level, ReplicationParams::default()).expect("r>=1");
            let mut net = ReplicatedStore::new(replicas, level, ReplicationParams::in_network())
                .expect("r>=1");
            let h = host.write("k", b"v");
            let n = net.write("k", b"v");
            a.row(&[
                level.name().to_string(),
                replicas.to_string(),
                h.to_string(),
                n.to_string(),
                format!("{:.0}%", (1.0 - n as f64 / h as f64) * 100.0),
            ]);
        }
    }
    a.print();

    println!();
    println!("Reader preference (Table 1, S2): mean queueing position by class");
    let mut t = Table::new(&["preference", "mean read position", "mean write position"]);
    for pref in [
        OpPreference::None,
        OpPreference::Reader,
        OpPreference::Writer,
    ] {
        let mut q = PreferenceQueue::new(pref, 64);
        for i in 0..200u64 {
            q.push(Op {
                kind: if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                arrived_us: i,
                tag: i,
            });
        }
        let mut pos = 0u64;
        let (mut rsum, mut rn, mut wsum, mut wn) = (0u64, 0u64, 0u64, 0u64);
        while let Some(op) = q.pop() {
            match op.kind {
                OpKind::Read => {
                    rsum += pos;
                    rn += 1;
                }
                OpKind::Write => {
                    wsum += pos;
                    wn += 1;
                }
            }
            pos += 1;
        }
        t.row(&[
            pref.name().to_string(),
            format!("{:.0}", rsum as f64 / rn.max(1) as f64),
            format!("{:.0}", wsum as f64 / wn.max(1) as f64),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: write latency rises monotonically with strictness and (for the \
         synchronous levels) with replication; stale reads exist only below \
         causal; reader preference moves reads ahead of writes without \
         starving them (bounded)."
    );
    udc_bench::report::export("exp_08_consistency", &tel);
}
