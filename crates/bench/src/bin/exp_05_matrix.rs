//! E5 — the "cloud DevOps matrix from hell" (§1): integration work when
//! every feature must be wired into every service (coupled, today) vs
//! once into a decoupled layer (UDC).

use udc_baseline::{simulate_rollout_report, DevOpsMatrix};
use udc_bench::{banner, Table};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

fn main() {
    banner(
        "E5",
        "DevOps matrix from hell: M x N vs M + N",
        "providers incur exceedingly high development costs and slow \
         time-to-market; UDC decouples layers so each change lands once",
    );

    // AWS-scale starting point: ~200 services, ~40 hardware/software/
    // security feature classes; 5-year horizon.
    let report = simulate_rollout_report(DevOpsMatrix::new(200, 40), 5, 24, 10, 400.0);

    let mut t = Table::new(&[
        "year",
        "coupled cells (cumulative)",
        "decoupled cells (cumulative)",
        "ratio",
    ]);
    for (year, coupled, decoupled) in &report.by_year {
        t.row(&[
            year.to_string(),
            coupled.to_string(),
            decoupled.to_string(),
            format!("{:.0}x", *coupled as f64 / (*decoupled).max(1) as f64),
        ]);
    }
    t.print();

    println!();
    println!(
        "Feature time-to-market: coupled {:.0} weeks vs decoupled {:.1} weeks",
        report.coupled_ttm_weeks, report.decoupled_ttm_weeks
    );
    println!(
        "Standing compatibility surface after 5y: {} cells (coupled) vs {} (decoupled)",
        DevOpsMatrix::new(200 + 5 * 24, 40 + 5 * 10).matrix_cells(),
        (200 + 5 * 24) + (40 + 5 * 10)
    );

    let tel = Telemetry::enabled();
    for (year, coupled, decoupled) in &report.by_year {
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("year{year}")),
            &[
                ("coupled_cells", FieldValue::from(*coupled)),
                ("decoupled_cells", FieldValue::from(*decoupled)),
            ],
        );
    }
    tel.event(
        EventKind::Measurement,
        Labels::none(),
        &[
            (
                "coupled_ttm_weeks",
                FieldValue::from(report.coupled_ttm_weeks),
            ),
            (
                "decoupled_ttm_weeks",
                FieldValue::from(report.decoupled_ttm_weeks),
            ),
        ],
    );
    udc_bench::report::export("exp_05_matrix", &tel);
}
