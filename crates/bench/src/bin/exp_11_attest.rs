//! E11 — §4: verifying the fulfillment of user definitions via remote
//! attestation, including the paper's extension beyond today's
//! primitives ("e.g., whether or not resources were provided as
//! specified").

use std::collections::BTreeMap;
use std::time::Instant;
use udc_bench::{banner, Table};
use udc_core::{check_quote, policy_for_module, ModuleVerification};
use udc_crypto::attest::{RootOfTrust, Verifier};
use udc_crypto::derive_key;
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

fn main() {
    banner(
        "E11",
        "Verifying user definitions with (extended) remote attestation",
        "users verify properties trusting only the hardware; classic \
         quotes cover software identity, UDC claims add aspects",
    );

    // Verifiability matrix: which UDC definitions can be checked how.
    let mut m = Table::new(&[
        "user definition",
        "today's primitives",
        "UDC extended quotes",
    ]);
    m.row(&["software identity (measurement)", "yes", "yes"]);
    m.row(&["isolation = strongest/strong (TEE)", "yes", "yes"]);
    m.row(&[
        "tenancy = single-tenant",
        "no",
        "yes (claim, device-signed)",
    ]);
    m.row(&[
        "resources as specified (e.g. 4 CPUs)",
        "no",
        "yes (claim, device-signed)",
    ]);
    m.row(&[
        "isolation = medium/weak",
        "no (trust provider)",
        "no (trust provider)",
    ]);
    m.row(&[
        "replication factor fulfilled",
        "no",
        "yes (per-replica quotes)",
    ]);
    m.print();

    println!();
    println!("Quote generation + verification cost vs module count:");
    let tel = Telemetry::enabled();
    let mut t = Table::new(&["modules", "total time", "per-module", "all verified"]);
    for n in [1usize, 10, 100, 1_000] {
        let start = Instant::now();
        let mut all_ok = true;
        for i in 0..n {
            let key = derive_key(b"root", b"device", &i.to_le_bytes());
            let mut rot = RootOfTrust::new(format!("env{i}"), key);
            rot.measure("boot: udc-runtime v1");
            rot.measure(&format!("load: module-{i}"));
            let mut verifier = Verifier::new();
            verifier.trust_device(format!("env{i}"), key);
            let nonce = derive_key(b"nonce", &i.to_le_bytes(), b"challenge");
            let mut claims = BTreeMap::new();
            claims.insert("isolation".to_string(), "strongest".to_string());
            claims.insert("tenancy".to_string(), "single_tenant".to_string());
            claims.insert("resources.cpu".to_string(), "4".to_string());
            let quote = rot.quote(nonce, claims);
            let policy = policy_for_module(
                &[
                    "boot: udc-runtime v1".to_string(),
                    format!("load: module-{i}"),
                ],
                "strongest",
                true,
                &[("cpu".to_string(), 4)],
            );
            if check_quote(&verifier, &quote, &nonce, &policy) != ModuleVerification::Verified {
                all_ok = false;
            }
        }
        let elapsed = start.elapsed();
        // Wall time stays out of the artifact to keep exports
        // reproducible; the verified count is the claim under test.
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("n{n}")),
            &[
                ("modules", FieldValue::from(n as u64)),
                ("all_verified", FieldValue::from(all_ok)),
            ],
        );
        t.row(&[
            n.to_string(),
            format!("{elapsed:.2?}"),
            format!("{:.2?}", elapsed / n as u32),
            all_ok.to_string(),
        ]);
    }
    t.print();

    println!();
    println!("Detection of unfulfilled definitions (provider cheats):");
    let key = derive_key(b"root", b"device", b"cheat");
    let mut rot = RootOfTrust::new("env-cheat", key);
    rot.measure("boot: udc-runtime v1");
    let mut verifier = Verifier::new();
    verifier.trust_device("env-cheat", key);
    let nonce = [5u8; 32];
    let mut claims = BTreeMap::new();
    claims.insert("isolation".to_string(), "strong".to_string());
    claims.insert("tenancy".to_string(), "shared".to_string());
    claims.insert("resources.cpu".to_string(), "2".to_string()); // Gave 2, promised 4.
    let quote = rot.quote(nonce, claims);
    let policy = policy_for_module(
        &["boot: udc-runtime v1".to_string()],
        "strong",
        false,
        &[("cpu".to_string(), 4)],
    );
    let caught = match check_quote(&verifier, &quote, &nonce, &policy) {
        ModuleVerification::Failed(msg) => {
            println!("  under-provisioned CPUs caught: {msg}");
            true
        }
        other => {
            println!("  UNEXPECTED: {other:?}");
            false
        }
    };
    println!(
        "  (classic attestation would pass here — the software stack is \
         genuine; only the resource CLAIM exposes the shortfall)"
    );
    tel.event(
        EventKind::Measurement,
        Labels::tenant("cheat"),
        &[("under_provision_caught", FieldValue::from(caught))],
    );
    udc_bench::report::export("exp_11_attest", &tel);
}
