//! E13 — §3.1's locality hints: "developers (or a compiler) can specify
//! computation tasks that should be executed together on the same
//! hardware unit ... Such information will be used to guide our runtime
//! scheduler to make intelligent compute/data placement."
//!
//! The same applications are placed with hints honoured vs ignored;
//! reported: access-edge transfer time and cross-rack bytes.

use udc_bench::{banner, fmt_us, Table};
use udc_hal::Datacenter;
use udc_sched::{data_movement, SchedOptions, Scheduler};
use udc_spec::AppSpec;
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{medical_pipeline, microservice_chain, ml_serving_chain};

fn place_and_measure(app: &AppSpec, use_hints: bool) -> (u64, u64) {
    let mut dc = Datacenter::default();
    let mut sched = Scheduler::new(SchedOptions {
        use_locality_hints: use_hints,
        ..Default::default()
    });
    let placement = sched.place_app(&mut dc, app).expect("placement fits");
    dc.fabric().reset_traffic();
    data_movement(&dc, app, &placement)
}

fn main() {
    banner(
        "E13",
        "Locality hints: colocate and task-data affinity",
        "locality information guides compute/data placement; without it, \
         fine-grained modules scatter and the fabric pays",
    );

    let apps: Vec<(&str, AppSpec)> = vec![
        ("medical (Fig. 2)", medical_pipeline()),
        ("ml-serving", ml_serving_chain(2)),
        ("microservices x8", microservice_chain(8)),
    ];

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "application",
        "transfer time (hints on)",
        "transfer time (hints off)",
        "cross-rack bytes (on)",
        "cross-rack bytes (off)",
        "improvement",
    ]);
    for (name, app) in &apps {
        let (us_on, xrack_on) = place_and_measure(app, true);
        let (us_off, xrack_off) = place_and_measure(app, false);
        tel.event(
            EventKind::Measurement,
            Labels::tenant(*name),
            &[
                ("transfer_us_hints_on", FieldValue::from(us_on)),
                ("transfer_us_hints_off", FieldValue::from(us_off)),
                ("xrack_bytes_on", FieldValue::from(xrack_on)),
                ("xrack_bytes_off", FieldValue::from(xrack_off)),
            ],
        );
        t.row(&[
            name.to_string(),
            fmt_us(us_on),
            fmt_us(us_off),
            format!("{} MiB", xrack_on >> 20),
            format!("{} MiB", xrack_off >> 20),
            format!("{:.2}x", us_off as f64 / us_on.max(1) as f64),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: hints keep affine task/data pairs in one rack, cutting \
         cross-rack bytes; the win grows with data size (medical's 1 GiB \
         record store dominates). Placement without hints still works — \
         hints are advisory, exactly as §3.1 describes."
    );
    udc_bench::report::export("exp_13_locality", &tel);
}
