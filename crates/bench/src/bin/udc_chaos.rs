//! `udc-chaos` — deterministic chaos harness for the self-healing
//! control plane (§3.4).
//!
//! Sweeps crash rate × repair delay × checkpoint cadence over the
//! medical pipeline. Each trial injects a seeded [`FailurePlan`] into a
//! fresh cloud, drives [`UdcCloud::advance`] until the failure schedule
//! drains, and asserts the convergence invariants after every interval:
//!
//! - no live allocation references a dead device;
//! - no orphaned isolates (healthy ⇔ running environment with
//!   allocations; repairing/degraded ⇔ stopped, fully evicted);
//! - once converged, `verify_deployment` passes and the bill
//!   reconciles post-heal;
//! - every deployment ends converged or explicitly Degraded.
//!
//! Trials are independent: each derives its RNG seed from its index and
//! records into a private telemetry hub, absorbed in trial order — so
//! the exported artifact is byte-identical at any `--threads N`.
//!
//! ```text
//! udc-chaos                      # full 54-trial sweep
//! udc-chaos --threads 8          # same artifact, faster
//! udc-chaos --smoke              # small fixed sweep for CI
//! udc-chaos --explain A2         # repair decision audit for a module
//! udc-chaos --full-artifact      # dump the whole telemetry snapshot
//! ```
//!
//! The default artifact is a *compact* per-trial summary distilled from
//! the trial Measurement events (a few hundred lines); `--full-artifact`
//! restores the complete hub snapshot — every span, decision, and metric
//! series — for trace tooling like `udc-trace`. Both are byte-identical
//! at any thread count.

use std::collections::BTreeSet;

use udc_bench::harness::{fan_out, parse_threads};
use udc_bench::{banner_stderr, fmt_us, pct, Table};
use udc_core::{CloudConfig, Deployment, ModuleHealth, UdcCloud};
use udc_hal::{DeviceId, FailurePlan};
use udc_isolate::WarmPoolConfig;
use udc_spec::FailureHandling;
use udc_telemetry::{EventKind, FieldValue, Labels, ReasonCode, Telemetry};
use udc_workload::medical_pipeline;

use serde_json::{Number, Value};

/// Crash window: every crash lands inside the first simulated second.
const HORIZON_US: u64 = 1_000_000;
/// Interval between repair-loop invocations.
const STEP_US: u64 = 250_000;
/// Messages seeded per module (the recoverable state).
const MESSAGES_PER_MODULE: u64 = 40;

/// One cell of the sweep.
#[derive(Clone, Copy)]
struct Combo {
    crash_prob: f64,
    repair_delay_us: u64,
    /// 0 = re-execute everywhere; otherwise checkpoint every N messages
    /// (1 message models 1 ms of work, so this is also `interval_ms`).
    checkpoint_every: u64,
    rep: usize,
}

impl Combo {
    fn label(&self) -> Labels {
        Labels::tenant(format!(
            "c{:02}-r{}-k{:02}-{}",
            (self.crash_prob * 100.0) as u32,
            self.repair_delay_us / 1_000,
            self.checkpoint_every,
            self.rep
        ))
    }
}

fn sweep(smoke: bool) -> Vec<Combo> {
    let (crash_probs, repair_delays, cadences, reps): (&[f64], &[u64], &[u64], usize) = if smoke {
        (&[0.20], &[250_000], &[0, 8], 1)
    } else {
        (&[0.08, 0.20, 0.40], &[250_000, 2_000_000], &[0, 8, 32], 3)
    };
    let mut combos = Vec::new();
    for &crash_prob in crash_probs {
        for &repair_delay_us in repair_delays {
            for &checkpoint_every in cadences {
                for rep in 0..reps {
                    combos.push(Combo {
                        crash_prob,
                        repair_delay_us,
                        checkpoint_every,
                        rep,
                    });
                }
            }
        }
    }
    combos
}

/// Asserts the structural invariants that must hold after *every*
/// repair interval, not just at the end.
fn assert_interval_invariants(dep: &Deployment, dead: &BTreeSet<DeviceId>, trial: usize) {
    for (id, p) in &dep.placement.modules {
        let health = dep.health.module(id);
        let env = &dep.environments[id];
        match health {
            ModuleHealth::Healthy => {
                assert!(
                    !p.allocations.is_empty(),
                    "trial {trial}: healthy module {id} holds no allocation"
                );
                assert!(
                    env.is_running(),
                    "trial {trial}: healthy module {id} has no running isolate"
                );
                for a in &p.allocations {
                    for s in &a.slices {
                        assert!(
                            !dead.contains(&s.device),
                            "trial {trial}: {id} allocation references dead device {}",
                            s.device
                        );
                    }
                }
            }
            ModuleHealth::Repairing { .. } | ModuleHealth::Degraded { .. } => {
                // Fully evicted: no allocation survives, no isolate runs
                // detached from resources (an orphan).
                assert!(
                    p.allocations.is_empty(),
                    "trial {trial}: lost module {id} still holds allocations"
                );
                assert!(
                    !env.is_running(),
                    "trial {trial}: orphaned isolate for lost module {id}"
                );
            }
        }
    }
}

/// Runs one trial; returns its private hub for in-order absorption.
fn run_trial(trial: usize, combo: Combo) -> Telemetry {
    let seed = 0xC4A0_5000u64 + trial as u64;
    let labels = combo.label();

    // The user's failure-handling choice is the sweep's third axis:
    // override every module to the cadence under test (0 = re-execute).
    let mut app = medical_pipeline();
    for m in app.modules.values_mut() {
        m.dist.failure = Some(if combo.checkpoint_every == 0 {
            FailureHandling::Reexecute
        } else {
            FailureHandling::Checkpoint {
                interval_ms: combo.checkpoint_every,
            }
        });
    }

    let mut cloud = UdcCloud::new(CloudConfig {
        warm_pool: WarmPoolConfig::uniform(2),
        ..Default::default()
    });
    let tel = Telemetry::enabled();
    cloud.set_observer(tel.clone());
    let mut dep = cloud.submit(&app).expect("pipeline places");
    cloud.run(&dep); // record the billing counters the post-heal reconciliation audits
    dep.recovery.seed_app(&app, MESSAGES_PER_MODULE);

    // Anchor the failure window to the post-run clock: `run` advanced
    // simulated time by the workload's execution, and a plan left on
    // `[0, HORIZON_US)` would fire entirely inside the first tick —
    // crash and repair collapsing into one interval, so no repair ever
    // races a still-dead device.
    let t0 = cloud.datacenter().clock().now();
    let devices = cloud.datacenter().device_ids();
    cloud.datacenter_mut().set_failure_plan(
        FailurePlan::random(
            &devices,
            combo.crash_prob,
            HORIZON_US,
            combo.repair_delay_us,
            seed,
        )
        .shifted(t0),
    );

    // Drive the repair loop past the last possible event (crash window +
    // repair delay) plus the worst-case retry backoff tail.
    let deadline = HORIZON_US + combo.repair_delay_us + 12_000_000;
    let mut dead: BTreeSet<DeviceId> = BTreeSet::new();
    let mut elapsed = 0u64;
    let (mut crashes, mut repairs, mut retries) = (0u64, 0u64, 0u64);
    while elapsed < deadline {
        let report = cloud.advance(&mut dep, STEP_US);
        elapsed += STEP_US;
        for d in &report.crashed_devices {
            dead.insert(*d);
        }
        for d in &report.repaired_devices {
            dead.remove(d);
        }
        crashes += report.crashed_devices.len() as u64;
        repairs += report.repaired.len() as u64;
        retries += report.retried.len() as u64;
        assert_interval_invariants(&dep, &dead, trial);
        if elapsed > HORIZON_US + combo.repair_delay_us
            && report.is_quiet()
            && dep.health.repairing_modules().is_empty()
        {
            break;
        }
    }
    assert!(
        dead.is_empty(),
        "trial {trial}: failure plan left dead devices"
    );

    // Terminal invariant: converged, or *explicitly* degraded — never a
    // silent in-between.
    let degraded = dep.health.degraded_modules();
    let converged = dep.health.is_converged();
    assert!(
        converged || !degraded.is_empty(),
        "trial {trial}: neither converged nor degraded"
    );
    assert!(
        dep.health.repairing_modules().is_empty(),
        "trial {trial}: repair still in flight at the deadline"
    );
    if converged {
        let verification = cloud.verify_deployment(&dep);
        assert!(
            verification.all_fulfilled(),
            "trial {trial}: post-heal verification failed"
        );
        let billing = verification.billing.expect("telemetry enabled");
        assert!(
            billing.consistent(),
            "trial {trial}: bill does not reconcile post-heal: {billing:?}"
        );
    }

    tel.incr("chaos.trials", labels.clone(), 1);
    tel.incr("chaos.converged", labels.clone(), converged as u64);
    tel.incr(
        "chaos.degraded_modules",
        labels.clone(),
        degraded.len() as u64,
    );
    tel.incr("chaos.device_crashes", labels.clone(), crashes);
    tel.incr("chaos.module_repairs", labels.clone(), repairs);
    tel.incr("chaos.replace_retries", labels.clone(), retries);
    let mttr = tel.histogram("heal.mttr_us", &Labels::none());
    tel.event(
        EventKind::Measurement,
        labels,
        &[
            ("trial", FieldValue::from(trial)),
            ("crash_prob", FieldValue::from(combo.crash_prob)),
            ("repair_delay_us", FieldValue::from(combo.repair_delay_us)),
            ("checkpoint_every", FieldValue::from(combo.checkpoint_every)),
            ("device_crashes", FieldValue::from(crashes)),
            ("module_repairs", FieldValue::from(repairs)),
            ("converged", FieldValue::from(converged)),
            ("degraded_modules", FieldValue::from(degraded.len())),
            (
                "mttr_mean_us",
                FieldValue::from(mttr.as_ref().map(|h| h.mean).unwrap_or(0.0)),
            ),
        ],
    );

    cloud.teardown(&mut dep);
    tel
}

/// Distills the sweep into the compact per-trial artifact: one object
/// per trial Measurement event (in deterministic trial order) plus
/// sweep totals and the absorbed MTTR summary. A 54-trial sweep exports
/// a few hundred lines instead of the ~200k-line full snapshot. Trials
/// are read from their private hubs, not the absorbed one, so the
/// absorbed flight recorder's ring eviction can never drop a row.
fn export_compact(smoke: bool, tel: &Telemetry, trial_hubs: &[Telemetry]) -> std::path::PathBuf {
    fn field(v: &FieldValue) -> Value {
        match v {
            FieldValue::U64(u) => Value::Number(Number::U(*u)),
            FieldValue::I64(i) => Value::Number(Number::I(*i)),
            FieldValue::F64(f) => Value::Number(Number::F(*f)),
            FieldValue::Str(s) => Value::String(s.clone()),
            FieldValue::Bool(b) => Value::Bool(*b),
        }
    }
    let mut trials = Vec::new();
    let mut totals: Vec<(&str, u64)> = [
        ("trials", 0),
        ("converged", 0),
        ("device_crashes", 0),
        ("module_repairs", 0),
        ("degraded_modules", 0),
    ]
    .to_vec();
    for hub in trial_hubs {
        let snap = hub.snapshot();
        let e = snap
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Measurement)
            .expect("every trial records a Measurement event");
        let mut obj = vec![(
            "cell".to_string(),
            Value::String(e.labels.tenant.clone().unwrap_or_default()),
        )];
        for (k, v) in &e.fields {
            obj.push((k.clone(), field(v)));
        }
        for (name, total) in totals.iter_mut() {
            match e.fields.iter().find(|(k, _)| k == name) {
                Some((_, FieldValue::U64(u))) => *total += u,
                Some((_, FieldValue::Bool(b))) => *total += *b as u64,
                _ => *total += (*name == "trials") as u64,
            }
        }
        trials.push(Value::Object(obj));
    }
    let mttr = tel
        .histogram("heal.mttr_us", &Labels::none())
        .map(|h| {
            Value::Object(vec![
                ("count".to_string(), Value::Number(Number::U(h.count))),
                ("mean".to_string(), Value::Number(Number::F(h.mean))),
                ("p50".to_string(), Value::Number(Number::U(h.p50))),
                ("p95".to_string(), Value::Number(Number::U(h.p95))),
                ("max".to_string(), Value::Number(Number::U(h.max))),
            ])
        })
        .unwrap_or(Value::Null);
    let doc = Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("udc.chaos.compact.v1".to_string()),
        ),
        (
            "mode".to_string(),
            Value::String(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "totals".to_string(),
            Value::Object(
                totals
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Value::Number(Number::U(v))))
                    .collect(),
            ),
        ),
        ("mttr_us".to_string(), mttr),
        ("trials".to_string(), Value::Array(trials)),
    ]);
    let path = udc_bench::results_path("udc_chaos.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    let json = serde_json::to_string_pretty(&doc).expect("compact artifact renders");
    std::fs::write(&path, json + "\n").expect("compact artifact writes");
    eprintln!();
    eprintln!("Compact chaos artifact: {}", path.display());
    println!("{}", path.display());
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full_artifact = args.iter().any(|a| a == "--full-artifact");
    let explain = args
        .iter()
        .position(|a| a == "--explain")
        .and_then(|i| args.get(i + 1).cloned());
    let threads = match parse_threads(&args) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    banner_stderr(
        "udc-chaos",
        "Self-healing under deterministic chaos",
        "user-defined failure handling only matters if the provider closes \
         the loop: crash → detect → evict → re-place → re-launch → recover",
    );

    let combos = sweep(smoke);
    eprintln!(
        "{} trials ({} mode), {} thread(s)",
        combos.len(),
        if smoke { "smoke" } else { "full" },
        threads
    );

    let tel = Telemetry::enabled();
    let trial_hubs = fan_out(threads, combos.len(), |i| run_trial(i, combos[i]));
    for trial in &trial_hubs {
        tel.absorb(trial);
    }

    // Human summary per sweep cell (rep 0 shown; all reps absorbed).
    let mut t = Table::new(&[
        "crash prob",
        "repair delay",
        "ckpt every",
        "trials",
        "converged",
        "degraded mods",
        "crashes",
        "repairs",
        "retries",
    ]);
    let mut seen = BTreeSet::new();
    let (mut trials_all, mut converged_all) = (0u64, 0u64);
    for combo in &combos {
        let key = (
            (combo.crash_prob * 100.0) as u32,
            combo.repair_delay_us,
            combo.checkpoint_every,
        );
        if !seen.insert(key) {
            continue;
        }
        let (mut n, mut conv, mut degr, mut crash, mut rep, mut retr) = (0, 0, 0, 0, 0, 0);
        for other in &combos {
            if (
                (other.crash_prob * 100.0) as u32,
                other.repair_delay_us,
                other.checkpoint_every,
            ) != key
            {
                continue;
            }
            let l = other.label();
            n += tel.counter("chaos.trials", &l);
            conv += tel.counter("chaos.converged", &l);
            degr += tel.counter("chaos.degraded_modules", &l);
            crash += tel.counter("chaos.device_crashes", &l);
            rep += tel.counter("chaos.module_repairs", &l);
            retr += tel.counter("chaos.replace_retries", &l);
        }
        trials_all += n;
        converged_all += conv;
        t.row(&[
            pct(combo.crash_prob),
            fmt_us(combo.repair_delay_us),
            if combo.checkpoint_every == 0 {
                "reexec".to_string()
            } else {
                combo.checkpoint_every.to_string()
            },
            n.to_string(),
            conv.to_string(),
            degr.to_string(),
            crash.to_string(),
            rep.to_string(),
            retr.to_string(),
        ]);
    }
    t.eprint();
    eprintln!();
    if let Some(h) = tel.histogram("heal.mttr_us", &Labels::none()) {
        eprintln!(
            "MTTR over {} repairs: mean {}, p95 {}",
            h.count,
            fmt_us(h.mean as u64),
            fmt_us(h.p95),
        );
    }
    eprintln!(
        "convergence: {converged_all}/{trials_all} trials healed fully \
         (the rest ended explicitly Degraded)"
    );

    if let Some(module) = explain {
        let snapshot = tel.snapshot();
        let picked: Vec<_> = snapshot
            .decisions
            .iter()
            .filter(|d| {
                // The repair story for a module spans two stages: the
                // heal loop's own records (detect/degraded) plus the
                // re-placement audit, where rejected candidates carry
                // the crash_excluded code. Plain submit-time placement
                // records never use the repair reason codes, so this
                // picks out exactly the healing trail.
                d.module == module
                    && (d.stage.starts_with("heal.")
                        || matches!(
                            d.reason,
                            ReasonCode::CrashExcluded | ReasonCode::Evicted | ReasonCode::Degraded
                        ))
            })
            .collect();
        eprintln!();
        if picked.is_empty() {
            eprintln!("no repair decisions recorded for module `{module}`");
        } else {
            eprintln!("repair audit for `{module}` ({} records):", picked.len());
            let mut t = Table::new(&["at", "stage", "candidate", "verdict", "reason", "detail"]);
            for d in picked {
                t.row(&[
                    fmt_us(d.at_us),
                    d.stage.clone(),
                    d.candidate.clone(),
                    if d.accepted { "accepted" } else { "rejected" }.to_string(),
                    d.reason.as_str().to_string(),
                    d.detail.clone(),
                ]);
            }
            t.eprint();
        }
    }

    if full_artifact {
        udc_bench::report::export("udc_chaos", &tel);
    } else {
        export_compact(smoke, &tel, &trial_hubs);
    }
}
