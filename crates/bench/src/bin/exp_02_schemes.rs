//! E2 — Fig. 1: scheme comparison. The same medical pipeline is run (or
//! priced) under a local datacenter, IaaS, FaaS, and UDC, comparing
//! cost, GPU support, control, and IT burden — the four columns of the
//! paper's architecture figure.

use udc_baseline::{CaasProvisioner, Catalog, FaasRuntime, IaasProvisioner};
use udc_bench::{banner, fmt_cost, fmt_us, Table};
use udc_core::{CloudConfig, UdcCloud};
use udc_spec::{ModuleKind, ResourceKind, ResourceVector};
use udc_workload::medical_pipeline;

/// Extracts per-module demand vectors the baselines can price. Modules
/// without explicit demands get the defaults UDC would infer (1 CPU for
/// cheapest-goal tasks, etc.).
fn demands() -> Vec<(String, ResourceVector, u64, bool)> {
    let app = medical_pipeline();
    app.iter_modules()
        .map(|m| {
            let mut d = m.resource.demand.clone();
            if m.kind == ModuleKind::Task && !d.iter().any(|(k, _)| k.is_compute()) {
                // Goal-driven tasks: assume the module runs on 1 CPU in
                // the baselines (they have no "fastest" knob). ML tasks
                // keep their GPUs.
                d.set(ResourceKind::Cpu, 1);
            }
            if m.kind == ModuleKind::Data && d.is_zero() {
                d.set(ResourceKind::Ssd, m.bytes.unwrap_or(1 << 20) >> 20);
            }
            // Give every module a little memory (the baselines bill it).
            if d.get(ResourceKind::Dram) == 0 {
                d.set(ResourceKind::Dram, 2048);
            }
            (
                m.id.to_string(),
                d,
                m.work_units.unwrap_or(100),
                m.kind == ModuleKind::Task,
            )
        })
        .collect()
}

fn main() {
    banner(
        "E2",
        "Cloud schemes compared on the medical pipeline (Fig. 1)",
        "IaaS/CaaS = more control, heavy IT burden; FaaS = no control \
         (and no GPUs); UDC = great control and flexibility, little IT burden",
    );

    let mods = demands();
    let task_demands: Vec<&(String, ResourceVector, u64, bool)> =
        mods.iter().filter(|(_, _, _, t)| *t).collect();

    // --- IaaS: one instance per module ---
    let iaas = IaasProvisioner::new();
    let all: Vec<ResourceVector> = mods.iter().map(|(_, d, _, _)| d.clone()).collect();
    let iaas_out = iaas.provision(&all);

    // --- Local datacenter: buy the same instances, amortized over 3y at
    //     25% mean utilization (over-provisioned for peak) ---
    let local_hourly = iaas_out.hourly_cost * 4;

    // --- FaaS: each task becomes a function; GPU tasks degrade ---
    let faas = FaasRuntime::default();
    let mut faas_cost_per_run = 0.0;
    let mut faas_latency_us = 0u64;
    let mut degraded = 0;
    let mut faas_unservable = 0;
    for (_, d, work, _) in &task_demands {
        match faas.run(d, *work) {
            Some(out) => {
                faas_cost_per_run += out.cost_per_invocation;
                faas_latency_us += out.exec_us + faas.cold_start_us;
                if out.degraded {
                    degraded += 1;
                }
            }
            None => faas_unservable += 1,
        }
    }

    // --- UDC: exact placement, real run, under full causal tracing ---
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let obs = cloud.enable_telemetry();
    let mut dep = cloud.submit(&medical_pipeline()).expect("places");
    let report = cloud.run(&dep);
    let udc_hourly = {
        // Normalize to an hourly rate for comparison.
        let hour = 3_600_000_000u64;
        cloud
            .datacenter()
            .device(udc_hal::DeviceId(0))
            .map(|_| ())
            .expect("dc exists");
        udc_core::BillingModel::default()
            .price(cloud.datacenter(), &dep.placement, hour)
            .total
    };

    let mut t = Table::new(&[
        "scheme",
        "hourly cost",
        "pipeline latency",
        "GPU support",
        "user-managed layers",
        "user control",
    ]);
    t.row(&[
        "local datacenter".to_string(),
        fmt_cost(local_hourly),
        fmt_us(report.makespan_us),
        "yes (self-built)".to_string(),
        "6 (all of Fig. 1 col 1)".to_string(),
        "full".to_string(),
    ]);
    t.row(&[
        "IaaS (VM per module)".to_string(),
        fmt_cost(iaas_out.hourly_cost),
        fmt_us(report.makespan_us + 8_000_000), // VM boot on the critical path.
        "yes (fixed shapes)".to_string(),
        "4 (app, sys sw, VM, net cfg)".to_string(),
        "partial".to_string(),
    ]);
    // CaaS: bin-pack the modules onto m5.4xlarge Kubernetes nodes.
    let caas = CaasProvisioner::new(
        Catalog::aws_2021()
            .by_name("m5.4xlarge")
            .expect("catalog shape")
            .clone(),
    );
    let caas_out = caas.provision(&all);
    t.row(&[
        "CaaS (k8s node group)".to_string(),
        format!("{} (+GPU unservable)", fmt_cost(caas_out.hourly_cost)),
        fmt_us(report.makespan_us + 400_000), // Sandboxed-container start.
        format!("NO ({} modules unplaceable)", caas_out.unplaceable),
        "3 (app, containers, cluster cfg)".to_string(),
        "partial".to_string(),
    ]);
    t.row(&[
        "FaaS (function per task)".to_string(),
        format!("{} /run", fmt_cost(faas_cost_per_run as u64)),
        fmt_us(faas_latency_us),
        format!("NO ({degraded} tasks degraded 25x)"),
        "1 (code only)".to_string(),
        "none".to_string(),
    ]);
    t.row(&[
        "UDC (Table 1 security)".to_string(),
        fmt_cost(udc_hourly),
        fmt_us(report.makespan_us),
        "yes (exact amount)".to_string(),
        "0 (definitions only)".to_string(),
        "full (declarative)".to_string(),
    ]);

    // The same pipeline with security definitions relaxed to weak:
    // shows what exact-fit alone costs (the single-tenant devices of
    // Table 1 are what make the secure variant expensive — §1: strong
    // isolation "comes at the cost of reduced resource utilization").
    let mut relaxed = medical_pipeline();
    let ids: Vec<udc_spec::ModuleId> = relaxed.modules.keys().cloned().collect();
    for id in ids {
        if let Some(m) = relaxed.modules.get_mut(&id) {
            m.exec_env.isolation = None;
            m.exec_env.tenancy = None;
            m.exec_env.tee_if_cpu = false;
        }
    }
    let mut cloud2 = UdcCloud::new(CloudConfig::default());
    let mut dep2 = cloud2.submit(&relaxed).expect("places");
    let report2 = cloud2.run(&dep2);
    let hour = 3_600_000_000u64;
    let udc_relaxed_hourly = udc_core::BillingModel::default()
        .price(cloud2.datacenter(), &dep2.placement, hour)
        .total;
    t.row(&[
        "UDC (security relaxed)".to_string(),
        fmt_cost(udc_relaxed_hourly),
        fmt_us(report2.makespan_us),
        "yes (exact amount)".to_string(),
        "0 (definitions only)".to_string(),
        "full (declarative)".to_string(),
    ]);
    t.print();
    cloud2.teardown(&mut dep2);

    println!();
    println!(
        "IaaS mean paid-but-unused fraction : {:.1}%",
        iaas_out.mean_waste * 100.0
    );
    println!("FaaS tasks it cannot serve at all  : {faas_unservable}");
    println!(
        "UDC security: {} protected accesses sealed; single-tenant + TEE \
         placements attested (see E1)",
        report.sealed_messages
    );

    cloud.teardown(&mut dep);

    obs.event(
        udc_telemetry::EventKind::Measurement,
        udc_telemetry::Labels::none(),
        &[
            (
                "local_hourly",
                udc_telemetry::FieldValue::from(local_hourly),
            ),
            (
                "iaas_hourly",
                udc_telemetry::FieldValue::from(iaas_out.hourly_cost),
            ),
            (
                "caas_hourly",
                udc_telemetry::FieldValue::from(caas_out.hourly_cost),
            ),
            (
                "faas_cost_per_run",
                udc_telemetry::FieldValue::from(faas_cost_per_run),
            ),
            ("udc_hourly", udc_telemetry::FieldValue::from(udc_hourly)),
            (
                "udc_relaxed_hourly",
                udc_telemetry::FieldValue::from(udc_relaxed_hourly),
            ),
            (
                "iaas_mean_waste",
                udc_telemetry::FieldValue::from(iaas_out.mean_waste),
            ),
            (
                "faas_unservable",
                udc_telemetry::FieldValue::from(faas_unservable as u64),
            ),
        ],
    );
    udc_bench::report::export("exp_02_schemes", &obs);
}
