//! E9 — §3.4/Table 1: failure handling — "whether to re-execute a module
//! or recover from a user-defined checkpoint."
//!
//! An actor processes a long message stream; we crash it at 93% progress
//! and recover with both strategies across checkpoint cadences, using
//! the reliable message log (§3.1: "messages could be reliably recorded
//! for faster recovery").

use bytes::Bytes;
use udc_actor::{Actor, ActorError, ActorId, Ctx, Message, SupervisionPolicy, System};
use udc_bench::{banner, fmt_us, Table};
use udc_core::{CloudConfig, UdcCloud};
use udc_dist::{recover, CheckpointStore, RecoveryStrategy};
use udc_hal::FailurePlan;
use udc_spec::{
    AppSpec, DistributedAspect, FailureHandling, ModuleId, ResourceAspect, ResourceKind, TaskSpec,
};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

/// A stateful accumulator whose per-message work we model as 1 ms.
#[derive(Default)]
struct Acc {
    sum: u64,
}

impl Actor for Acc {
    fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        let mut b = [0u8; 8];
        let n = msg.payload.len().min(8);
        b[..n].copy_from_slice(&msg.payload[..n]);
        self.sum = self.sum.wrapping_add(u64::from_le_bytes(b));
        Ok(())
    }
    fn reset(&mut self) {
        self.sum = 0;
    }
    fn snapshot(&self) -> Vec<u8> {
        self.sum.to_le_bytes().to_vec()
    }
    fn restore(&mut self, snap: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(snap);
        self.sum = u64::from_le_bytes(b);
    }
}

const MSG_COST_US: u64 = 1_000; // Modelled re-processing cost per message.
const RESTORE_COST_US: u64 = 50_000; // Checkpoint restore cost.

fn main() {
    banner(
        "E9",
        "Recovery: re-execute vs user-defined checkpoints",
        "users choose failure handling per failure domain; checkpoints \
         trade steady-state overhead for recovery speed",
    );

    let mut t = Table::new(&[
        "stream length",
        "checkpoint every",
        "msgs replayed (reexec)",
        "msgs replayed (ckpt)",
        "recovery time (reexec)",
        "recovery time (ckpt)",
        "speedup",
    ]);

    let tel = Telemetry::enabled();
    for &n in &[1_000u64, 10_000, 100_000] {
        for &interval in &[100u64, 1_000, 10_000] {
            if interval > n {
                continue;
            }
            // The module crashes at 93% progress: only the messages
            // processed before the crash exist in the reliable log.
            let crash_at = n * 93 / 100;
            let mut sys = System::new();
            let id = ActorId::new("worker");
            sys.spawn(
                id.clone(),
                Box::<Acc>::default(),
                SupervisionPolicy::Restart,
            );
            for i in 1..=crash_at {
                sys.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
            }
            sys.run_until_quiescent(usize::MAX);
            let mut cps = CheckpointStore::new();
            let entries = sys.log().entries();
            let mut running = 0u64;
            for (i, m) in entries.iter().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&m.payload[..8]);
                running = running.wrapping_add(u64::from_le_bytes(b));
                if ((i + 1) as u64).is_multiple_of(interval) {
                    cps.save(&id, m.seq, running.to_le_bytes().to_vec());
                }
            }
            let mut a = Acc::default();
            let reexec = recover(&id, &mut a, sys.log(), &cps, RecoveryStrategy::Reexecute);
            let mut b = Acc::default();
            let ckpt = recover(
                &id,
                &mut b,
                sys.log(),
                &cps,
                RecoveryStrategy::FromCheckpoint,
            );
            assert_eq!(a.sum, b.sum, "both strategies must converge");

            let reexec_us = reexec.replayed as u64 * MSG_COST_US;
            let ckpt_us = ckpt.replayed as u64 * MSG_COST_US + RESTORE_COST_US;
            tel.event(
                EventKind::Measurement,
                Labels::tenant(format!("n{n}-ckpt{interval}")),
                &[
                    ("reexec_replayed", FieldValue::from(reexec.replayed as u64)),
                    ("ckpt_replayed", FieldValue::from(ckpt.replayed as u64)),
                    ("reexec_us", FieldValue::from(reexec_us)),
                    ("ckpt_us", FieldValue::from(ckpt_us)),
                ],
            );
            t.row(&[
                format!("{n} (crash at {crash_at})"),
                interval.to_string(),
                reexec.replayed.to_string(),
                ckpt.replayed.to_string(),
                fmt_us(reexec_us),
                fmt_us(ckpt_us),
                format!("{:.0}x", reexec_us as f64 / ckpt_us.max(1) as f64),
            ]);
        }
    }
    t.print();

    println!();
    println!(
        "Shape: re-execution cost grows linearly with history; checkpoint \
         recovery is bounded by the cadence. Short modules should re-execute \
         (checkpoint overhead dominates); long-running ones checkpoint — \
         exactly Table 1's split (A2/A3/A4 checkpoint; A1/B1 re-execute)."
    );

    // The same trade-off, end to end: instead of calling `recover`
    // directly, crash the device under a deployed module and let the
    // control plane's repair loop (detect → evict → re-place →
    // re-launch → recover) pick the user-defined strategy. MTTR now
    // includes the control-plane work, not just state reconstruction.
    println!();
    println!("End-to-end through the repair loop (530-message log, crash mid-stream):");
    let mut t2 = Table::new(&[
        "failure handling",
        "strategy chosen",
        "msgs replayed",
        "MTTR (detect -> recovered)",
    ]);
    for (label, handling) in [
        ("re-execute", FailureHandling::Reexecute),
        (
            "checkpoint every 100",
            FailureHandling::Checkpoint { interval_ms: 100 },
        ),
    ] {
        let mut app = AppSpec::new("e9-heal");
        app.add_task(
            TaskSpec::new("W")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_work(100)
                .with_dist(DistributedAspect::default().failure(handling)),
        );
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.set_observer(tel.clone());
        let mut dep = cloud.submit(&app).expect("app places");
        dep.recovery.seed_app(&app, 530);

        let id = ModuleId::from("W");
        let dead = dep.placement.modules[&id].primary_device;
        let t0 = cloud.datacenter().clock().now();
        cloud.datacenter_mut().set_failure_plan(
            FailurePlan::from_events(vec![udc_hal::FailureEvent {
                at_us: 5,
                device: dead,
                crash: true,
            }])
            .shifted(t0),
        );
        let report = cloud.advance(&mut dep, 10);
        let healed = &report.repaired[0];
        let outcome = healed.recovery.as_ref().expect("state was seeded");
        assert_eq!(
            dep.recovery.recovered_state(&id),
            dep.recovery.expected_state(&id),
            "repair must reconstruct the pre-crash state"
        );
        tel.event(
            EventKind::Measurement,
            Labels::module("tenant", format!("e9-heal-{label}")),
            &[
                ("replayed", FieldValue::from(outcome.replayed as u64)),
                ("mttr_us", FieldValue::from(healed.mttr_us)),
            ],
        );
        t2.row(&[
            label.to_string(),
            format!("{:?}", outcome.strategy),
            outcome.replayed.to_string(),
            fmt_us(healed.mttr_us),
        ]);
        cloud.teardown(&mut dep);
    }
    t2.print();
    println!();
    println!(
        "Shape: the checkpointing module replays only the post-checkpoint \
         suffix, so its repair-loop MTTR stays near the restore floor while \
         re-execution pays for the whole log."
    );
    udc_bench::report::export("exp_09_recovery", &tel);
}
