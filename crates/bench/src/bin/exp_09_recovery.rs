//! E9 — §3.4/Table 1: failure handling — "whether to re-execute a module
//! or recover from a user-defined checkpoint."
//!
//! An actor processes a long message stream; we crash it at 93% progress
//! and recover with both strategies across checkpoint cadences, using
//! the reliable message log (§3.1: "messages could be reliably recorded
//! for faster recovery").

use bytes::Bytes;
use udc_actor::{Actor, ActorError, ActorId, Ctx, Message, SupervisionPolicy, System};
use udc_bench::{banner, fmt_us, Table};
use udc_dist::{recover, CheckpointStore, RecoveryStrategy};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

/// A stateful accumulator whose per-message work we model as 1 ms.
#[derive(Default)]
struct Acc {
    sum: u64,
}

impl Actor for Acc {
    fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        let mut b = [0u8; 8];
        let n = msg.payload.len().min(8);
        b[..n].copy_from_slice(&msg.payload[..n]);
        self.sum = self.sum.wrapping_add(u64::from_le_bytes(b));
        Ok(())
    }
    fn reset(&mut self) {
        self.sum = 0;
    }
    fn snapshot(&self) -> Vec<u8> {
        self.sum.to_le_bytes().to_vec()
    }
    fn restore(&mut self, snap: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(snap);
        self.sum = u64::from_le_bytes(b);
    }
}

const MSG_COST_US: u64 = 1_000; // Modelled re-processing cost per message.
const RESTORE_COST_US: u64 = 50_000; // Checkpoint restore cost.

fn main() {
    banner(
        "E9",
        "Recovery: re-execute vs user-defined checkpoints",
        "users choose failure handling per failure domain; checkpoints \
         trade steady-state overhead for recovery speed",
    );

    let mut t = Table::new(&[
        "stream length",
        "checkpoint every",
        "msgs replayed (reexec)",
        "msgs replayed (ckpt)",
        "recovery time (reexec)",
        "recovery time (ckpt)",
        "speedup",
    ]);

    let tel = Telemetry::enabled();
    for &n in &[1_000u64, 10_000, 100_000] {
        for &interval in &[100u64, 1_000, 10_000] {
            if interval > n {
                continue;
            }
            // The module crashes at 93% progress: only the messages
            // processed before the crash exist in the reliable log.
            let crash_at = n * 93 / 100;
            let mut sys = System::new();
            let id = ActorId::new("worker");
            sys.spawn(
                id.clone(),
                Box::<Acc>::default(),
                SupervisionPolicy::Restart,
            );
            for i in 1..=crash_at {
                sys.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
            }
            sys.run_until_quiescent(usize::MAX);
            let mut cps = CheckpointStore::new();
            let entries = sys.log().entries();
            let mut running = 0u64;
            for (i, m) in entries.iter().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&m.payload[..8]);
                running = running.wrapping_add(u64::from_le_bytes(b));
                if ((i + 1) as u64).is_multiple_of(interval) {
                    cps.save(&id, m.seq, running.to_le_bytes().to_vec());
                }
            }
            let mut a = Acc::default();
            let reexec = recover(&id, &mut a, sys.log(), &cps, RecoveryStrategy::Reexecute);
            let mut b = Acc::default();
            let ckpt = recover(
                &id,
                &mut b,
                sys.log(),
                &cps,
                RecoveryStrategy::FromCheckpoint,
            );
            assert_eq!(a.sum, b.sum, "both strategies must converge");

            let reexec_us = reexec.replayed as u64 * MSG_COST_US;
            let ckpt_us = ckpt.replayed as u64 * MSG_COST_US + RESTORE_COST_US;
            tel.event(
                EventKind::Measurement,
                Labels::tenant(format!("n{n}-ckpt{interval}")),
                &[
                    ("reexec_replayed", FieldValue::from(reexec.replayed as u64)),
                    ("ckpt_replayed", FieldValue::from(ckpt.replayed as u64)),
                    ("reexec_us", FieldValue::from(reexec_us)),
                    ("ckpt_us", FieldValue::from(ckpt_us)),
                ],
            );
            t.row(&[
                format!("{n} (crash at {crash_at})"),
                interval.to_string(),
                reexec.replayed.to_string(),
                ckpt.replayed.to_string(),
                fmt_us(reexec_us),
                fmt_us(ckpt_us),
                format!("{:.0}x", reexec_us as f64 / ckpt_us.max(1) as f64),
            ]);
        }
    }
    t.print();

    println!();
    println!(
        "Shape: re-execution cost grows linearly with history; checkpoint \
         recovery is bounded by the cadence. Short modules should re-execute \
         (checkpoint overhead dominates); long-running ones checkpoint — \
         exactly Table 1's split (A2/A3/A4 checkpoint; A1/B1 re-execute)."
    );
    udc_bench::report::export("exp_09_recovery", &tel);
}
