//! E7 — §3.3's single-tenant waste challenge: "single-tenant
//! environments could cause large resource wastes as a module is not
//! likely to occupy the entire hardware unit."
//!
//! Sweep module size (cores) on 64-core devices, shared vs single-
//! tenant: stranded capacity and how many tenants a fixed cluster can
//! host.

use udc_bench::{banner, pct, Table};
use udc_hal::pool::AllocConstraints;
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_spec::{ResourceKind, ResourceVector};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

fn cluster() -> Datacenter {
    Datacenter::new(DatacenterConfig {
        pools: vec![PoolConfig {
            kind: ResourceKind::Cpu,
            devices: 32,
            capacity_per_device: 64,
        }],
        racks: 4,
        fabric: FabricConfig::default(),
    })
}

fn main() {
    banner(
        "E7",
        "Single-tenant placement waste at module granularity",
        "single-tenant isolation defends hardware side channels but \
         strands the rest of the device",
    );

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "module size (cores)",
        "tenants hosted (shared)",
        "tenants hosted (single-tenant)",
        "stranded capacity (single-tenant)",
        "capacity cost of isolation",
    ]);
    for size in [1u64, 2, 4, 8, 16, 32, 64] {
        let demand = ResourceVector::new().with(ResourceKind::Cpu, size);

        let mut shared_dc = cluster();
        let mut shared = 0;
        while shared_dc
            .allocate_vector(&format!("t{shared}"), &demand, &AllocConstraints::default())
            .is_ok()
        {
            shared += 1;
        }

        let mut excl_dc = cluster();
        let mut excl = 0;
        while excl_dc
            .allocate_vector(
                &format!("t{excl}"),
                &demand,
                &AllocConstraints {
                    exclusive: true,
                    ..Default::default()
                },
            )
            .is_ok()
        {
            excl += 1;
        }
        let pool = excl_dc.pool(ResourceKind::Cpu).expect("cpu pool");
        let stranded = 1.0 - pool.total_used() as f64 / pool.total_capacity() as f64;
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("cores{size}")),
            &[
                ("shared_tenants", FieldValue::from(shared as u64)),
                ("exclusive_tenants", FieldValue::from(excl as u64)),
                ("stranded_fraction", FieldValue::from(stranded)),
            ],
        );
        t.row(&[
            size.to_string(),
            shared.to_string(),
            excl.to_string(),
            pct(stranded),
            format!("{:.0}x", shared as f64 / excl.max(1) as f64),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: a 1-core single-tenant module strands 63/64 of its device — \
         64x fewer tenants per cluster; the waste vanishes as modules approach \
         device size. This is why UDC prices exclusivity as the whole device \
         (see udc-core billing) and why the paper calls it out as a challenge."
    );
    udc_bench::report::export("exp_07_tenancy", &tel);
}
