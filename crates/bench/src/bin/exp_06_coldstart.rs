//! E6 — §3.3's cold-start challenge: "As secure environments are usually
//! slower to start up, (cold) starting many environments for many
//! modules can significantly slow down the entire application."
//!
//! Sweep: application fan-out (modules started in parallel) × isolation
//! class, cold versus warm-pooled. Reported: per-module startup and the
//! aggregate startup work.

use udc_bench::{banner, fmt_us, pct, Table};
use udc_isolate::{EnvKind, WarmPool, WarmPoolConfig};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

fn main() {
    banner(
        "E6",
        "Cold starts at fine granularity, and warm pools as mitigation",
        "secure environments start slowly; fine-grained modules multiply \
         the penalty; provider-side warm pools recover it",
    );

    let mut t = Table::new(&["environment", "cold start", "warm start", "speedup"]);
    for kind in EnvKind::ALL {
        let m = kind.cost_model();
        t.row(&[
            kind.to_string(),
            fmt_us(m.cold_start_us),
            fmt_us(m.warm_start_us),
            format!("{:.0}x", m.cold_start_us as f64 / m.warm_start_us as f64),
        ]);
    }
    t.print();

    println!();
    println!("Fan-out sweep (total startup work per app, TEE enclave modules):");
    let mut t = Table::new(&[
        "modules",
        "all cold",
        "warm pool (8)",
        "warm pool (64)",
        "hit rate (64)",
    ]);
    let tel = Telemetry::enabled();
    for fanout in [1usize, 4, 16, 64, 256] {
        let cold_total = EnvKind::TeeEnclave.cost_model().cold_start_us * fanout as u64;
        let run_pool = |size: usize| -> (u64, f64) {
            let mut pool =
                WarmPool::new(WarmPoolConfig::disabled().with(EnvKind::TeeEnclave, size));
            let mut total = 0;
            for _ in 0..fanout {
                total += pool.acquire(EnvKind::TeeEnclave);
            }
            (total, pool.stats().hit_rate())
        };
        let (warm8, _) = run_pool(8);
        let (warm64, hit64) = run_pool(64);
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("fanout{fanout}")),
            &[
                ("all_cold_us", FieldValue::from(cold_total)),
                ("warm8_us", FieldValue::from(warm8)),
                ("warm64_us", FieldValue::from(warm64)),
                ("warm64_hit_rate", FieldValue::from(hit64)),
            ],
        );
        t.row(&[
            fanout.to_string(),
            fmt_us(cold_total),
            fmt_us(warm8),
            fmt_us(warm64),
            pct(hit64),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: cold-start work grows linearly with fan-out and is dominated \
         by the secure classes (TEE 30x container warm start); a warm pool \
         sized to the fan-out flattens the curve until it drains."
    );
    udc_bench::report::export("exp_06_coldstart", &tel);
}
