//! E10 — §3.4: "users may define conflicting specifications for
//! different modules ... UDC needs to detect such conflicts and either
//! chooses the strictest specification or returns an error to the
//! user."
//!
//! Random DAGs with seeded ground-truth conflicts: detection recall,
//! detection cost at scale, and the behaviour of both policies.

use std::time::Instant;
use udc_bench::{banner, pct, Table};
use udc_spec::conflict::{detect_conflicts, resolve, ConflictPolicy};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{random_app, RandomDagConfig};

fn main() {
    banner(
        "E10",
        "Aspect-conflict detection and resolution at scale",
        "conflicting per-module definitions must be caught; strictest-wins \
         or error, the user's choice",
    );

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "modules",
        "seeded conflicts",
        "detected",
        "recall",
        "detect time",
        "strictest-wins ok",
        "error policy rejects",
    ]);
    for &(tasks, data) in &[(10usize, 4usize), (100, 30), (1_000, 300), (10_000, 3_000)] {
        let (app, seeded) = random_app(RandomDagConfig {
            tasks,
            data,
            edge_prob: 0.25,
            conflict_prob: 0.3,
            seed: 7,
        });
        let start = Instant::now();
        let report = detect_conflicts(&app);
        let detect_time = start.elapsed();
        let consistency_conflicts = report
            .conflicts
            .iter()
            .filter(|c| matches!(c, udc_spec::conflict::ConflictKind::Consistency { .. }))
            .count();
        let recall = if seeded == 0 {
            1.0
        } else {
            consistency_conflicts.min(seeded) as f64 / seeded as f64
        };
        let resolved = resolve(&app, ConflictPolicy::StrictestWins).is_ok();
        let rejected = resolve(&app, ConflictPolicy::Error).is_err() == (seeded > 0);
        // Detection wall time stays out of the artifact: it is the one
        // non-deterministic column, and exports should be reproducible.
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("m{}", tasks + data)),
            &[
                ("seeded", FieldValue::from(seeded as u64)),
                ("detected", FieldValue::from(consistency_conflicts as u64)),
                ("recall", FieldValue::from(recall)),
                ("strictest_wins_ok", FieldValue::from(resolved)),
                ("error_policy_rejects", FieldValue::from(rejected)),
            ],
        );
        t.row(&[
            (tasks + data).to_string(),
            seeded.to_string(),
            consistency_conflicts.to_string(),
            pct(recall),
            format!("{:.2?}", detect_time),
            resolved.to_string(),
            rejected.to_string(),
        ]);
    }
    t.print();

    println!();
    println!(
        "Shape: recall is 100% (detection is exhaustive over access edges); \
         cost grows near-linearly in modules+edges, staying far below \
         placement cost even at 13k modules."
    );
    udc_bench::report::export("exp_10_conflicts", &tel);
}
