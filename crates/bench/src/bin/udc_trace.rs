//! `udc-trace` — reconstructs causal traces from an exported telemetry
//! artifact and explains placement decisions.
//!
//! ```text
//! udc-trace results/exp_01_medical.json                # trace summary
//! udc-trace results/exp_01_medical.json --explain s1   # decision audit
//! udc-trace results/exp_01_medical.json --chrome t.json # chrome://tracing
//! ```
//!
//! The tool validates the artifact as it reads it and exits non-zero on:
//! schema violations (missing/mistyped span fields), orphan spans
//! (parent id absent from the artifact), spans whose parent lives in a
//! different trace, unclosed spans, broken critical paths (a child
//! interval escaping its parent's interval), and disconnected traces
//! (a trace must form one connected DAG: exactly one root span, every
//! member reachable from it). The connectivity check is what keeps
//! multi-shard telemetry honest — `Telemetry::absorb` shifts absorbed
//! trace ids past the destination's, so a trace split across shard
//! hubs that was *not* reknit shows up here as extra roots or
//! unreachable spans. CI runs it over the exp_01 artifact so a
//! regression in trace propagation fails the build.
//!
//! Per-trace output: the span DAG grouped by phase (validate / place /
//! allocate / launch / actor / dist / heal), the critical path from the root to
//! the latest-ending leaf chain, and a per-phase self-time breakdown
//! (each span's duration minus its children's, so phases sum to the
//! root's wall time instead of double-counting nested spans).

use std::collections::BTreeMap;
use std::process::ExitCode;

use udc_bench::{fmt_us, Table};

/// One span as read back from the artifact.
#[derive(Debug, Clone)]
struct SpanRow {
    id: u64,
    parent: Option<u64>,
    trace: Option<u64>,
    name: String,
    start_us: u64,
    end_us: Option<u64>,
}

impl SpanRow {
    fn duration_us(&self) -> u64 {
        self.end_us.unwrap_or(self.start_us) - self.start_us
    }
}

/// One decision record as read back from the artifact.
#[derive(Debug, Clone)]
struct DecisionRow {
    trace: Option<u64>,
    stage: String,
    module: String,
    candidate: String,
    accepted: bool,
    reason: String,
    score: Option<i64>,
    detail: String,
}

/// The latency phases a control-plane span belongs to.
const PHASES: &[(&str, &str)] = &[
    ("validate", "spec."),
    ("place", "sched."),
    ("allocate", "hal."),
    ("launch", "isolate."),
    ("actor", "actor."),
    ("dist", "dist."),
    ("heal", "heal."),
];

fn phase_of(name: &str) -> &'static str {
    for (phase, prefix) in PHASES {
        if name.starts_with(prefix) {
            return phase;
        }
    }
    "other"
}

fn get_u64(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn get_str(v: &serde_json::Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

/// `key` must be present and either null or a u64.
fn get_opt_u64(v: &serde_json::Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Err(format!("missing `{key}`")),
        Some(serde_json::Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer `{key}`")),
    }
}

fn parse_spans(root: &serde_json::Value) -> Result<Vec<SpanRow>, String> {
    let spans = root
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or("artifact has no `spans` array")?;
    let mut out = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let row = (|| -> Result<SpanRow, String> {
            Ok(SpanRow {
                id: get_u64(s, "id")?,
                parent: get_opt_u64(s, "parent")?,
                trace: get_opt_u64(s, "trace")?,
                name: get_str(s, "name")?,
                start_us: get_u64(s, "start_us")?,
                end_us: get_opt_u64(s, "end_us")?,
            })
        })()
        .map_err(|e| format!("span #{i}: {e}"))?;
        out.push(row);
    }
    Ok(out)
}

fn parse_decisions(root: &serde_json::Value) -> Result<Vec<DecisionRow>, String> {
    let ds = root
        .get("decisions")
        .and_then(|s| s.as_array())
        .ok_or("artifact has no `decisions` array")?;
    let mut out = Vec::with_capacity(ds.len());
    for (i, d) in ds.iter().enumerate() {
        let row = (|| -> Result<DecisionRow, String> {
            Ok(DecisionRow {
                trace: get_opt_u64(d, "trace")?,
                stage: get_str(d, "stage")?,
                module: get_str(d, "module")?,
                candidate: get_str(d, "candidate")?,
                accepted: d
                    .get("accepted")
                    .and_then(|x| x.as_bool())
                    .ok_or("missing or non-bool `accepted`")?,
                reason: get_str(d, "reason")?,
                score: d.get("score").and_then(|x| x.as_i64()),
                detail: get_str(d, "detail")?,
            })
        })()
        .map_err(|e| format!("decision #{i}: {e}"))?;
        out.push(row);
    }
    Ok(out)
}

/// Structural validation: every violation is one human-readable line.
fn validate(spans: &[SpanRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let by_id: BTreeMap<u64, &SpanRow> = spans.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != spans.len() {
        violations.push("duplicate span ids".to_string());
    }
    for s in spans {
        if s.end_us.is_none() {
            violations.push(format!("span {} `{}` never closed", s.id, s.name));
        }
        if let Some(end) = s.end_us {
            if end < s.start_us {
                violations.push(format!("span {} `{}` ends before it starts", s.id, s.name));
            }
        }
        let Some(pid) = s.parent else { continue };
        let Some(p) = by_id.get(&pid) else {
            violations.push(format!(
                "orphan span {} `{}`: parent {} not in artifact",
                s.id, s.name, pid
            ));
            continue;
        };
        if s.trace.is_some() && p.trace != s.trace {
            violations.push(format!(
                "span {} `{}` is in trace {:?} but its parent {} is in {:?}",
                s.id, s.name, s.trace, pid, p.trace
            ));
        }
        // Single simulated clock: a child must run inside its parent.
        if s.start_us < p.start_us || matches!((s.end_us, p.end_us), (Some(c), Some(pe)) if c > pe)
        {
            violations.push(format!(
                "broken critical path: span {} `{}` [{}, {:?}] escapes parent {} [{}, {:?}]",
                s.id, s.name, s.start_us, s.end_us, pid, p.start_us, p.end_us
            ));
        }
    }
    violations.extend(validate_trace_dags(spans));
    violations
}

/// Per-trace connectivity: every trace must be ONE connected DAG — a
/// single root span (no parent, or a parent outside the trace) with
/// every member span reachable from it by parent links. A merged
/// artifact that absorbed shard hubs without reknitting their spans
/// fails this with extra roots; a parent cycle fails it with
/// unreachable spans.
fn validate_trace_dags(spans: &[SpanRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut traces: BTreeMap<u64, Vec<&SpanRow>> = BTreeMap::new();
    for s in spans {
        if let Some(t) = s.trace {
            traces.entry(t).or_default().push(s);
        }
    }
    for (tid, members) in &traces {
        let ids: std::collections::BTreeSet<u64> = members.iter().map(|s| s.id).collect();
        let roots: Vec<&&SpanRow> = members
            .iter()
            .filter(|s| s.parent.map(|p| !ids.contains(&p)).unwrap_or(true))
            .collect();
        if roots.len() != 1 {
            let names: Vec<&str> = roots.iter().map(|s| s.name.as_str()).collect();
            violations.push(format!(
                "trace {tid} has {} roots ({}) — absorbed shard stores were not reknit into one DAG",
                roots.len(),
                if names.is_empty() {
                    "none".to_string()
                } else {
                    names.join(", ")
                }
            ));
            continue;
        }
        // Breadth-first walk from the root over parent links reversed.
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for s in members {
            if let Some(p) = s.parent.filter(|p| ids.contains(p)) {
                children.entry(p).or_default().push(s.id);
            }
        }
        let mut reachable = std::collections::BTreeSet::new();
        let mut frontier = vec![roots[0].id];
        while let Some(id) = frontier.pop() {
            if reachable.insert(id) {
                if let Some(kids) = children.get(&id) {
                    frontier.extend(kids);
                }
            }
        }
        for s in members {
            if !reachable.contains(&s.id) {
                violations.push(format!(
                    "trace {tid}: span {} `{}` is not reachable from root `{}` — disconnected DAG",
                    s.id, s.name, roots[0].name
                ));
            }
        }
    }
    violations
}

/// The chain from `root` to the latest-ending descendant: at each level
/// descend into the child whose end time is greatest. Ties go to the
/// highest id — spans are created in program order, so under an idle
/// simulated clock the path still follows the last chain to finish.
fn critical_path<'a>(
    root: &'a SpanRow,
    children: &BTreeMap<u64, Vec<&'a SpanRow>>,
) -> Vec<&'a SpanRow> {
    let mut path = vec![root];
    let mut cur = root;
    while let Some(kids) = children.get(&cur.id) {
        let Some(next) = kids
            .iter()
            .copied()
            .max_by_key(|k| (k.end_us.unwrap_or(k.start_us), k.id))
        else {
            break;
        };
        path.push(next);
        cur = next;
    }
    path
}

/// Per-phase self time under `root`: each span contributes its duration
/// minus its children's durations, so the phases sum to the root's wall
/// time even with deeply nested spans.
fn phase_breakdown(
    root: &SpanRow,
    spans: &[SpanRow],
    children: &BTreeMap<u64, Vec<&SpanRow>>,
) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.id];
    let by_id: BTreeMap<u64, &SpanRow> = spans.iter().map(|s| (s.id, s)).collect();
    while let Some(id) = stack.pop() {
        let s = by_id[&id];
        let child_total: u64 = children
            .get(&id)
            .map(|kids| kids.iter().map(|k| k.duration_us()).sum())
            .unwrap_or(0);
        let self_us = s.duration_us().saturating_sub(child_total);
        *out.entry(phase_of(&s.name)).or_insert(0) += self_us;
        if let Some(kids) = children.get(&id) {
            stack.extend(kids.iter().map(|k| k.id));
        }
    }
    out
}

fn print_trace_report(spans: &[SpanRow], decisions: &[DecisionRow]) {
    let traced: Vec<&SpanRow> = spans.iter().filter(|s| s.trace.is_some()).collect();
    let mut traces: BTreeMap<u64, Vec<&SpanRow>> = BTreeMap::new();
    for s in &traced {
        traces.entry(s.trace.unwrap()).or_default().push(s);
    }
    println!(
        "{} spans ({} traced, {} traces), {} decisions",
        spans.len(),
        traced.len(),
        traces.len(),
        decisions.len()
    );
    println!();

    let mut t = Table::new(&[
        "trace",
        "root",
        "spans",
        "wall",
        "validate",
        "place",
        "allocate",
        "launch",
        "critical path",
    ]);
    for (tid, members) in &traces {
        let mut children: BTreeMap<u64, Vec<&SpanRow>> = BTreeMap::new();
        let mut roots = Vec::new();
        for s in members {
            match s.parent {
                Some(p) if members.iter().any(|m| m.id == p) => {
                    children.entry(p).or_default().push(s)
                }
                _ => roots.push(*s),
            }
        }
        for root in roots {
            let phases = phase_breakdown(root, spans, &children);
            let path = critical_path(root, &children);
            let path_str = path
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(" > ");
            let ph = |k: &str| fmt_us(phases.get(k).copied().unwrap_or(0));
            t.row(&[
                tid.to_string(),
                root.name.clone(),
                members.len().to_string(),
                fmt_us(root.duration_us()),
                ph("validate"),
                ph("place"),
                ph("allocate"),
                ph("launch"),
                path_str,
            ]);
        }
    }
    t.print();

    let rejected = decisions.iter().filter(|d| !d.accepted).count();
    println!();
    println!(
        "decision audit: {} records, {} rejections ({} stages)",
        decisions.len(),
        rejected,
        decisions
            .iter()
            .map(|d| d.stage.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    // Economic denials — the quota gate, the suspension lifecycle, and
    // lost spot-market auctions — audited next to capacity rejections.
    let econ: BTreeMap<&str, usize> = decisions
        .iter()
        .filter(|d| matches!(d.reason.as_str(), "quota_exceeded" | "suspended" | "outbid"))
        .fold(BTreeMap::new(), |mut m, d| {
            *m.entry(d.reason.as_str()).or_default() += 1;
            m
        });
    if !econ.is_empty() {
        let parts: Vec<String> = econ.iter().map(|(r, n)| format!("{n} {r}")).collect();
        println!("economic denials: {}", parts.join(", "));
    }
}

fn explain(decisions: &[DecisionRow], module: &str) -> bool {
    let picked: Vec<&DecisionRow> = decisions.iter().filter(|d| d.module == module).collect();
    if picked.is_empty() {
        println!("no decisions recorded for module `{module}`");
        return false;
    }
    println!();
    println!("placement audit for `{module}`:");
    let mut t = Table::new(&[
        "trace",
        "stage",
        "candidate",
        "verdict",
        "reason",
        "score",
        "detail",
    ]);
    for d in &picked {
        t.row(&[
            d.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            d.stage.clone(),
            d.candidate.clone(),
            if d.accepted { "accepted" } else { "rejected" }.to_string(),
            d.reason.clone(),
            d.score.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            d.detail.clone(),
        ]);
    }
    t.print();
    true
}

/// Renders spans as a Chrome `trace_event` JSON document
/// (chrome://tracing, Perfetto). Complete events (`ph: "X"`); one pid
/// per trace id, untraced spans under pid 0.
fn chrome_json(spans: &[SpanRow]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\"args\":{{\"span\":{},\"parent\":{}}}}}",
            s.name,
            phase_of(&s.name),
            s.start_us,
            s.duration_us(),
            s.trace.map(|t| t + 1).unwrap_or(0),
            s.id,
            s.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
        ));
    }
    out.push_str("]}");
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut explain_module = None;
    let mut chrome_out = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => explain_module = Some(it.next().ok_or("--explain needs a module name")?),
            "--chrome" => chrome_out = Some(it.next().ok_or("--chrome needs an output path")?),
            "--help" | "-h" => {
                println!(
                    "usage: udc-trace <artifact.json> [--explain <module>] [--chrome <out.json>]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            _ if artifact.is_none() => artifact = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let artifact = artifact.ok_or("usage: udc-trace <artifact.json> [--explain <module>]")?;
    let text =
        std::fs::read_to_string(&artifact).map_err(|e| format!("reading {artifact}: {e}"))?;
    let root: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {artifact}: {e}"))?;

    let spans = parse_spans(&root)?;
    let decisions = parse_decisions(&root)?;

    println!("== udc-trace: {artifact} ==");
    let violations = validate(&spans);
    print_trace_report(&spans, &decisions);
    let mut failed = false;
    if let Some(module) = explain_module {
        // An explain run over a module with no audit trail is a failure:
        // the whole point is that every placement is explainable.
        failed |= !explain(&decisions, &module);
    }
    if let Some(out) = chrome_out {
        std::fs::write(&out, chrome_json(&spans)).map_err(|e| format!("writing {out}: {e}"))?;
        println!();
        println!("chrome trace written: {out} (load in chrome://tracing or Perfetto)");
    }
    if !violations.is_empty() {
        println!();
        println!("VIOLATIONS ({}):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        failed = true;
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("udc-trace: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, parent: Option<u64>, trace: u64, name: &str) -> SpanRow {
        SpanRow {
            id,
            parent,
            trace: Some(trace),
            name: name.to_string(),
            start_us: 0,
            end_us: Some(1),
        }
    }

    /// The positive case the check exists for: spans recorded on several
    /// shard-style hubs, absorbed into one store, exported to JSON, read
    /// back through the real parse path — every trace must come out as
    /// one connected DAG with zero violations of any kind.
    #[test]
    fn absorbed_multi_hub_artifact_validates_clean() {
        use udc_telemetry::Telemetry;
        let main = Telemetry::enabled();
        {
            let root = main.trace_root("cloud.submit");
            let ctx = root.ctx().expect("trace context");
            let child = main.span_in(&ctx, "sched.place");
            child.exit();
            root.exit();
        }
        // Two shard hubs, each minting its own complete trace (the
        // ParSystem contract: workers never split a trace across hubs).
        for shard in 0..2u32 {
            let hub = Telemetry::enabled();
            let root = hub.trace_root("actor.round");
            let ctx = root.ctx().expect("trace context");
            let d = hub.span_in(&ctx, &format!("actor.deliver.s{shard}"));
            d.exit();
            root.exit();
            main.absorb_draining(&hub);
        }
        let text = main.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&text).expect("export parses");
        let spans = parse_spans(&v).expect("span schema");
        assert_eq!(spans.len(), 6);
        let traces: std::collections::BTreeSet<_> = spans.iter().filter_map(|s| s.trace).collect();
        assert_eq!(traces.len(), 3, "absorb keeps shard traces distinct");
        assert_eq!(validate(&spans), Vec::<String>::new());
    }

    #[test]
    fn orphan_parent_is_a_violation() {
        let spans = vec![row(0, None, 7, "cloud.submit"), row(1, Some(99), 7, "lost")];
        let v = validate(&spans);
        assert!(
            v.iter().any(|m| m.contains("orphan span 1")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn two_roots_in_one_trace_is_a_violation() {
        // The un-reknit shard-merge shape: both halves claim trace 3.
        let spans = vec![
            row(0, None, 3, "actor.round"),
            row(1, Some(0), 3, "actor.deliver"),
            row(2, None, 3, "actor.round"),
            row(3, Some(2), 3, "actor.deliver"),
        ];
        let v = validate_trace_dags(&spans);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("trace 3 has 2 roots"), "violation: {}", v[0]);
    }

    #[test]
    fn parent_cycle_is_unreachable_from_root() {
        let spans = vec![
            row(0, None, 5, "cloud.submit"),
            row(1, Some(2), 5, "a"),
            row(2, Some(1), 5, "b"),
        ];
        let v = validate_trace_dags(&spans);
        assert_eq!(v.len(), 2, "both cycle members unreachable: {v:?}");
        assert!(v.iter().all(|m| m.contains("not reachable from root")));
    }

    #[test]
    fn single_connected_trace_passes_dag_check() {
        let spans = vec![
            row(0, None, 1, "cloud.submit"),
            row(1, Some(0), 1, "sched.place"),
            row(2, Some(1), 1, "hal.pool.allocate"),
            row(3, Some(0), 1, "isolate.launch"),
        ];
        assert_eq!(validate_trace_dags(&spans), Vec::<String>::new());
    }
}
