//! E16 — §4's "Supporting legacy software": a monolithic ETL+ML program
//! run as-is versus semi-automatically partitioned into UDC modules.
//!
//! "Without splitting these programs into smaller modules, their
//! executions would not benefit from the fine-grained treatments UDC
//! enables at each layer, leading to suboptimal performance and/or
//! resource utilization."

use udc_bench::{banner, fmt_cost, fmt_us, pct, Table};
use udc_core::{BillingModel, CloudConfig, UdcCloud};
use udc_legacy::{etl_ml_monolith_program, partition, to_app_spec, Hint, PartitionConfig};
use udc_spec::prelude::*;
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

const HOUR_US: u64 = 3_600_000_000;

/// The monolith as a single UDC module: it must reserve its PEAK needs
/// across all phases for the whole run (1 GPU + 8 cores + the 16 GiB
/// working set), exactly the over-provisioning §4 predicts.
fn monolith_app() -> AppSpec {
    let program = etl_ml_monolith_program();
    let total_work: u64 = program.blocks.iter().map(|b| b.work).sum();
    let peak_ws = program
        .blocks
        .iter()
        .map(|b| b.working_set_mib)
        .max()
        .unwrap_or(1);
    let mut app = AppSpec::new("monolith");
    app.add_task(
        TaskSpec::new("everything")
            .with_resource(
                ResourceAspect::default()
                    .with_demand(ResourceKind::Gpu, 1)
                    .with_demand(ResourceKind::Cpu, 8)
                    .with_demand(ResourceKind::Dram, peak_ws),
            )
            .with_work(total_work),
    );
    app
}

fn run(app: &AppSpec) -> (u64, u64, u64) {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let mut dep = cloud.submit(app).expect("fits the default datacenter");
    let report = cloud.run(&dep);
    let hourly = BillingModel::default()
        .price(cloud.datacenter(), &dep.placement, HOUR_US)
        .total;
    let run_cost = report.cost.total;
    let makespan = report.makespan_us;
    cloud.teardown(&mut dep);
    (makespan, run_cost, hourly)
}

fn main() {
    banner(
        "E16",
        "Legacy software: monolith vs semi-automated partitioning",
        "static analysis + profiler + developer hints cut a program into \
         modules so each phase pays only for what it uses",
    );

    let program = etl_ml_monolith_program();
    // The developer contributes one semantic hint: featurize belongs
    // with the GPU embedding (they share the feature tensors).
    let hints = [Hint::KeepWithPrevious(udc_legacy::BlockId(6))];
    let part = partition(&program, &hints, PartitionConfig::default());
    let partitioned = to_app_spec(&program, &part, "etl-ml", 2 << 30).expect("valid app");

    println!(
        "partitioner: {} blocks -> {} modules, {} GiB of flows kept internal, \
         {} GiB crossing module boundaries",
        program.len(),
        part.segments,
        (program.flows.iter().map(|f| f.bytes).sum::<u64>() - part.cut_bytes) >> 30,
        part.cut_bytes >> 30,
    );
    println!();
    println!("emitted modules:");
    let mut m = Table::new(&["module", "inferred resources", "work"]);
    for module in partitioned.iter_modules() {
        let mut res = Vec::new();
        for (k, v) in module.resource.demand.iter() {
            res.push(format!("{v}{k}"));
        }
        if let Some(g) = module.resource.goal {
            res.push(format!("goal={}", g.name()));
        }
        m.row(&[
            module.id.to_string(),
            res.join("+"),
            module.work_units.unwrap_or(0).to_string(),
        ]);
    }
    m.print();

    let (mono_span, mono_cost, mono_hourly) = run(&monolith_app());
    let (part_span, part_cost, part_hourly) = run(&partitioned);

    let tel = Telemetry::enabled();
    tel.event(
        EventKind::Measurement,
        Labels::tenant("etl-ml"),
        &[
            ("modules", FieldValue::from(part.segments as u64)),
            ("cut_bytes", FieldValue::from(part.cut_bytes)),
            ("mono_makespan_us", FieldValue::from(mono_span)),
            ("part_makespan_us", FieldValue::from(part_span)),
            ("mono_run_cost", FieldValue::from(mono_cost)),
            ("part_run_cost", FieldValue::from(part_cost)),
            ("mono_hourly", FieldValue::from(mono_hourly)),
            ("part_hourly", FieldValue::from(part_hourly)),
        ],
    );

    println!();
    let mut t = Table::new(&[
        "deployment",
        "makespan",
        "run cost",
        "hourly reservation",
        "GPU held for",
    ]);
    t.row(&[
        "monolith (peak-reserved)".to_string(),
        fmt_us(mono_span),
        fmt_cost(mono_cost),
        fmt_cost(mono_hourly),
        "the whole run".to_string(),
    ]);
    t.row(&[
        format!("partitioned ({} modules)", part.segments),
        fmt_us(part_span),
        fmt_cost(part_cost),
        fmt_cost(part_hourly),
        "the GPU phase only".to_string(),
    ]);
    t.print();

    println!();
    println!(
        "cost saving from partitioning: {} (the monolith holds 1 GPU + 16 GiB \
         through its I/O and CPU phases; the modules release them)",
        pct(1.0 - part_cost as f64 / mono_cost.max(1) as f64)
    );
    let gpu_work: u64 = program
        .blocks
        .iter()
        .filter(|b| b.phase == udc_legacy::ResourcePhase::GpuAble)
        .map(|b| b.work)
        .sum();
    let total_work: u64 = program.blocks.iter().map(|b| b.work).sum();
    println!(
        "Shape: §4 predicts partitioned legacy programs gain utilization and \
         cost; only {}% of the profiled work can use the GPU, so the \
         monolith's whole-run GPU reservation is mostly idle capacity.",
        gpu_work * 100 / total_work
    );
    udc_bench::report::export("exp_16_legacy", &tel);
}
