//! E15 — §4 "Economics and adoption": "providers could charge a higher
//! unit price that is still attractive to users since they can tailor
//! their cloud usages and only pay for what is used."
//!
//! Four sections, all exported into one structured artifact:
//!
//! 1. **Win-win pricing** (the seed sweep): the UDC unit-price
//!    multiplier region where users still save vs IaaS catalog shapes
//!    AND the provider earns more per unit of hardware consumed.
//! 2. **Spot market: utilization vs revenue.** At each utilization
//!    level the provider auctions its surplus to seeded extension-VM
//!    bidding policies; scarcer lots at higher demand clear higher, so
//!    revenue per unit rises with utilization.
//! 3. **Price of anarchy vs bid shading.** Sweeping how many bidders
//!    shade below their true valuation shows the second-price auction's
//!    welfare loss when tenants deviate from the dominant strategy.
//! 4. **Quota-gated admission audit.** A tiny-plan tenant submits the
//!    medical pipeline, the gate denies it, and the denial lands in the
//!    decision log — `udc-trace results/exp_15_economics.json
//!    --explain S1` prints the economic rejection like any capacity
//!    one.
//!
//! Sections 2 and 3 fan trials across `--threads N` workers; each
//! trial derives its seed from its index and records into a private
//! telemetry hub, absorbed in trial order — the exported JSON is
//! byte-identical at any thread count. Human tables go to stderr;
//! stdout carries only the artifact path.

use udc_baseline::IaasProvisioner;
use udc_bench::harness::{fan_out, threads_from_args};
use udc_bench::{banner_stderr, pct, Table};
use udc_economics::{
    BidderPolicy, Lot, PlanSpec, QuotaGate, SpotMarket, AGGRESSIVE_BIDDER, BUDGET_BIDDER,
    SHADED_BIDDER, TRUTHFUL_BIDDER,
};
use udc_extvm::assemble;
use udc_spec::{ResourceKind, ResourceVector};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::{medical_pipeline, DemandSampler};

const EPOCHS: u64 = 32;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One market trial: `tenants` bidding policies (name, program source)
/// auction `EPOCHS` lots at the given utilization. Valuations are
/// drawn per epoch per bidder from the trial seed; scarcity raises
/// them (tighter supply is worth more). Returns the trial's private
/// hub plus the welfare tallies for the price-of-anarchy ratio.
fn market_trial(
    seed: u64,
    utilization_pct: u64,
    tenants: &[(&str, &str)],
) -> (Telemetry, u64, u64) {
    let tel = Telemetry::enabled();
    let mut gate = QuotaGate::new();
    for (name, _) in tenants {
        gate.open_account(name, PlanSpec::unlimited("spot"), 0);
        // Working capital so the budget policy has headroom.
        gate.account_mut(name).unwrap().pay(0, 2_000_000);
    }
    let mut market = SpotMarket::default();
    let surplus = (100 - utilization_pct).max(4);
    let lot = Lot {
        kind: ResourceKind::Cpu,
        units: surplus,
        reserve_price: 2 + utilization_pct / 10,
    };
    let (mut achieved, mut optimal) = (0u64, 0u64);
    for epoch in 0..EPOCHS {
        let bidders: Vec<BidderPolicy> = tenants
            .iter()
            .enumerate()
            .map(|(i, (name, asm))| {
                let r = splitmix64(seed ^ (epoch << 8) ^ i as u64);
                BidderPolicy {
                    tenant: name.to_string(),
                    program: assemble(asm).expect("canned policy assembles"),
                    // 10..50 µ$/unit base, shifted up with utilization.
                    valuation: 10 + r % 40 + utilization_pct / 4,
                }
            })
            .collect();
        let out = market.run_epoch(
            epoch * 1_000_000,
            &lot,
            &bidders,
            utilization_pct,
            &mut gate,
            &tel,
        );
        achieved += out.achieved_welfare;
        optimal += out.optimal_welfare;
    }
    (tel, achieved, optimal)
}

fn main() {
    banner_stderr(
        "E15",
        "Tenant economics: win-win pricing, spot market, quota gate",
        "UDC can raise unit prices and still undercut users' total cost; \
         surplus capacity clears through a tenant-programmable auction",
    );
    let threads = threads_from_args();
    let tel = Telemetry::enabled();

    // ---- 1. Win-win pricing region (the seed sweep) -----------------
    let mut sampler = DemandSampler::new(99);
    let demands: Vec<ResourceVector> = sampler.sample_n(2_000);
    let iaas = IaasProvisioner::new();
    let iaas_out = iaas.provision(&demands);
    let iaas_hourly = iaas_out.hourly_cost as f64;
    let udc_base_hourly: f64 = demands
        .iter()
        .map(|d| {
            d.iter()
                .map(|(k, v)| {
                    udc_hal::PerfProfile::default_for(k).micro_dollars_per_unit_hour as f64
                        * v as f64
                })
                .sum::<f64>()
        })
        .sum();

    // Provider cost model (stated assumptions): amortized hardware,
    // power and operations cost ~40% of the UDC base price for capacity
    // actually PROVISIONED. IaaS must provision used/(1-waste); UDC
    // provisions used/0.8 (20% elasticity headroom) — the paper's
    // consolidation argument.
    let hw_cost_fraction = 0.4;
    let iaas_provisioned = 1.0 / (1.0 - iaas_out.mean_waste);
    let udc_provisioned = 1.0 / 0.8;
    let iaas_profit = iaas_hourly - hw_cost_fraction * udc_base_hourly * iaas_provisioned;

    let mut t = Table::new(&[
        "price multiplier",
        "user bill (UDC)",
        "user bill (IaaS)",
        "user saving",
        "provider profit vs IaaS",
        "win-win",
    ]);
    for mult10 in [10u64, 11, 12, 13, 14, 15, 16, 18, 20] {
        let mult = mult10 as f64 / 10.0;
        let udc_hourly = udc_base_hourly * mult;
        let saving = 1.0 - udc_hourly / iaas_hourly;
        let udc_profit = udc_hourly - hw_cost_fraction * udc_base_hourly * udc_provisioned;
        let profit_ratio = udc_profit / iaas_profit;
        let win_win = saving > 0.0 && profit_ratio >= 1.0;
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("mult{mult10}")),
            &[
                ("udc_hourly", FieldValue::from(udc_hourly)),
                ("iaas_hourly", FieldValue::from(iaas_hourly)),
                ("user_saving", FieldValue::from(saving)),
                ("profit_ratio", FieldValue::from(profit_ratio)),
                ("win_win", FieldValue::from(win_win)),
            ],
        );
        t.row(&[
            format!("{mult:.1}x"),
            format!("${:.0}/h", udc_hourly / 1e6),
            format!("${:.0}/h", iaas_hourly / 1e6),
            pct(saving),
            format!("{profit_ratio:.2}x"),
            if win_win { "YES" } else { "no" }.to_string(),
        ]);
    }
    t.eprint();
    eprintln!(
        "IaaS mean waste on this population: {}. Assumptions: hardware+ops \
         cost = 40% of base unit price for provisioned capacity; IaaS \
         provisions 1/(1-waste) per used unit, UDC 1/0.8 (consolidation, E4).",
        pct(iaas_out.mean_waste)
    );

    // ---- 2. Spot market: utilization vs revenue ---------------------
    // A mixed, realistic policy population: two truthful tenants, one
    // shader, one over-bidder, one budget-capped.
    const POPULATION: [(&str, &str); 5] = [
        ("alice", TRUTHFUL_BIDDER),
        ("bob", SHADED_BIDDER),
        ("carol", AGGRESSIVE_BIDDER),
        ("dave", BUDGET_BIDDER),
        ("erin", TRUTHFUL_BIDDER),
    ];
    let utilizations: [u64; 6] = [50, 60, 70, 80, 90, 95];
    let util_trials = fan_out(threads, utilizations.len(), |idx| {
        let util = utilizations[idx];
        let (trial, achieved, optimal) = market_trial(2026 + idx as u64, util, &POPULATION);
        let labels = Labels::tenant(format!("util{util}"));
        let revenue = trial.counter("market.revenue_microdollars", &Labels::none());
        let clearing = trial
            .histogram("market.clearing_price", &Labels::none())
            .map(|h| h.mean)
            .unwrap_or(0.0);
        let unsold = trial.counter("market.unsold_lots", &Labels::none());
        trial.event(
            EventKind::Measurement,
            labels,
            &[
                ("utilization_pct", FieldValue::from(util)),
                ("revenue_microdollars", FieldValue::from(revenue)),
                ("mean_clearing_price", FieldValue::from(clearing)),
                ("unsold_lots", FieldValue::from(unsold)),
                (
                    "price_of_anarchy",
                    FieldValue::from(optimal as f64 / achieved.max(1) as f64),
                ),
            ],
        );
        (trial, revenue, clearing, unsold)
    });
    let mut t = Table::new(&[
        "utilization",
        "lot size",
        "revenue (µ$)",
        "mean clearing µ$/unit",
        "unsold lots",
    ]);
    for (idx, (trial, revenue, clearing, unsold)) in util_trials.iter().enumerate() {
        tel.absorb(trial);
        let util = utilizations[idx];
        t.row(&[
            format!("{util}%"),
            format!("{}", (100 - util).max(4)),
            revenue.to_string(),
            format!("{clearing:.1}"),
            unsold.to_string(),
        ]);
    }
    t.eprint();
    eprintln!(
        "Scarcity pricing: as utilization rises the surplus lot shrinks and \
         valuations climb, so the per-unit clearing price rises — the \
         provider monetizes exactly the capacity users compete for."
    );

    // ---- 3. Price of anarchy vs bid shading -------------------------
    let shaded_counts: [usize; 5] = [0, 1, 2, 3, 4];
    let poa_trials = fan_out(threads, shaded_counts.len(), |idx| {
        let shaded = shaded_counts[idx];
        let names = ["t0", "t1", "t2", "t3"];
        let tenants: Vec<(&str, &str)> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    *name,
                    if i < shaded {
                        SHADED_BIDDER
                    } else {
                        TRUTHFUL_BIDDER
                    },
                )
            })
            .collect();
        let (trial, achieved, optimal) = market_trial(4040 + idx as u64, 70, &tenants);
        let poa = optimal as f64 / achieved.max(1) as f64;
        trial.event(
            EventKind::Measurement,
            Labels::tenant(format!("shaded{shaded}")),
            &[
                ("shaded_bidders", FieldValue::from(shaded as u64)),
                ("price_of_anarchy", FieldValue::from(poa)),
                ("achieved_welfare", FieldValue::from(achieved)),
                ("optimal_welfare", FieldValue::from(optimal)),
            ],
        );
        (trial, poa)
    });
    let mut t = Table::new(&["shaded bidders (of 4)", "price of anarchy"]);
    for (idx, (trial, poa)) in poa_trials.iter().enumerate() {
        tel.absorb(trial);
        t.row(&[shaded_counts[idx].to_string(), format!("{poa:.3}")]);
    }
    t.eprint();
    eprintln!(
        "All-truthful bidding is efficient (PoA = 1.0, Vickrey's dominant \
         strategy). Asymmetric shading hands lots to lower-valuation rivals \
         and welfare drops; when every bidder shades by the same factor the \
         ranking — and so the allocation — is restored."
    );

    // ---- 4. Quota-gated admission audit -----------------------------
    // A tiny plan (2 CPUs) cannot admit the medical pipeline; the
    // denial is recorded per module in the decision log and the
    // artifact answers `udc-trace --explain S1`.
    let mut cloud = udc_core::UdcCloud::new(udc_core::CloudConfig::default());
    let obs = cloud.enable_telemetry();
    let mut gate = QuotaGate::new();
    let tiny = PlanSpec {
        quota: ResourceVector::new().with(ResourceKind::Cpu, 2),
        ..PlanSpec::unlimited("tiny")
    };
    gate.open_account("tenant", tiny, 0);
    cloud.attach_economics(udc_economics::shared(gate));
    let denied = cloud.submit(&medical_pipeline());
    let denial_msg = match denied {
        Err(e) => e.to_string(),
        Ok(_) => "UNEXPECTED ADMIT".to_string(),
    };
    let denials = obs
        .decisions()
        .iter()
        .filter(|d| d.stage == "sched.admit")
        .count() as u64;
    obs.event(
        EventKind::Measurement,
        Labels::tenant("quota_demo"),
        &[
            ("denied", FieldValue::from(denial_msg.as_str())),
            ("admit_decisions", FieldValue::from(denials)),
        ],
    );
    tel.absorb(&obs);
    eprintln!();
    eprintln!("Quota-gated admission: {denial_msg}");
    eprintln!(
        "  {denials} per-module denial records in the decision log — try \
         `udc-trace results/exp_15_economics.json --explain S1`"
    );

    udc_bench::report::export("exp_15_economics", &tel);
}
