//! E15 — §4 "Economics and adoption": "providers could charge a higher
//! unit price that is still attractive to users since they can tailor
//! their cloud usages and only pay for what is used."
//!
//! Sweep the UDC unit-price multiplier: user's monthly bill (exact fit x
//! multiplier) vs the IaaS bill (catalog shapes), and the provider's
//! revenue per unit of hardware actually consumed. The win-win region is
//! where users still save AND the provider earns more per unit.

use udc_baseline::IaasProvisioner;
use udc_bench::{banner, pct, Table};
use udc_spec::ResourceVector;
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};
use udc_workload::DemandSampler;

fn main() {
    banner(
        "E15",
        "Win-win pricing region",
        "UDC can raise unit prices and still undercut users' total cost, \
         because users stop paying for stranded capacity",
    );

    let mut sampler = DemandSampler::new(99);
    let demands: Vec<ResourceVector> = sampler.sample_n(2_000);

    // Baseline: IaaS bill for the same demands.
    let iaas = IaasProvisioner::new();
    let iaas_out = iaas.provision(&demands);
    let iaas_hourly = iaas_out.hourly_cost as f64;

    // UDC at multiplier 1.0: users pay unit prices for exactly the
    // demand.
    let udc_base_hourly: f64 = demands
        .iter()
        .map(|d| {
            d.iter()
                .map(|(k, v)| {
                    udc_hal::PerfProfile::default_for(k).micro_dollars_per_unit_hour as f64
                        * v as f64
                })
                .sum::<f64>()
        })
        .sum();

    // Provider cost model (stated assumptions): amortized hardware,
    // power and operations cost ~40% of the UDC base price for capacity
    // actually PROVISIONED. IaaS must provision used/(1-waste); UDC
    // provisions used/0.8 (20% elasticity headroom) — the paper's
    // consolidation argument ("providers could potentially consolidate
    // more applications to the same amount of computing resources and
    // shutting down the remaining ones").
    let hw_cost_fraction = 0.4;
    let iaas_provisioned = 1.0 / (1.0 - iaas_out.mean_waste);
    let udc_provisioned = 1.0 / 0.8;
    let iaas_profit = iaas_hourly - hw_cost_fraction * udc_base_hourly * iaas_provisioned;

    let tel = Telemetry::enabled();
    let mut t = Table::new(&[
        "price multiplier",
        "user bill (UDC)",
        "user bill (IaaS)",
        "user saving",
        "provider profit vs IaaS",
        "win-win",
    ]);
    for mult10 in [10u64, 11, 12, 13, 14, 15, 16, 18, 20] {
        let mult = mult10 as f64 / 10.0;
        let udc_hourly = udc_base_hourly * mult;
        let saving = 1.0 - udc_hourly / iaas_hourly;
        let udc_profit = udc_hourly - hw_cost_fraction * udc_base_hourly * udc_provisioned;
        let profit_ratio = udc_profit / iaas_profit;
        let win_win = saving > 0.0 && profit_ratio >= 1.0;
        tel.event(
            EventKind::Measurement,
            Labels::tenant(format!("mult{mult10}")),
            &[
                ("udc_hourly", FieldValue::from(udc_hourly)),
                ("iaas_hourly", FieldValue::from(iaas_hourly)),
                ("user_saving", FieldValue::from(saving)),
                ("profit_ratio", FieldValue::from(profit_ratio)),
                ("win_win", FieldValue::from(win_win)),
            ],
        );
        t.row(&[
            format!("{mult:.1}x"),
            format!("${:.0}/h", udc_hourly / 1e6),
            format!("${:.0}/h", iaas_hourly / 1e6),
            pct(saving),
            format!("{profit_ratio:.2}x"),
            if win_win { "YES" } else { "no" }.to_string(),
        ]);
    }
    t.print();

    println!();
    println!(
        "IaaS mean waste on this population: {}. Assumptions: hardware+ops \
         cost = 40% of base unit price for provisioned capacity; IaaS \
         provisions 1/(1-waste) per used unit, UDC 1/0.8 (consolidation, E4). \
         The win-win region is where the user still saves AND the provider's \
         profit matches or beats IaaS — the paper's adoption argument.",
        pct(iaas_out.mean_waste)
    );
    udc_bench::report::export("exp_15_economics", &tel);
}
