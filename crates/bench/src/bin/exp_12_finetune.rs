//! E12 — §3.2's runtime fine-tuning: "Since user specified resources may
//! be inaccurate when executing with real (and changing) inputs, UDC
//! would perform fine tuning (enlarging or shrinking the amount of
//! resources for a module, migrating modules across hardware units,
//! etc.) based on telemetry data collected at the run time."
//!
//! Modules start mis-specified by ±50% (and one by +300%); the tuner
//! drives allocations toward the true need. Reported per round: total
//! over-allocation waste and SLO violations (usage > allocation).

use udc_bench::{banner, pct, Table};
use udc_hal::Telemetry;
use udc_sched::{FineTuner, TuneAction, TunerConfig};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry as Hub};

struct Module {
    name: &'static str,
    true_need: f64,
    allocated: u64,
}

fn main() {
    banner(
        "E12",
        "Telemetry-driven fine-tuning of mis-specified resources",
        "user estimates are inaccurate; the runtime converges allocations \
         to actual usage, cutting waste without starving modules",
    );

    // True needs vs initial user specifications.
    let mut modules = vec![
        Module {
            name: "under50",
            true_need: 8.0,
            allocated: 4,
        }, // -50%.
        Module {
            name: "over50",
            true_need: 8.0,
            allocated: 12,
        }, // +50%.
        Module {
            name: "over300",
            true_need: 4.0,
            allocated: 16,
        }, // +300%.
        Module {
            name: "inband",
            true_need: 4.2,
            allocated: 6,
        }, // Already in band.
    ];
    let mut tuner = FineTuner::new(TunerConfig::default());
    let mut telemetry = Telemetry::new();
    let hub = Hub::enabled();

    let mut t = Table::new(&[
        "round",
        "total allocated",
        "total needed",
        "over-alloc waste",
        "starved modules",
        "actions",
    ]);
    for round in 0u64..12 {
        // Sample usage: need / allocation (with a deterministic ripple).
        let ripple = 1.0 + 0.05 * ((round % 3) as f64 - 1.0);
        for m in &modules {
            let usage = (m.true_need * ripple) / m.allocated.max(1) as f64;
            telemetry.sample_usage(m.name, round, usage);
        }
        let mut actions = 0;
        for m in &mut modules {
            if let Some(action) = tuner.evaluate(m.name, &telemetry, m.allocated, 1_000) {
                match action {
                    TuneAction::Resize { to_units, .. } => m.allocated = to_units,
                    TuneAction::Migrate { units, .. } => m.allocated = units,
                }
                actions += 1;
            }
        }
        let total_alloc: u64 = modules.iter().map(|m| m.allocated).sum();
        let total_need: f64 = modules.iter().map(|m| m.true_need).sum();
        let waste = (total_alloc as f64 - total_need).max(0.0) / total_alloc as f64;
        let starved = modules
            .iter()
            .filter(|m| m.true_need > m.allocated as f64)
            .count();
        hub.event(
            EventKind::Measurement,
            Labels::tenant(format!("round{round}")),
            &[
                ("total_allocated", FieldValue::from(total_alloc)),
                ("total_needed", FieldValue::from(total_need)),
                ("overalloc_waste", FieldValue::from(waste)),
                ("starved_modules", FieldValue::from(starved as u64)),
                ("actions", FieldValue::from(actions as u64)),
            ],
        );
        t.row(&[
            round.to_string(),
            total_alloc.to_string(),
            format!("{total_need:.0}"),
            pct(waste),
            starved.to_string(),
            actions.to_string(),
        ]);
    }
    t.print();

    println!();
    println!("Final allocations vs true needs:");
    let mut f = Table::new(&[
        "module",
        "initial spec",
        "true need",
        "final allocation",
        "usage",
    ]);
    let initial = [4u64, 12, 16, 6];
    for (m, init) in modules.iter().zip(initial) {
        f.row(&[
            m.name.to_string(),
            init.to_string(),
            format!("{:.0}", m.true_need),
            m.allocated.to_string(),
            pct(m.true_need / m.allocated as f64),
        ]);
    }
    f.print();
    println!();
    println!(
        "SLO violations observed while converging: {}; actions issued: {}. \
         Shape: starvation (the -50% module) is eliminated within ~2 rounds; \
         over-specifications shrink toward the target band; every module ends \
         inside [40%, 90%] usage — the waste that remains is the headroom the \
         band deliberately keeps. Well-specified modules are never touched.",
        tuner.slo_violations, tuner.actions_issued
    );
    udc_bench::report::export("exp_12_finetune", &hub);
}
