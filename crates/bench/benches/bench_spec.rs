//! Criterion micro-benchmarks for the specification layer: parsing,
//! printing, validation, and conflict detection at several app sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use udc_spec::conflict::{detect_conflicts, resolve, ConflictPolicy};
use udc_spec::{parse_app, print_app};
use udc_workload::{medical_pipeline, random_app, RandomDagConfig};

fn bench_parse_print(c: &mut Criterion) {
    let app = medical_pipeline();
    let text = print_app(&app);
    c.bench_function("spec/print_medical", |b| {
        b.iter(|| print_app(black_box(&app)))
    });
    c.bench_function("spec/parse_medical", |b| {
        b.iter(|| parse_app(black_box(&text)).unwrap())
    });
    c.bench_function("spec/validate_medical", |b| {
        b.iter(|| black_box(&app).validate().unwrap())
    });
}

fn bench_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec/detect_conflicts");
    for (tasks, data) in [(20usize, 6usize), (200, 60), (2_000, 600)] {
        let (app, _) = random_app(RandomDagConfig {
            tasks,
            data,
            edge_prob: 0.25,
            conflict_prob: 0.3,
            seed: 11,
        });
        group.bench_with_input(BenchmarkId::from_parameter(tasks + data), &app, |b, app| {
            b.iter(|| detect_conflicts(black_box(app)))
        });
    }
    group.finish();

    let (app, _) = random_app(RandomDagConfig {
        tasks: 200,
        data: 60,
        edge_prob: 0.25,
        conflict_prob: 0.3,
        seed: 11,
    });
    c.bench_function("spec/resolve_strictest_260", |b| {
        b.iter(|| resolve(black_box(&app), ConflictPolicy::StrictestWins).unwrap())
    });
}

criterion_group!(benches, bench_parse_print, bench_conflicts);
criterion_main!(benches);
