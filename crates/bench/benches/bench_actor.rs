//! Criterion micro-benchmarks for the actor runtime's message spine.
//!
//! Every group runs the seed executor (`NaiveSystem`, kept verbatim as
//! the equivalence oracle) next to the optimized `System` (interned
//! slots, O(active) ready bitmap, lock-free telemetry handles) over the
//! identical workload, so one bench run quantifies the speedup and
//! `bench_check --suite=actor` enforces the floors:
//!
//! - `actor_ping_storm` — 10k actors × 16 messages each, the dense
//!   saturation case; enabled/disabled telemetry variants pin both the
//!   runtime speedup and the handle path's disabled overhead, and
//!   `parallel/{1,2,4,8}` drive the same storm through the
//!   work-stealing [`ParSystem`] (an `env/cpus` entry records the
//!   machine's parallelism so the checker knows whether a speedup
//!   floor is even physically possible);
//! - `actor_sparse_chain` — a 64-hop token walk through 10k mostly-idle
//!   actors: the seed pays O(all actors) per round, the ready bitmap
//!   pays O(active);
//! - `actor_fanout_cascade` — one injection amplified through a fan-out
//!   tree (message-spine throughput: log append, outbox, refcounts);
//! - `actor_failure_churn` — supervised failures with retry, so the
//!   restart/retry path stays on the fast side too.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use udc_actor::{
    Actor, ActorError, ActorId, Ctx, Message, NaiveSystem, ParSystem, SupervisionPolicy, System,
};
use udc_telemetry::Telemetry;

const STORM_ACTORS: usize = 10_000;
const STORM_MSGS: u64 = 16;

#[derive(Default)]
struct Sink {
    seen: u64,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.seen += 1;
        Ok(())
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
}

struct Forwarder {
    next: ActorId,
}

impl Actor for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.next.clone(), msg.payload.clone());
        Ok(())
    }
}

struct FanOut {
    left: ActorId,
    right: ActorId,
}

impl Actor for FanOut {
    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        ctx.send(self.left.clone(), msg.payload.clone());
        ctx.send(self.right.clone(), msg.payload.clone());
        Ok(())
    }
}

/// Every third attempt fails, so a retry always succeeds.
#[derive(Default)]
struct Flaky {
    attempts: u64,
}

impl Actor for Flaky {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.attempts += 1;
        if self.attempts.is_multiple_of(3) {
            return Err(ActorError("churn".into()));
        }
        Ok(())
    }
}

/// Spawns the storm population into a fresh executor of either type
/// (they share an API surface but no trait — the seed stays untouched).
macro_rules! storm_spawn {
    ($system:ty, $ids:expr, $obs:expr) => {{
        let mut sys = <$system>::new();
        sys.set_observer($obs.clone());
        for id in $ids {
            sys.spawn(
                id.clone(),
                Box::<Sink>::default(),
                SupervisionPolicy::Restart,
            );
        }
        sys
    }};
}

/// Both storm variants drive a persistent system (spawn is setup, not
/// workload) and truncate the log each iteration at checkpoint cadence,
/// like every other group. The injection idiom differs: the seed only
/// has by-id injection; the optimized system is driven the way a hot
/// caller would drive it — ids resolved *once* into dense
/// [`udc_actor::ActorRef`] handles, then reused across bursts.
fn bench_ping_storm(c: &mut Criterion) {
    // The artifact must say how parallel the measuring machine was:
    // `bench_check --suite=actor` enforces a parallel speedup floor
    // only when this entry shows enough CPUs to make one possible.
    criterion::record_value(
        "env/cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
    );
    let ids: Vec<ActorId> = (0..STORM_ACTORS)
        .map(|i| ActorId::new(format!("a{i:05}")))
        .collect();
    let ids = &ids;
    let mut group = c.interleaved_group("actor_ping_storm");
    group.throughput(Throughput::Elements(STORM_ACTORS as u64 * STORM_MSGS));
    for (variant, obs) in [
        ("enabled", Telemetry::enabled()),
        ("disabled", Telemetry::disabled()),
    ] {
        let mut naive = storm_spawn!(NaiveSystem, ids, obs);
        group.bench_function(format!("naive/{variant}"), move |b| {
            b.iter(|| {
                for _ in 0..STORM_MSGS {
                    for id in ids {
                        naive.inject(id.clone(), Bytes::from_static(b"m"));
                    }
                }
                let (n, _) = naive.run_until_quiescent(usize::MAX);
                naive.truncate_log_through(u64::MAX);
                black_box(n)
            })
        });
        let mut fast = storm_spawn!(System, ids, obs);
        let refs: Vec<_> = ids.iter().map(|id| fast.resolve(id).unwrap()).collect();
        group.bench_function(format!("fast/{variant}"), move |b| {
            b.iter(|| {
                for _ in 0..STORM_MSGS {
                    for &r in &refs {
                        fast.inject_at(r, Bytes::from_static(b"m"));
                    }
                }
                let (n, _) = fast.run_until_quiescent(usize::MAX);
                fast.truncate_log_through(u64::MAX);
                black_box(n)
            })
        });
    }
    // The work-stealing executor over the identical storm, telemetry
    // enabled like the headline fast variant. The whole burst is
    // prebuilt once and handed to `inject_batch` so iterations measure
    // parallel fan-in + delivery, not per-message call overhead.
    for threads in [1usize, 2, 4, 8] {
        let mut par = ParSystem::new(threads);
        par.set_observer(Telemetry::enabled());
        for id in ids {
            par.spawn(
                id.clone(),
                Box::<Sink>::default(),
                SupervisionPolicy::Restart,
            );
        }
        let refs: Vec<_> = ids.iter().map(|id| par.resolve(id).unwrap()).collect();
        let batch: Vec<_> = (0..STORM_MSGS)
            .flat_map(|_| refs.iter().map(|&r| (r, Bytes::from_static(b"m"))))
            .collect();
        group.bench_function(format!("parallel/{threads}"), move |b| {
            b.iter(|| {
                par.inject_batch(&batch);
                let (n, _) = par.run_until_quiescent(usize::MAX);
                par.truncate_log_through(u64::MAX);
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Spawns `idle` sinks plus a descending-id forwarding chain, so every
/// hop lands on an earlier-ordered actor and costs one full round.
macro_rules! sparse_setup {
    ($system:ty, $idle:expr, $hops:expr, $obs:expr) => {{
        let mut sys = <$system>::new();
        sys.set_observer($obs.clone());
        for i in 0..$idle {
            sys.spawn(
                format!("idle{i:05}"),
                Box::<Sink>::default(),
                SupervisionPolicy::Restart,
            );
        }
        // chain63 -> chain62 -> ... -> chain00 (a sink).
        sys.spawn(
            "chain00",
            Box::<Sink>::default(),
            SupervisionPolicy::Restart,
        );
        for hop in 1..$hops {
            sys.spawn(
                format!("chain{hop:02}"),
                Box::new(Forwarder {
                    next: ActorId::new(format!("chain{:02}", hop - 1)),
                }),
                SupervisionPolicy::Restart,
            );
        }
        sys
    }};
}

fn bench_sparse_chain(c: &mut Criterion) {
    const IDLE: usize = 10_000;
    const HOPS: usize = 64;
    let head = ActorId::new(format!("chain{:02}", HOPS - 1));
    let obs = Telemetry::disabled();
    let mut group = c.interleaved_group("actor_sparse_chain");
    group.throughput(Throughput::Elements(HOPS as u64));
    let mut naive = sparse_setup!(NaiveSystem, IDLE, HOPS, obs);
    let h = head.clone();
    group.bench_function("naive", move |b| {
        b.iter(|| {
            naive.inject(h.clone(), Bytes::from_static(b"t"));
            let r = naive.run_until_quiescent(usize::MAX);
            // Checkpoint-cadence truncation keeps the persistent system
            // stationary across iterations (the log would otherwise
            // grow without bound and skew later samples).
            naive.truncate_log_through(u64::MAX);
            black_box(r)
        })
    });
    let mut fast = sparse_setup!(System, IDLE, HOPS, obs);
    group.bench_function("fast", move |b| {
        b.iter(|| {
            fast.inject(head.clone(), Bytes::from_static(b"t"));
            let r = fast.run_until_quiescent(usize::MAX);
            fast.truncate_log_through(u64::MAX);
            black_box(r)
        })
    });
    group.finish();
}

/// A binary fan-out tree of `depth` levels; leaves are sinks. One
/// injection at the root amplifies into `2^depth - 1` deliveries.
macro_rules! fanout_setup {
    ($system:ty, $depth:expr, $obs:expr) => {{
        let mut sys = <$system>::new();
        sys.set_observer($obs.clone());
        let node = |level: usize, idx: usize| format!("t{level:02}_{idx:04}");
        for level in 0..$depth {
            for idx in 0..(1usize << level) {
                if level + 1 == $depth {
                    sys.spawn(
                        node(level, idx),
                        Box::<Sink>::default(),
                        SupervisionPolicy::Restart,
                    );
                } else {
                    sys.spawn(
                        node(level, idx),
                        Box::new(FanOut {
                            left: ActorId::new(node(level + 1, 2 * idx)),
                            right: ActorId::new(node(level + 1, 2 * idx + 1)),
                        }),
                        SupervisionPolicy::Restart,
                    );
                }
            }
        }
        sys
    }};
}

fn bench_fanout_cascade(c: &mut Criterion) {
    const DEPTH: usize = 11; // 2047 actors, 2047 deliveries per injection
    let root = ActorId::new("t00_0000");
    let mut group = c.interleaved_group("actor_fanout_cascade");
    group.throughput(Throughput::Elements((1u64 << DEPTH) - 1));
    for (variant, obs) in [
        ("enabled", Telemetry::enabled()),
        ("disabled", Telemetry::disabled()),
    ] {
        let mut naive = fanout_setup!(NaiveSystem, DEPTH, obs);
        let r = root.clone();
        group.bench_function(format!("naive/{variant}"), move |b| {
            b.iter(|| {
                naive.inject(r.clone(), Bytes::from_static(b"x"));
                let out = naive.run_until_quiescent(usize::MAX);
                naive.truncate_log_through(u64::MAX);
                black_box(out)
            })
        });
        let mut fast = fanout_setup!(System, DEPTH, obs);
        let r = root.clone();
        group.bench_function(format!("fast/{variant}"), move |b| {
            b.iter(|| {
                fast.inject(r.clone(), Bytes::from_static(b"x"));
                let out = fast.run_until_quiescent(usize::MAX);
                fast.truncate_log_through(u64::MAX);
                black_box(out)
            })
        });
    }
    group.finish();
}

macro_rules! churn_setup {
    ($system:ty, $actors:expr, $obs:expr) => {{
        let mut sys = <$system>::new();
        sys.set_observer($obs.clone());
        for i in 0..$actors {
            sys.spawn(
                format!("w{i:03}"),
                Box::<Flaky>::default(),
                SupervisionPolicy::RestartAndRetry,
            );
        }
        sys
    }};
}

fn bench_failure_churn(c: &mut Criterion) {
    const ACTORS: usize = 256;
    const MSGS: u64 = 16;
    let ids: Vec<ActorId> = (0..ACTORS)
        .map(|i| ActorId::new(format!("w{i:03}")))
        .collect();
    let ids = &ids;
    let mut group = c.interleaved_group("actor_failure_churn");
    group.throughput(Throughput::Elements(ACTORS as u64 * MSGS));
    for (variant, obs) in [
        ("enabled", Telemetry::enabled()),
        ("disabled", Telemetry::disabled()),
    ] {
        let mut naive = churn_setup!(NaiveSystem, ACTORS, obs);
        group.bench_function(format!("naive/{variant}"), move |b| {
            b.iter(|| {
                for id in ids {
                    for _ in 0..MSGS {
                        naive.inject(id.clone(), Bytes::from_static(b"c"));
                    }
                }
                let out = naive.run_until_quiescent(usize::MAX);
                naive.truncate_log_through(u64::MAX);
                black_box(out)
            })
        });
        let mut fast = churn_setup!(System, ACTORS, obs);
        group.bench_function(format!("fast/{variant}"), move |b| {
            b.iter(|| {
                for id in ids {
                    for _ in 0..MSGS {
                        fast.inject(id.clone(), Bytes::from_static(b"c"));
                    }
                }
                let out = fast.run_until_quiescent(usize::MAX);
                fast.truncate_log_through(u64::MAX);
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ping_storm,
    bench_sparse_chain,
    bench_fanout_cascade,
    bench_failure_churn
);
criterion_main!(benches);
