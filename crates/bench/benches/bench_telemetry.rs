//! Criterion micro-benchmarks for the telemetry substrate's overhead.
//!
//! The control plane carries a `Telemetry` handle everywhere, disabled
//! by default. These benches pin the cost of that choice: the paired
//! `disabled`/`enabled` groups re-run `sched/place_medical` and
//! `actor/deliver_1000` both ways (the disabled numbers must sit within
//! 5% of the pre-instrumentation baselines recorded in EXPERIMENTS.md),
//! and the `telemetry/*` functions price the individual no-op calls.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use udc_actor::{Actor, ActorError, Ctx, Message, SupervisionPolicy, System};
use udc_hal::Datacenter;
use udc_sched::{SchedOptions, Scheduler};
use udc_telemetry::{Labels, Telemetry};
use udc_workload::medical_pipeline;

#[derive(Default)]
struct Sink {
    seen: u64,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.seen += 1;
        Ok(())
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
}

fn bench_placement_overhead(c: &mut Criterion) {
    let medical = medical_pipeline();
    let mut group = c.benchmark_group("telemetry_overhead/place_medical");
    for (variant, obs) in [
        ("disabled", Telemetry::disabled()),
        ("enabled", Telemetry::enabled()),
    ] {
        group.bench_function(variant, |b| {
            b.iter(|| {
                let mut dc = Datacenter::default();
                let mut sched = Scheduler::new(SchedOptions::default());
                dc.set_observer(obs.clone());
                sched.set_observer(obs.clone());
                let p = sched.place_app(&mut dc, black_box(&medical)).unwrap();
                black_box(p);
            })
        });
    }
    group.finish();
}

fn bench_actor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead/deliver_1000");
    for (variant, obs) in [
        ("disabled", Telemetry::disabled()),
        ("enabled", Telemetry::enabled()),
    ] {
        group.bench_function(variant, |b| {
            b.iter(|| {
                let mut sys = System::new();
                sys.set_observer(obs.clone());
                sys.spawn("sink", Box::<Sink>::default(), SupervisionPolicy::Restart);
                for i in 0..1_000u64 {
                    sys.inject("sink", Bytes::copy_from_slice(&i.to_le_bytes()));
                }
                let (n, _) = sys.run_until_quiescent(usize::MAX);
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let off = Telemetry::disabled();
    c.bench_function("telemetry/noop_incr", |b| {
        b.iter(|| off.incr(black_box("bench.counter"), Labels::none(), 1))
    });
    c.bench_function("telemetry/noop_span", |b| {
        b.iter(|| black_box(off.span("bench.span")))
    });

    let on = Telemetry::enabled();
    c.bench_function("telemetry/enabled_incr", |b| {
        b.iter(|| on.incr(black_box("bench.counter"), Labels::none(), 1))
    });
    c.bench_function("telemetry/enabled_observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(17) & 0xFFFF;
            on.observe(black_box("bench.histogram"), Labels::none(), v)
        })
    });
}

criterion_group!(
    benches,
    bench_placement_overhead,
    bench_actor_overhead,
    bench_primitives
);
criterion_main!(benches);
