//! Criterion micro-benchmarks for the control plane: end-to-end
//! placement, extension-VM policy dispatch, and pool allocation.
//!
//! The `pool_churn`, `binpack_10k`, and `sched/place_medical_big_dc`
//! groups are before/after pairs for the indexed allocation fast path:
//! the retained seed implementations (`LinearPool`,
//! `NaiveServerCluster`) run the identical operation sequence next to
//! their indexed replacements, so one bench run quantifies the speedup
//! — and `bench_check` enforces it from the `UDC_BENCH_JSON` export.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use udc_economics::{demand_of_app, PlanSpec, QuotaGate};
use udc_extvm::{assemble, NullHost, Vm, VmLimits};
use udc_hal::linear::LinearPool;
use udc_hal::pool::AllocConstraints;
use udc_hal::{Datacenter, DatacenterConfig, Device, DeviceId, ResourcePool};
use udc_sched::{
    ExtVmPolicy, LocalityPolicy, NaiveServerCluster, PackAlgo, PlacementPolicy, PolicyCtx,
    SchedOptions, Scheduler, ServerCluster, ServerShape,
};
use udc_spec::{ResourceKind, ResourceVector};
use udc_workload::{medical_pipeline, random_app, DemandSampler, RandomDagConfig};

fn bench_placement(c: &mut Criterion) {
    let medical = medical_pipeline();
    c.bench_function("sched/place_medical", |b| {
        b.iter(|| {
            let mut dc = Datacenter::default();
            let mut sched = Scheduler::new(SchedOptions::default());
            let p = sched.place_app(&mut dc, black_box(&medical)).unwrap();
            black_box(p);
        })
    });

    // The identical placement behind a quota gate with a finite (but
    // amply sufficient) plan: the admission check must be noise against
    // the placement itself — `bench_check` caps the ratio at 1.05x.
    let demand = demand_of_app(&medical);
    let gate = udc_economics::shared({
        let mut g = QuotaGate::new();
        let plan = PlanSpec {
            quota: demand.scaled(2),
            ..PlanSpec::unlimited("bench")
        };
        g.open_account("tenant", plan, 0);
        g
    });
    c.bench_function("sched/place_medical_quota_gated", |b| {
        b.iter(|| {
            let mut dc = Datacenter::default();
            let mut sched = Scheduler::new(SchedOptions::default());
            sched.set_quota_gate(Some(gate.clone()));
            let p = sched.place_app(&mut dc, black_box(&medical)).unwrap();
            gate.lock().unwrap().release("tenant", &demand);
            black_box(p);
        })
    });

    let mut group = c.benchmark_group("sched/place_random");
    for tasks in [10usize, 50, 200] {
        let (app, _) = random_app(RandomDagConfig {
            tasks,
            data: tasks / 4,
            edge_prob: 0.2,
            conflict_prob: 0.0,
            seed: 5,
        });
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &app, |b, app| {
            b.iter(|| {
                let mut dc = Datacenter::default();
                let mut sched = Scheduler::new(SchedOptions::default());
                let _ = sched.place_app(&mut dc, black_box(app));
            })
        });
    }
    group.finish();
}

fn bench_policy_dispatch(c: &mut Criterion) {
    let ctx = PolicyCtx {
        device: udc_hal::DeviceId(3),
        free_units: 32,
        capacity: 64,
        rack: 2,
        preferred_rack: 2,
        demand: 4,
    };
    let mut native = LocalityPolicy;
    c.bench_function("policy/native_score", |b| {
        b.iter(|| native.score(black_box(&ctx)))
    });
    let prog = assemble("arg 0\narg 4\nsub\nret").unwrap();
    let mut vm_policy = ExtVmPolicy::new("bench", prog, VmLimits::default());
    c.bench_function("policy/extvm_score", |b| {
        b.iter(|| vm_policy.score(black_box(&ctx)))
    });

    // Raw VM dispatch: a loop summing 1..100.
    let loop_prog = assemble(
        "
            arg 0
            store 1
        l:  load 1
            jz d
            load 0
            load 1
            add
            store 0
            load 1
            push 1
            sub
            store 1
            jmp l
        d:  load 0
            ret
        ",
    )
    .unwrap();
    let mut vm = Vm::new(VmLimits::default());
    c.bench_function("extvm/sum_loop_100", |b| {
        b.iter(|| {
            vm.run(black_box(&loop_prog), &[100], &mut NullHost)
                .unwrap()
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    c.bench_function("hal/allocate_release_vector", |b| {
        let mut dc = Datacenter::default();
        let demand = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Dram, 8192);
        b.iter(|| {
            let allocs = dc
                .allocate_vector("t", black_box(&demand), &AllocConstraints::default())
                .unwrap();
            for a in &allocs {
                dc.release(a);
            }
        })
    });
}

/// Mixed allocation sizes exercised per churn iteration: spill-y large
/// asks next to small exact fits, like a real admission stream.
const CHURN_SIZES: [u64; 8] = [1, 3, 7, 12, 18, 25, 31, 40];

fn churn_devices(n: u32) -> impl Iterator<Item = Device> {
    (0..n).map(|i| Device::new(DeviceId(i), ResourceKind::Cpu, 16 + (i as u64 % 64), i % 32))
}

/// Allocate/release churn on the seed linear allocator vs the indexed
/// pool, on identical device sets, at 1k/4k/16k devices. The linear
/// side re-scans (and re-sorts) every device per allocation; the
/// indexed side walks the free-capacity index.
fn bench_pool_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_churn");
    for devices in [1_000u32, 4_000, 16_000] {
        let mut linear = LinearPool::new(ResourceKind::Cpu);
        let mut indexed = ResourcePool::new(ResourceKind::Cpu);
        for d in churn_devices(devices) {
            linear.add_device(d.clone());
            indexed.add_device(d);
        }
        group.bench_with_input(BenchmarkId::new("linear", devices), &(), |b, ()| {
            b.iter(|| {
                let allocs: Vec<_> = CHURN_SIZES
                    .iter()
                    .map(|&u| {
                        linear
                            .allocate("t", black_box(u), &AllocConstraints::default())
                            .unwrap()
                    })
                    .collect();
                for a in &allocs {
                    linear.release(a);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed", devices), &(), |b, ()| {
            b.iter(|| {
                let allocs: Vec<_> = CHURN_SIZES
                    .iter()
                    .map(|&u| {
                        indexed
                            .allocate("t", black_box(u), &AllocConstraints::default())
                            .unwrap()
                    })
                    .collect();
                for a in &allocs {
                    indexed.release(a);
                }
            })
        });
    }
    group.finish();
}

/// Packing 10k sampled demands into standard servers: the seed
/// linear-scan cluster vs the indexed one, for both algorithms.
fn bench_binpack(c: &mut Criterion) {
    let demands: Vec<ResourceVector> = DemandSampler::new(7).sample_n(10_000);
    let shape = ServerShape::standard(2);
    let mut group = c.benchmark_group("binpack_10k");
    let algos = [
        ("ffd", PackAlgo::FirstFitDecreasing),
        ("bestfit", PackAlgo::BestFit),
    ];
    for (name, algo) in algos {
        group.bench_with_input(BenchmarkId::new("naive", name), &algo, |b, &algo| {
            b.iter(|| NaiveServerCluster::new(shape.clone()).pack_all(black_box(&demands), algo))
        });
        group.bench_with_input(BenchmarkId::new("indexed", name), &algo, |b, &algo| {
            b.iter(|| ServerCluster::new(shape.clone()).pack_all(black_box(&demands), algo))
        });
    }
    group.finish();
}

/// End-to-end `place_app` against a datacenter 16x the default device
/// count, placing and releasing in a loop — the shape that benefits
/// from the scheduler's candidate cache (allocate/release does not
/// invalidate it).
fn bench_place_big_dc(c: &mut Criterion) {
    let mut cfg = DatacenterConfig::default();
    for pool in &mut cfg.pools {
        pool.devices *= 16;
    }
    let mut dc = Datacenter::new(cfg);
    let mut sched = Scheduler::new(SchedOptions::default());
    let medical = medical_pipeline();
    c.bench_function("sched/place_medical_big_dc", |b| {
        b.iter(|| {
            let p = sched.place_app(&mut dc, black_box(&medical)).unwrap();
            for m in p.modules.values() {
                for a in &m.allocations {
                    dc.release(a);
                }
            }
        })
    });
}

criterion_group!(
    benches,
    bench_placement,
    bench_policy_dispatch,
    bench_allocation,
    bench_pool_churn,
    bench_binpack,
    bench_place_big_dc
);
criterion_main!(benches);
