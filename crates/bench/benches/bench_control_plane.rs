//! Criterion micro-benchmarks for the control plane: end-to-end
//! placement, extension-VM policy dispatch, and pool allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use udc_extvm::{assemble, NullHost, Vm, VmLimits};
use udc_hal::pool::AllocConstraints;
use udc_hal::Datacenter;
use udc_sched::{ExtVmPolicy, LocalityPolicy, PlacementPolicy, PolicyCtx, SchedOptions, Scheduler};
use udc_spec::{ResourceKind, ResourceVector};
use udc_workload::{medical_pipeline, random_app, RandomDagConfig};

fn bench_placement(c: &mut Criterion) {
    let medical = medical_pipeline();
    c.bench_function("sched/place_medical", |b| {
        b.iter(|| {
            let mut dc = Datacenter::default();
            let mut sched = Scheduler::new(SchedOptions::default());
            let p = sched.place_app(&mut dc, black_box(&medical)).unwrap();
            black_box(p);
        })
    });

    let mut group = c.benchmark_group("sched/place_random");
    for tasks in [10usize, 50, 200] {
        let (app, _) = random_app(RandomDagConfig {
            tasks,
            data: tasks / 4,
            edge_prob: 0.2,
            conflict_prob: 0.0,
            seed: 5,
        });
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &app, |b, app| {
            b.iter(|| {
                let mut dc = Datacenter::default();
                let mut sched = Scheduler::new(SchedOptions::default());
                let _ = sched.place_app(&mut dc, black_box(app));
            })
        });
    }
    group.finish();
}

fn bench_policy_dispatch(c: &mut Criterion) {
    let ctx = PolicyCtx {
        device: udc_hal::DeviceId(3),
        free_units: 32,
        capacity: 64,
        rack: 2,
        preferred_rack: 2,
        demand: 4,
    };
    let mut native = LocalityPolicy;
    c.bench_function("policy/native_score", |b| {
        b.iter(|| native.score(black_box(&ctx)))
    });
    let prog = assemble("arg 0\narg 4\nsub\nret").unwrap();
    let mut vm_policy = ExtVmPolicy::new("bench", prog, VmLimits::default());
    c.bench_function("policy/extvm_score", |b| {
        b.iter(|| vm_policy.score(black_box(&ctx)))
    });

    // Raw VM dispatch: a loop summing 1..100.
    let loop_prog = assemble(
        "
            arg 0
            store 1
        l:  load 1
            jz d
            load 0
            load 1
            add
            store 0
            load 1
            push 1
            sub
            store 1
            jmp l
        d:  load 0
            ret
        ",
    )
    .unwrap();
    let mut vm = Vm::new(VmLimits::default());
    c.bench_function("extvm/sum_loop_100", |b| {
        b.iter(|| {
            vm.run(black_box(&loop_prog), &[100], &mut NullHost)
                .unwrap()
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    c.bench_function("hal/allocate_release_vector", |b| {
        let mut dc = Datacenter::default();
        let demand = ResourceVector::new()
            .with(ResourceKind::Cpu, 4)
            .with(ResourceKind::Dram, 8192);
        b.iter(|| {
            let allocs = dc
                .allocate_vector("t", black_box(&demand), &AllocConstraints::default())
                .unwrap();
            for a in &allocs {
                dc.release(a);
            }
        })
    });
}

criterion_group!(
    benches,
    bench_placement,
    bench_policy_dispatch,
    bench_allocation
);
criterion_main!(benches);
