//! Criterion micro-benchmarks for the crypto substrate: hashing,
//! encryption, sealing, Merkle proofs and attestation quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;
use std::hint::black_box;
use udc_crypto::aead::{open, seal, Key, Nonce};
use udc_crypto::attest::{AttestationPolicy, RootOfTrust, Verifier};
use udc_crypto::chacha20::ChaCha20;
use udc_crypto::merkle::MerkleTree;
use udc_crypto::sha256::sha256;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(black_box(d)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("crypto/chacha20");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xcdu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| {
                let mut cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12], 1);
                cipher.apply_to_vec(black_box(d))
            })
        });
    }
    group.finish();
}

fn bench_seal_open(c: &mut Criterion) {
    let key = Key::derive(b"tenant", b"S1");
    let payload = vec![0x5au8; 4096];
    c.bench_function("crypto/seal_4k", |b| {
        b.iter(|| seal(&key, Nonce::from_sequence(1), b"aad", black_box(&payload)))
    });
    let boxed = seal(&key, Nonce::from_sequence(1), b"aad", &payload);
    c.bench_function("crypto/open_4k", |b| {
        b.iter(|| open(&key, b"aad", black_box(&boxed)).unwrap())
    });
}

fn bench_merkle(c: &mut Criterion) {
    let chunks: Vec<Vec<u8>> = (0..256).map(|i| vec![i as u8; 4096]).collect();
    c.bench_function("crypto/merkle_build_256x4k", |b| {
        b.iter(|| MerkleTree::build(black_box(&chunks)).unwrap())
    });
    let tree = MerkleTree::build(&chunks).unwrap();
    let root = tree.root();
    let proof = tree.prove(100).unwrap();
    c.bench_function("crypto/merkle_verify", |b| {
        b.iter(|| MerkleTree::verify(black_box(&root), &chunks[100], &proof))
    });
}

fn bench_attestation(c: &mut Criterion) {
    let key = [9u8; 32];
    let mut rot = RootOfTrust::new("dev", key);
    rot.measure("boot: udc-runtime v1");
    rot.measure("load: module-A2");
    let nonce = [4u8; 32];
    let mut claims = BTreeMap::new();
    claims.insert("isolation".to_string(), "strongest".to_string());
    claims.insert("resources.cpu".to_string(), "4".to_string());
    c.bench_function("crypto/quote_generate", |b| {
        b.iter(|| rot.quote(black_box(nonce), claims.clone()))
    });
    let quote = rot.quote(nonce, claims);
    let mut verifier = Verifier::new();
    verifier.trust_device("dev", key);
    let policy = AttestationPolicy::measurement(rot.measurement())
        .require("isolation", "strongest")
        .require("resources.cpu", "4");
    c.bench_function("crypto/quote_verify", |b| {
        b.iter(|| verifier.verify(black_box(&quote), &nonce, &policy).unwrap())
    });
}

criterion_group!(
    benches,
    bench_primitives,
    bench_seal_open,
    bench_merkle,
    bench_attestation
);
criterion_main!(benches);
