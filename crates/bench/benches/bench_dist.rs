//! Criterion micro-benchmarks for the distributed substrate: replicated
//! store operations, actor messaging, and checkpoint recovery.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use udc_actor::{Actor, ActorError, ActorId, Ctx, Message, SupervisionPolicy, System};
use udc_dist::{recover, CheckpointStore, RecoveryStrategy, ReplicatedStore, ReplicationParams};
use udc_spec::ConsistencyLevel;

#[derive(Default)]
struct Sink {
    seen: u64,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.seen += 1;
        Ok(())
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist/store_write");
    for level in [
        ConsistencyLevel::Eventual,
        ConsistencyLevel::Sequential,
        ConsistencyLevel::Linearizable,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.name()),
            &level,
            |b, &level| {
                let mut store =
                    ReplicatedStore::new(3, level, ReplicationParams::default()).unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store.write(black_box("key"), &i.to_le_bytes())
                })
            },
        );
    }
    group.finish();

    let mut store = ReplicatedStore::new(
        3,
        ConsistencyLevel::Sequential,
        ReplicationParams::default(),
    )
    .unwrap();
    store.write("key", b"value");
    c.bench_function("dist/store_read_sequential", |b| {
        b.iter(|| store.read(black_box("key")))
    });
}

fn bench_actor_messaging(c: &mut Criterion) {
    c.bench_function("actor/deliver_1000", |b| {
        b.iter(|| {
            let mut sys = System::new();
            sys.spawn("sink", Box::<Sink>::default(), SupervisionPolicy::Restart);
            for i in 0..1_000u64 {
                sys.inject("sink", Bytes::copy_from_slice(&i.to_le_bytes()));
            }
            let (n, _) = sys.run_until_quiescent(usize::MAX);
            black_box(n)
        })
    });
}

fn bench_recovery(c: &mut Criterion) {
    // Pre-build a 10k-message history with a checkpoint at 9k.
    let mut sys = System::new();
    let id = ActorId::new("w");
    sys.spawn(
        id.clone(),
        Box::<Sink>::default(),
        SupervisionPolicy::Restart,
    );
    for i in 0..10_000u64 {
        sys.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
    }
    sys.run_until_quiescent(usize::MAX);
    let mut cps = CheckpointStore::new();
    let seq_9k = sys.log().entries()[8_999].seq;
    cps.save(&id, seq_9k, 9_000u64.to_le_bytes().to_vec());

    c.bench_function("dist/recover_reexecute_10k", |b| {
        b.iter(|| {
            let mut a = Sink::default();
            recover(&id, &mut a, sys.log(), &cps, RecoveryStrategy::Reexecute)
        })
    });
    c.bench_function("dist/recover_checkpoint_1k_suffix", |b| {
        b.iter(|| {
            let mut a = Sink::default();
            recover(
                &id,
                &mut a,
                sys.log(),
                &cps,
                RecoveryStrategy::FromCheckpoint,
            )
        })
    });
}

criterion_group!(benches, bench_store, bench_actor_messaging, bench_recovery);
criterion_main!(benches);
