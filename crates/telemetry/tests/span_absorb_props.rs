//! Property tests for span-store absorption: when the parallel harness
//! merges worker hubs (`Telemetry::absorb`), every worker's span forest
//! must survive re-sequencing intact — parent/child links, names,
//! relative order, and trace membership — no matter how the workers
//! nested their spans.

use proptest::prelude::*;
use udc_telemetry::{SpanRecord, Telemetry};

/// One worker's recording schedule: a stack program where `true` opens
/// a span and `false` closes the innermost open one (no-op when empty).
type Program = Vec<bool>;

/// What the merged store must contain for one worker: spans in creation
/// order with worker-local parent indices and worker-local trace ids.
struct ExpectedSpan {
    name: String,
    parent: Option<usize>,
    trace: usize,
}

/// Runs `program` on a fresh hub, mirroring the expected structure with
/// a plain stack oracle. Stack-empty opens mint new traces (as
/// `Cloud::submit` does); nested opens use plain `span()` and must
/// inherit the enclosing trace.
fn run_worker(program: &Program) -> (Telemetry, Vec<ExpectedSpan>) {
    let tel = Telemetry::enabled();
    let mut guards = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut expected: Vec<ExpectedSpan> = Vec::new();
    let mut traces = 0usize;
    for (i, &open) in program.iter().enumerate() {
        if open {
            let name = format!("op{i}");
            let trace = match stack.last() {
                Some(&p) => expected[p].trace,
                None => {
                    traces += 1;
                    traces - 1
                }
            };
            let guard = if stack.is_empty() {
                tel.trace_root(&name)
            } else {
                tel.span(&name)
            };
            expected.push(ExpectedSpan {
                name,
                parent: stack.last().copied(),
                trace,
            });
            stack.push(expected.len() - 1);
            guards.push(guard);
        } else if stack.pop().is_some() {
            guards.pop(); // drop ends the innermost open span
        }
    }
    drop(guards); // close whatever remains open
    (tel, expected)
}

fn span_by_id(spans: &[SpanRecord], id: u32) -> &SpanRecord {
    spans.iter().find(|s| s.id == id).expect("span id exists")
}

proptest! {
    #[test]
    fn absorb_preserves_worker_forests(
        programs in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 1..40),
            1..5,
        ),
    ) {
        let hub = Telemetry::enabled();
        let mut all_expected = Vec::new();
        for program in &programs {
            let (worker, expected) = run_worker(program);
            hub.absorb(&worker);
            all_expected.push(expected);
        }

        let spans = hub.snapshot().spans;
        let total: usize = all_expected.iter().map(Vec::len).sum();
        prop_assert_eq!(spans.len(), total, "no span lost or invented");

        let mut offset = 0usize;
        let mut seen_traces: Vec<u64> = Vec::new();
        for expected in &all_expected {
            let slice = &spans[offset..offset + expected.len()];
            let mut worker_traces: Vec<u64> = Vec::new();
            for (local, (exp, got)) in expected.iter().zip(slice).enumerate() {
                prop_assert_eq!(&got.name, &exp.name);
                // Parent links point at the right span of the SAME worker.
                match exp.parent {
                    Some(p) => {
                        let parent = span_by_id(&spans, got.parent.expect("kept its parent"));
                        prop_assert_eq!(&parent.name, &expected[p].name);
                        prop_assert_eq!(parent.id, slice[p].id);
                        prop_assert_eq!(parent.trace, got.trace, "trace follows parent");
                    }
                    None => prop_assert!(got.parent.is_none(), "roots stay roots"),
                }
                // Trace ids: same worker-local trace -> same merged id.
                let trace = got.trace.expect("every span traced");
                while worker_traces.len() <= exp.trace {
                    worker_traces.push(u64::MAX);
                }
                if worker_traces[exp.trace] == u64::MAX {
                    worker_traces[exp.trace] = trace;
                } else {
                    prop_assert_eq!(worker_traces[exp.trace], trace);
                }
                // Creation order survives re-sequencing.
                if local > 0 {
                    prop_assert!(slice[local - 1].id < got.id);
                    prop_assert!(slice[local - 1].start_us <= got.start_us);
                }
            }
            // No trace id leaks across workers.
            for t in worker_traces.iter().filter(|&&t| t != u64::MAX) {
                prop_assert!(
                    !seen_traces.contains(t),
                    "worker traces must stay distinct after absorb"
                );
                seen_traces.push(*t);
            }
            offset += expected.len();
        }
    }
}
