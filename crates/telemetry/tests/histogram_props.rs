//! Property tests pinning down the histogram quantile estimator's
//! contract against an exact sort-based oracle:
//!
//! 1. ordering — min ≤ p50 ≤ p95 ≤ p99 ≤ max, with min/max exact;
//! 2. one-sidedness — a quantile estimate never underestimates the
//!    exact quantile;
//! 3. error bound — the overestimate is at most the width of the
//!    bucket holding the exact value.

use proptest::prelude::*;
use udc_telemetry::metrics::{bucket_bounds, bucket_index};
use udc_telemetry::Histogram;

/// The exact quantile the estimator targets: the sample whose rank is
/// `round(q * (n - 1))` — the same rank formula the histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

fn filled(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn summary_quantiles_are_ordered_and_bracketed(
        values in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let s = filled(&values).summary();
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p95);
        prop_assert!(s.p95 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert_eq!(s.min, *values.iter().min().unwrap());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
    }

    #[test]
    fn quantile_never_underestimates_and_error_is_bucket_bounded(
        values in prop::collection::vec(any::<u64>(), 1..300),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = filled(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in qs {
            let est = h.quantile(q);
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                est >= exact,
                "q={q}: estimate {est} underestimates exact {exact}"
            );
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                est - exact <= hi - lo,
                "q={q}: error {} exceeds bucket width {}",
                est - exact,
                hi - lo
            );
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket(value in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_index(value));
        prop_assert!(lo <= value && value <= hi);
    }
}
