//! Structured decision records: the control plane's audit trail.
//!
//! §4 of the paper asks how tenants can *trust* the cloud; metrics say
//! what happened, spans say when — decision records say **why**. Every
//! time the scheduler or a resource pool considers a candidate (a
//! device, a server, a rack) it can append one record stating whether
//! the candidate was accepted and, if not, the reason class. The
//! `udc-trace` tool replays these to answer "why did module X land on
//! server Y and not Z".
//!
//! The log is a bounded ring like the flight recorder: old records are
//! evicted (counted, never silently) so a long-running control plane
//! cannot grow without bound.

use std::collections::VecDeque;

use crate::{Micros, TraceCtx};

/// Why a candidate was accepted or rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReasonCode {
    /// Candidate won: it was selected for the allocation.
    Accepted,
    /// Not enough free capacity on the candidate.
    Capacity,
    /// Candidate lost on rack/locality preference.
    Locality,
    /// Tenant policy scored the candidate lower (or forbade it).
    Policy,
    /// Pruned before full evaluation (e.g. a segment-tree subtree
    /// whose per-dimension maximum could not fit the demand).
    Prune,
    /// Candidate could not satisfy an exclusivity/isolation demand.
    Exclusivity,
    /// Rejected to preserve failure independence (replica anti-affinity).
    FailureDomain,
    /// Allocation lost to a device crash and freed by the repair loop.
    Evicted,
    /// Candidate excluded because its device is currently crashed.
    CrashExcluded,
    /// Re-placement capacity exhausted; the module entered degraded mode.
    Degraded,
    /// Admission denied: the tenant's plan quota cannot cover the
    /// requested resources (economic denial, audited like capacity).
    QuotaExceeded,
    /// Admission denied or module evicted because the tenant's account
    /// is suspended (overdue past its grace period).
    Suspended,
    /// A spot-market bid lost the auction to a higher bidder.
    Outbid,
}

impl ReasonCode {
    /// Every reason code, in declaration order. Exporters iterate this
    /// so a newly added variant cannot be silently missed (see the
    /// exhaustiveness test below).
    pub const ALL: [ReasonCode; 13] = [
        ReasonCode::Accepted,
        ReasonCode::Capacity,
        ReasonCode::Locality,
        ReasonCode::Policy,
        ReasonCode::Prune,
        ReasonCode::Exclusivity,
        ReasonCode::FailureDomain,
        ReasonCode::Evicted,
        ReasonCode::CrashExcluded,
        ReasonCode::Degraded,
        ReasonCode::QuotaExceeded,
        ReasonCode::Suspended,
        ReasonCode::Outbid,
    ];

    /// Stable lower-snake name used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReasonCode::Accepted => "accepted",
            ReasonCode::Capacity => "capacity",
            ReasonCode::Locality => "locality",
            ReasonCode::Policy => "policy",
            ReasonCode::Prune => "prune",
            ReasonCode::Exclusivity => "exclusivity",
            ReasonCode::FailureDomain => "failure_domain",
            ReasonCode::Evicted => "evicted",
            ReasonCode::CrashExcluded => "crash_excluded",
            ReasonCode::Degraded => "degraded",
            ReasonCode::QuotaExceeded => "quota_exceeded",
            ReasonCode::Suspended => "suspended",
            ReasonCode::Outbid => "outbid",
        }
    }

    /// Parses the stable export name back into a code.
    pub fn from_str_name(name: &str) -> Option<ReasonCode> {
        ReasonCode::ALL.iter().copied().find(|c| c.as_str() == name)
    }
}

/// One decision as reported by a call site (borrowed strings; the log
/// owns copies only if the hub is enabled).
#[derive(Clone, Debug)]
pub struct Decision<'a> {
    /// Trace this decision belongs to, when the request path carries one.
    pub ctx: Option<TraceCtx>,
    /// Which stage decided, e.g. `"sched.place_task"` or `"hal.alloc"`.
    pub stage: &'a str,
    /// The module (or demand) being placed.
    pub module: &'a str,
    /// The candidate considered, e.g. a device or server id.
    pub candidate: &'a str,
    /// Whether the candidate was selected.
    pub accepted: bool,
    /// Reason class for the outcome.
    pub reason: ReasonCode,
    /// Policy score, when the decision was score-driven.
    pub score: Option<i64>,
    /// Free-form detail, e.g. `"free=2 needed=4"`.
    pub detail: String,
}

/// One recorded decision (owned, exported to JSON).
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Arrival order under the recording hub (re-sequenced on absorb).
    pub seq: u64,
    /// Trace id, when the request path carried a [`TraceCtx`].
    pub trace: Option<u64>,
    /// Simulated timestamp.
    pub at_us: Micros,
    /// Deciding stage.
    pub stage: String,
    /// Module being placed.
    pub module: String,
    /// Candidate considered.
    pub candidate: String,
    /// Whether the candidate won.
    pub accepted: bool,
    /// Reason class.
    pub reason: ReasonCode,
    /// Policy score, when score-driven.
    pub score: Option<i64>,
    /// Free-form detail.
    pub detail: String,
}

/// Bounded ring of decision records.
pub(crate) struct DecisionLog {
    records: VecDeque<DecisionRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl DecisionLog {
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::new(),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: DecisionRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    pub fn record(&mut self, d: Decision<'_>, at: Micros) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push(DecisionRecord {
            seq,
            trace: d.ctx.map(|c| c.trace_id),
            at_us: at,
            stage: d.stage.to_string(),
            module: d.module.to_string(),
            candidate: d.candidate.to_string(),
            accepted: d.accepted,
            reason: d.reason,
            score: d.score,
            detail: d.detail,
        });
    }

    /// Appends `other`'s records, re-sequencing under this log's
    /// counter (timestamps kept) and shifting trace ids by
    /// `trace_offset` to match the span-store remap.
    pub fn absorb(&mut self, other: &DecisionLog, trace_offset: u64) {
        self.dropped += other.dropped;
        for r in &other.records {
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut rec = r.clone();
            rec.seq = seq;
            rec.trace = rec.trace.map(|t| t + trace_offset);
            self.push(rec);
        }
    }

    /// Empties the log after a draining absorb; `dropped` resets for the
    /// same reason as [`crate::recorder::FlightRecorder::drain`].
    pub fn drain(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk<'a>(
        stage: &'a str,
        candidate: &'a str,
        accepted: bool,
        reason: ReasonCode,
    ) -> Decision<'a> {
        Decision {
            ctx: None,
            stage,
            module: "m0",
            candidate,
            accepted,
            reason,
            score: None,
            detail: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = DecisionLog::new(2);
        log.record(mk("s", "a", false, ReasonCode::Capacity), 1);
        log.record(mk("s", "b", false, ReasonCode::Policy), 2);
        log.record(mk("s", "c", true, ReasonCode::Accepted), 3);
        let got: Vec<_> = log.records().map(|r| r.candidate.clone()).collect();
        assert_eq!(got, vec!["b", "c"]);
        assert_eq!(log.dropped(), 1);
        // Sequence numbers keep counting past evictions.
        assert_eq!(log.records().last().unwrap().seq, 2);
    }

    #[test]
    fn absorb_resequences_and_offsets_traces() {
        let mut dst = DecisionLog::new(16);
        dst.record(mk("s", "a", true, ReasonCode::Accepted), 1);

        let mut src = DecisionLog::new(16);
        let mut d = mk("s", "b", false, ReasonCode::Locality);
        d.ctx = Some(TraceCtx {
            trace_id: 0,
            span: 3,
        });
        src.record(d, 9);

        dst.absorb(&src, 5);
        let recs: Vec<_> = dst.records().cloned().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].seq, 1, "re-sequenced under dst counter");
        assert_eq!(recs[1].at_us, 9, "timestamp preserved");
        assert_eq!(recs[1].trace, Some(5), "trace id shifted");
    }

    #[test]
    fn reason_codes_are_exhaustive_and_round_trip() {
        // `ALL` must cover every variant exactly once. The match below
        // fails to compile when a variant is added, forcing both `ALL`
        // and `as_str` to be extended in the same change.
        for code in ReasonCode::ALL {
            match code {
                ReasonCode::Accepted
                | ReasonCode::Capacity
                | ReasonCode::Locality
                | ReasonCode::Policy
                | ReasonCode::Prune
                | ReasonCode::Exclusivity
                | ReasonCode::FailureDomain
                | ReasonCode::Evicted
                | ReasonCode::CrashExcluded
                | ReasonCode::Degraded
                | ReasonCode::QuotaExceeded
                | ReasonCode::Suspended
                | ReasonCode::Outbid => {}
            }
        }
        // Names are unique and round-trip through the parser.
        let mut seen = std::collections::BTreeSet::new();
        for code in ReasonCode::ALL {
            assert!(
                seen.insert(code.as_str()),
                "duplicate name {}",
                code.as_str()
            );
            assert_eq!(ReasonCode::from_str_name(code.as_str()), Some(code));
        }
        assert_eq!(seen.len(), ReasonCode::ALL.len());
        assert_eq!(ReasonCode::from_str_name("nonsense"), None);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = DecisionLog::new(0);
        log.record(mk("s", "a", true, ReasonCode::Accepted), 1);
        assert_eq!(log.records().count(), 0);
        assert_eq!(log.dropped(), 1);
    }
}
