//! The flight recorder: a bounded ring of structured control-plane
//! events, old entries evicted first.

use std::collections::VecDeque;

use crate::{Labels, Micros};

/// What happened. The closed set keeps exports greppable; extend it as
/// the control plane grows new decision points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A deployment was accepted into the system.
    Submit,
    /// The scheduler placed a module onto devices.
    Placement,
    /// A requirement conflict was resolved during submit.
    ConflictResolution,
    /// An isolate started without a warm slot.
    ColdStart,
    /// A module, device, or delivery failed.
    Failure,
    /// The autoscaler changed a deployment's resources.
    Autoscale,
    /// A deployment was torn down.
    Teardown,
    /// A verification pass ran (quotes, billing reconciliation).
    Verification,
    /// An experiment emitted a data point (one row of a results table).
    Measurement,
}

impl EventKind {
    /// Stable lowercase name used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::Placement => "placement",
            EventKind::ConflictResolution => "conflict_resolution",
            EventKind::ColdStart => "cold_start",
            EventKind::Failure => "failure",
            EventKind::Autoscale => "autoscale",
            EventKind::Teardown => "teardown",
            EventKind::Verification => "verification",
            EventKind::Measurement => "measurement",
        }
    }
}

/// A typed field value on an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned quantity (bytes, units, microseconds).
    U64(u64),
    /// Signed quantity (deltas).
    I64(i64),
    /// Ratio or rate.
    F64(f64),
    /// Free text (module names, outcomes).
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Simulated timestamp.
    pub at_us: Micros,
    /// Category.
    pub kind: EventKind,
    /// Attribution.
    pub labels: Labels,
    /// Free-form structured payload.
    pub fields: Vec<(String, FieldValue)>,
}

/// Fixed-capacity ring of events.
pub(crate) struct FlightRecorder {
    capacity: usize,
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    pub fn record(
        &mut self,
        kind: EventKind,
        labels: Labels,
        fields: &[(&str, FieldValue)],
        at: Micros,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            at_us: at,
            kind,
            labels,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        self.next_seq += 1;
    }

    /// Appends another recorder's retained events in their original
    /// order, re-sequencing them under this recorder's counter while
    /// preserving their simulated timestamps. Drops already suffered by
    /// `other` carry over, and the ring keeps evicting normally.
    pub fn absorb(&mut self, other: &FlightRecorder) {
        for e in other.events.iter() {
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(Event {
                seq: self.next_seq,
                ..e.clone()
            });
            self.next_seq += 1;
        }
        self.dropped += other.dropped;
    }

    /// Empties the ring after a draining absorb. `dropped` resets too:
    /// `absorb` carries it over, so leaving it in place would re-count
    /// the same drops at every barrier merge. `next_seq` stays monotone.
    pub fn drain(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(
                EventKind::Placement,
                Labels::none(),
                &[("i", FieldValue::from(i))],
                i,
            );
        }
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }
}
